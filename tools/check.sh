#!/usr/bin/env bash
# Pre-PR gate, factored into named stages so the hosted CI workflow can
# run *exactly* the same commands (.github/workflows/ci.yml calls
# `tools/check.sh <stage>` per job step — local and hosted gates cannot
# drift).
#
#   tools/check.sh                 # all stages: lint type test bench chaos
#   tools/check.sh --fast          # pre-commit: lint + tier-1 tests only
#   tools/check.sh lint            # a single stage
#   tools/check.sh lint type test  # any subset, in order
#
# Stages:
#   lint    ruff (when installed) + reprolint (always required)
#   type    mypy (when installed; skipped otherwise)
#   test    tier-1 pytest suite
#   bench   E1/TPS/instant bench smokes + bench-suite smoke +
#           span-trace smoke (capture, critical-path, invariant
#           check, Perfetto export)
#   chaos   crash-point torture smoke + failover and restart drill
#           smokes (python -m repro.chaos [--drill ...] --smoke)
#
# Every stage runs even after an earlier one fails; each step's result
# is captured, a PASS/FAIL/SKIP summary table prints at the end, and
# the exit status is non-zero iff any step failed.  mypy and ruff are
# optional (pip install -e .[lint]); when absent they are SKIPPED and
# do not fail the gate — reprolint and pytest are always required.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

step_names=()
step_results=()

note() {
    step_names+=("$1")
    step_results+=("$2")
}

run_step() {
    local name="$1"; shift
    echo "==> ${name}"
    if "$@"; then
        echo "    ${name}: PASS"
        note "${name}" PASS
    else
        echo "    ${name}: FAIL"
        note "${name}" FAIL
    fi
}

skip_step() {
    echo "==> $1"
    echo "    $1: SKIP ($2)"
    note "$1" SKIP
}

# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------
stage_lint() {
    if python -c "import ruff" >/dev/null 2>&1 \
            || command -v ruff >/dev/null 2>&1; then
        run_step "ruff" python -m ruff check src tests
    else
        skip_step "ruff" "not installed; pip install -e .[lint]"
    fi
    run_step "reprolint" \
        python -m repro.lint src/ tests/ benchmarks/ examples/ tools/
}

stage_type() {
    if python -c "import mypy" >/dev/null 2>&1; then
        run_step "mypy" python -m mypy
    else
        skip_step "mypy" "not installed; pip install -e .[lint]"
    fi
}

stage_test() {
    run_step "pytest (tier-1)" python -m pytest -x -q
}

# Bench smoke: run E1 standalone and make sure the trace CLI can
# re-render the JSON it wrote.
bench_e1_smoke() {
    local tmp
    tmp="$(mktemp -t bench_e1.XXXXXX.json)"
    python benchmarks/bench_e1_anomaly.py --json "${tmp}" >/dev/null \
        && python -m repro.trace --bench "${tmp}" >/dev/null
    local status=$?
    rm -f "${tmp}"
    return "${status}"
}

# Bench-suite smoke: run the trimmed parallel suite into a temp file,
# then prove it round-trips through the --compare reader (a
# self-compare must load the file twice and report clean).
bench_suite_smoke() {
    local tmp
    tmp="$(mktemp -t bench_suite.smoke.XXXXXX.json)"
    python -m repro.bench --smoke -o "${tmp}" >/dev/null \
        && python -m repro.bench --compare-only "${tmp}" "${tmp}" >/dev/null
    local status=$?
    rm -f "${tmp}"
    return "${status}"
}

# TPS smoke: run the S2 headline bench standalone (slab spine + bulk
# driver vs the per-call baseline) and require its claim to hold —
# equivalence plus the >= 2x speedup gates at batch 64/256.
bench_tps_smoke() {
    local tmp
    tmp="$(mktemp -t bench_s2.XXXXXX.json)"
    python benchmarks/bench_s2_tps.py --json "${tmp}" >/dev/null
    local status=$?
    rm -f "${tmp}"
    return "${status}"
}

# Instant-restart smoke: run the S4 bench standalone and require its
# claim to hold — the instant path's time-to-first-transaction gates
# at >= 3x below eager restart's, with SHA-256 identical disk images
# once the sweeper drains.
bench_instant_smoke() {
    local tmp
    tmp="$(mktemp -t bench_s4.XXXXXX.json)"
    python benchmarks/bench_s4_instant.py --json "${tmp}" >/dev/null
    local status=$?
    rm -f "${tmp}"
    return "${status}"
}

# Span smoke: capture the E1 anomaly under a recording tracer, profile
# the commit critical path, run the trace invariant checker, and export
# Perfetto JSON.  With SPAN_TRACE_DIR set (CI does this) the trace and
# the Perfetto export land there for artifact upload; otherwise a temp
# dir is used and removed.
span_trace_smoke() {
    local dir cleanup=0 status=0
    if [ -n "${SPAN_TRACE_DIR:-}" ]; then
        dir="${SPAN_TRACE_DIR}"
        mkdir -p "${dir}"
    else
        dir="$(mktemp -d -t span_trace.XXXXXX)"
        cleanup=1
    fi
    python -m repro.trace --capture e1-usn -o "${dir}/e1-usn.jsonl" \
            >/dev/null 2>&1 \
        && python -m repro.trace critical-path "${dir}/e1-usn.jsonl" \
            --root commit >/dev/null \
        && python -m repro.trace summary "${dir}/e1-usn.jsonl" --check \
            >/dev/null \
        && python -m repro.trace export "${dir}/e1-usn.jsonl" --perfetto \
            -o "${dir}/e1-usn.perfetto.json" >/dev/null \
        || status=$?
    if [ "${cleanup}" -eq 1 ]; then
        rm -rf "${dir}"
    fi
    return "${status}"
}

stage_bench() {
    run_step "bench-e1 smoke" bench_e1_smoke
    run_step "bench-tps smoke" bench_tps_smoke
    run_step "bench-instant smoke" bench_instant_smoke
    run_step "bench-suite smoke" bench_suite_smoke
    run_step "span-trace smoke" span_trace_smoke
}

# Chaos smoke: <= 10 crash-point kills across SD and CS, each followed
# by restart recovery, the harness verifier and the trace invariant
# checker (exit 1 if any spec leaves the DB broken).  The failover
# drill then kills a replicated primary at a trimmed set of crash
# points under every write-ack level, promotes a standby, and checks
# the loss bound and the promoted disk image against a reference
# recovery (exit 1 if any rehearsal loses acked commits).  The restart
# drill recovers the identical crash eagerly and with
# restart_mode="instant" at three SD crash points and requires the
# final disk images to be SHA-256 identical.
stage_chaos() {
    run_step "chaos smoke (crash-point torture)" \
        python -m repro.chaos --smoke
    run_step "failover drill (smoke)" \
        python -m repro.chaos --drill failover --smoke
    run_step "restart drill (smoke)" \
        python -m repro.chaos --drill restart --smoke
}

# ----------------------------------------------------------------------
# stage selection
# ----------------------------------------------------------------------
all_stages="lint type test bench chaos"
if [ "$#" -eq 0 ]; then
    stages="${all_stages}"
elif [ "$1" = "--fast" ]; then
    stages="lint test"
else
    stages="$*"
fi

for stage in ${stages}; do
    case "${stage}" in
        lint|type|test|bench|chaos) "stage_${stage}" ;;
        *)
            echo "check.sh: unknown stage '${stage}'" >&2
            echo "usage: tools/check.sh [--fast | ${all_stages// / | }]" >&2
            exit 2
            ;;
    esac
done

# ----------------------------------------------------------------------
# summary
# ----------------------------------------------------------------------
echo
echo "stage summary"
echo "-------------"
failures=0
for i in "${!step_names[@]}"; do
    printf '%-36s %s\n' "${step_names[$i]}" "${step_results[$i]}"
    if [ "${step_results[$i]}" = FAIL ]; then
        failures=$((failures + 1))
    fi
done
echo
if [ "${failures}" -gt 0 ]; then
    echo "check.sh: ${failures} step(s) failed"
    exit 1
fi
echo "check.sh: all steps passed"
