#!/usr/bin/env bash
# Pre-PR gate: every static check, then the tier-1 test suite.
#
#   tools/check.sh            # run everything
#   tools/check.sh --fast     # static checks only, skip pytest
#
# mypy and ruff are optional (pip install -e .[lint]); when absent they
# are reported as SKIPPED and do not fail the gate — reprolint and
# pytest are always required.

set -u
cd "$(dirname "$0")/.."

fast=0
[ "${1:-}" = "--fast" ] && fast=1

failures=0

step() {
    local name="$1"; shift
    echo "==> ${name}"
    if "$@"; then
        echo "    ${name}: OK"
    else
        echo "    ${name}: FAILED"
        failures=$((failures + 1))
    fi
}

skip() {
    echo "==> $1"
    echo "    $1: SKIPPED ($2)"
}

if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    step "ruff" python -m ruff check src tests
else
    skip "ruff" "not installed; pip install -e .[lint]"
fi

if python -c "import mypy" >/dev/null 2>&1; then
    step "mypy" python -m mypy
else
    skip "mypy" "not installed; pip install -e .[lint]"
fi

step "reprolint" env PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro.lint src/ tests/

if [ "$fast" -eq 0 ]; then
    step "pytest" env PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest -x -q

    # Bench smoke: run E1 standalone, write BENCH_E1.json, and make
    # sure the trace CLI can re-render it.
    bench_smoke() {
        env PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
            python benchmarks/bench_e1_anomaly.py --json >/dev/null \
        && [ -f BENCH_E1.json ] \
        && env PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
            python -m repro.trace --bench BENCH_E1.json >/dev/null
    }
    step "bench-e1 smoke (BENCH_E1.json)" bench_smoke

    # Bench-suite smoke: run the trimmed parallel suite, then prove the
    # written BENCH_SUITE.smoke.json round-trips through the --compare
    # reader (a self-compare must load both files and report clean).
    bench_suite_smoke() {
        env PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
            python -m repro.bench --smoke >/dev/null \
        && [ -f BENCH_SUITE.smoke.json ] \
        && env PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
            python -m repro.bench --compare-only \
                BENCH_SUITE.smoke.json BENCH_SUITE.smoke.json >/dev/null
    }
    step "bench-suite smoke (BENCH_SUITE.smoke.json)" bench_suite_smoke

    # Chaos smoke: <= 10 crash-point kills across SD and CS, each
    # followed by restart recovery, the harness verifier and the trace
    # invariant checker (exit 1 if any spec leaves the DB broken).
    step "chaos smoke (crash-point torture)" \
        env PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.chaos --smoke
fi

echo
if [ "$failures" -gt 0 ]; then
    echo "check.sh: ${failures} gate(s) failed"
    exit 1
fi
echo "check.sh: all gates passed"
