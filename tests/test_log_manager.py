"""Tests for the USN log manager — the paper's core algorithm."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import NULL_LSN
from repro.common.stats import (
    LOG_FORCES,
    LOG_FORCES_COALESCED,
    LOG_RECORDS_WRITTEN,
    StatsRegistry,
)
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, RecordKind, make_update


def rec(txn_id=1, page_id=10):
    return make_update(txn_id, 0, page_id, 0, redo=b"r", undo=b"u")


class TestUsnAssignment:
    def test_first_lsn_is_one(self):
        log = LogManager(1)
        log.append(rec())
        assert log.local_max_lsn == 1

    def test_sequential_without_hint(self):
        log = LogManager(1)
        lsns = []
        for _ in range(5):
            record = rec()
            log.append(record)
            lsns.append(record.lsn)
        assert lsns == [1, 2, 3, 4, 5]

    def test_page_lsn_hint_dominates(self):
        """Section 3.2.1: LSN = max(page_LSN, Local_Max_LSN) + 1."""
        log = LogManager(1)
        record = rec()
        log.append(record, page_lsn=100)
        assert record.lsn == 101
        assert log.local_max_lsn == 101

    def test_local_max_dominates_small_hint(self):
        log = LogManager(1)
        log.append(rec(), page_lsn=100)
        record = rec()
        log.append(record, page_lsn=5)
        assert record.lsn == 102

    def test_monotonic_across_pages(self):
        """Within one system, LSNs increase even across different pages
        (the property the LSN-only merge relies on)."""
        log = LogManager(1)
        previous = 0
        for page_id in (3, 1, 7, 1, 3):
            record = rec(page_id=page_id)
            log.append(record, page_lsn=previous // 2)
            assert record.lsn > previous
            previous = record.lsn

    def test_next_lsn_preview(self):
        log = LogManager(1)
        log.append(rec(), page_lsn=9)
        assert log.next_lsn() == 11
        assert log.next_lsn(page_lsn=50) == 51

    def test_append_stamps_system_id(self):
        log = LogManager(6)
        record = rec()
        log.append(record)
        assert record.system_id == 6


class TestLamportExchange:
    def test_observe_remote_max_raises_clock(self):
        log = LogManager(1)
        log.append(rec())
        log.observe_remote_max(500)
        record = rec()
        log.append(record)
        assert record.lsn == 501

    def test_observe_smaller_value_ignored(self):
        log = LogManager(1)
        log.append(rec(), page_lsn=100)
        log.observe_remote_max(50)
        assert log.local_max_lsn == 101

    def test_two_systems_converge_through_exchange(self):
        a, b = LogManager(1), LogManager(2)
        for _ in range(10):
            a.append(rec())
        b.observe_remote_max(a.local_max_lsn)
        record = rec()
        b.append(record)
        assert record.lsn == 11


class TestStableStorage:
    def test_force_and_is_stable(self):
        log = LogManager(1)
        log.append(rec())
        end = log.end_offset
        assert not log.is_stable(end)
        log.force()
        assert log.is_stable(end)

    def test_partial_force(self):
        log = LogManager(1)
        log.append(rec())
        first_end = log.end_offset
        log.append(rec())
        log.force(up_to=first_end)
        assert log.is_stable(first_end)
        assert not log.is_stable(log.end_offset)

    def test_force_counts_only_when_advancing(self):
        stats = StatsRegistry()
        log = LogManager(1, stats=stats)
        log.append(rec())
        log.force()
        log.force()
        log.force()
        assert stats.get(LOG_FORCES) == 1

    def test_crash_discards_unflushed_tail(self):
        log = LogManager(1)
        log.append(rec(txn_id=1))
        log.force()
        log.append(rec(txn_id=2))
        log.crash()
        survivors = [r.txn_id for _, r in log.scan()]
        assert survivors == [1]

    def test_crash_without_force_loses_everything(self):
        log = LogManager(1)
        log.append(rec())
        log.crash()
        assert log.record_count() == 0

    def test_recover_local_max(self):
        log = LogManager(1)
        log.append(rec(), page_lsn=400)
        log.force()
        log.crash()
        log.local_max_lsn = NULL_LSN
        assert log.recover_local_max() == 401


class TestScan:
    def test_scan_yields_addresses_in_order(self):
        log = LogManager(3)
        for _ in range(3):
            log.append(rec())
        entries = list(log.scan())
        assert [a.system_id for a, _ in entries] == [3, 3, 3]
        offsets = [a.offset for a, _ in entries]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0

    def test_scan_from_offset(self):
        log = LogManager(1)
        log.append(rec(txn_id=1))
        second = log.end_offset
        log.append(rec(txn_id=2))
        records = [r.txn_id for _, r in log.scan(from_offset=second)]
        assert records == [2]

    def test_read_record_at(self):
        log = LogManager(1)
        log.append(rec(txn_id=1))
        offset = log.end_offset
        log.append(rec(txn_id=42))
        assert log.read_record_at(offset).txn_id == 42

    def test_records_written_counter(self):
        stats = StatsRegistry()
        log = LogManager(1, stats=stats)
        log.append(rec())
        log.append(rec())
        assert stats.get(LOG_RECORDS_WRITTEN) == 2


class TestAppendRaw:
    def test_append_raw_preserves_lsns(self):
        client = LogManager(5)
        r1, r2 = rec(), rec()
        client.append(r1, page_lsn=100)
        client.append(r2)
        data = r1.to_bytes() + r2.to_bytes()

        server = LogManager(0)
        server.append_raw(data)
        stored = [r.lsn for _, r in server.scan()]
        assert stored == [101, 102]

    def test_append_raw_absorbs_max(self):
        server = LogManager(0)
        record = rec()
        record.lsn = 999
        server.append_raw(record.to_bytes())
        assert server.local_max_lsn == 999
        fresh = rec()
        server.append(fresh)
        assert fresh.lsn == 1000


@settings(max_examples=60, deadline=None)
@given(hints=st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
def test_property_lsns_strictly_increase(hints):
    """Invariant I2: whatever page_LSN hints arrive, the local log's
    LSN sequence is strictly increasing."""
    log = LogManager(1)
    previous = 0
    for hint in hints:
        record = rec()
        log.append(record, page_lsn=hint)
        assert record.lsn > previous
        assert record.lsn > hint
        previous = record.lsn


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("append"), st.integers(0, 1000)),
            st.tuples(st.just("observe"), st.integers(0, 5000)),
        ),
        min_size=1, max_size=80,
    )
)
def test_property_lamport_merge_never_decreases(ops):
    log = LogManager(1)
    previous_max = 0
    for kind, value in ops:
        if kind == "append":
            log.append(rec(), page_lsn=value)
        else:
            log.observe_remote_max(value)
        assert log.local_max_lsn >= previous_max
        previous_max = log.local_max_lsn


class TestAppendMany:
    """The batched append lane must be *semantically identical* to a
    loop of single appends — same LSNs, same bytes, same addresses."""

    def _batch(self, n=5):
        return [rec(txn_id=i + 1, page_id=10 + i) for i in range(n)]

    def test_matches_sequential_appends(self):
        slow, fast = LogManager(1), LogManager(1)
        slow_records, fast_records = self._batch(), self._batch()
        slow_addrs = [slow.append(r) for r in slow_records]
        fast_addrs = fast.append_many(fast_records)
        assert fast_addrs == slow_addrs
        assert [r.lsn for r in fast_records] == [r.lsn for r in slow_records]
        assert bytes(slow._buffer) == bytes(fast._buffer)
        assert slow.local_max_lsn == fast.local_max_lsn

    def test_matches_sequential_with_page_lsns(self):
        hints = [0, 100, 3, 100, 250]
        slow, fast = LogManager(1), LogManager(1)
        slow_records, fast_records = self._batch(), self._batch()
        slow_addrs = [
            slow.append(r, page_lsn=h) for r, h in zip(slow_records, hints)
        ]
        fast_addrs = fast.append_many(fast_records, page_lsns=hints)
        assert fast_addrs == slow_addrs
        assert [r.lsn for r in fast_records] == [r.lsn for r in slow_records]
        assert bytes(slow._buffer) == bytes(fast._buffer)

    def test_stamps_system_id(self):
        log = LogManager(7)
        records = self._batch()
        log.append_many(records)
        assert all(r.system_id == 7 for r in records)

    def test_counters_match_sequential(self):
        slow, fast = LogManager(1), LogManager(1)
        for r in self._batch():
            slow.append(r)
        fast.append_many(self._batch())
        assert (slow.stats.get(LOG_RECORDS_WRITTEN)
                == fast.stats.get(LOG_RECORDS_WRITTEN) == 5)
        assert slow.stats.snapshot() == fast.stats.snapshot()

    def test_length_mismatch_rejected(self):
        log = LogManager(1)
        with pytest.raises(ValueError):
            log.append_many(self._batch(3), page_lsns=[0, 0])

    def test_empty_batch(self):
        log = LogManager(1)
        assert log.append_many([]) == []
        assert log.local_max_lsn == NULL_LSN

    def test_records_scannable(self):
        log = LogManager(1)
        records = self._batch()
        addrs = log.append_many(records)
        scanned = list(log.scan())
        assert [a for a, _ in scanned] == addrs
        assert [r for _, r in scanned] == records

    def test_cached_encoding_survives_roundtrip(self):
        log = LogManager(1)
        records = self._batch()
        log.append_many(records)
        for record in records:
            clone, _ = LogRecord.from_bytes(record.to_bytes())
            assert clone == record


class TestForceThrough:
    def _log_with_offsets(self, n=4):
        log = LogManager(1)
        addrs = log.append_many([rec() for _ in range(n)])
        ends = [a.offset for a in addrs[1:]] + [log.end_offset]
        return log, ends

    def test_coalesces_into_one_force(self):
        log, ends = self._log_with_offsets()
        coalesced = log.force_through(ends)
        assert coalesced == len(ends) - 1
        assert log.stats.get(LOG_FORCES) == 1
        assert log.stats.get(LOG_FORCES_COALESCED) == len(ends) - 1
        assert log.flushed_offset == max(ends)

    def test_already_stable_offsets_are_free(self):
        log, ends = self._log_with_offsets()
        log.force()
        assert log.force_through(ends) == 0
        assert log.stats.get(LOG_FORCES) == 1
        assert log.stats.get(LOG_FORCES_COALESCED) == 0

    def test_single_pending_is_not_coalesced(self):
        log, ends = self._log_with_offsets()
        assert log.force_through([ends[0]]) == 0
        assert log.stats.get(LOG_FORCES) == 1
        assert log.stats.get(LOG_FORCES_COALESCED) == 0

    def test_partial_overlap(self):
        log, ends = self._log_with_offsets()
        log.force(up_to=ends[1])
        coalesced = log.force_through(ends)
        assert coalesced == len(ends) - 3  # first two already stable
        assert log.flushed_offset == max(ends)

    def test_empty_iterable(self):
        log, _ = self._log_with_offsets()
        assert log.force_through([]) == 0
        assert log.stats.get(LOG_FORCES) == 0
