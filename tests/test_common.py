"""Unit tests for the foundational types in repro.common."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.clock import SkewedClock
from repro.common.config import NULL_LSN
from repro.common.lsn import (
    LogAddress,
    NULL_LOG_ADDRESS,
    is_null_address,
    max_lsn,
)
from repro.common.stats import StatsRegistry


class TestSkewedClock:
    def test_offset_and_rate(self):
        clock = SkewedClock(offset=100.0, rate=2.0)
        assert clock.now() == 100.0
        clock.tick(5)
        assert clock.now() == 110.0
        assert clock.ticks == 5

    def test_monotone_under_positive_rate(self):
        clock = SkewedClock(offset=-3.0, rate=0.5)
        readings = []
        for _ in range(10):
            readings.append(clock.now())
            clock.tick()
        assert readings == sorted(readings)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SkewedClock(rate=0)
        with pytest.raises(ValueError):
            SkewedClock(rate=-1)

    def test_negative_tick_rejected(self):
        clock = SkewedClock()
        with pytest.raises(ValueError):
            clock.tick(-1)

    def test_determinism(self):
        a, b = SkewedClock(7.0, 1.5), SkewedClock(7.0, 1.5)
        for _ in range(4):
            a.tick()
            b.tick()
        assert a.now() == b.now()


class TestLogAddress:
    def test_ordering_within_system(self):
        # reprolint: disable=R003 -- exercises the documented same-system
        # total order itself; both operands share system_id 1.
        assert LogAddress(1, 10) < LogAddress(1, 20)
        assert LogAddress(1, 20) <= LogAddress(1, 20)  # reprolint: disable=R003

    def test_advance(self):
        addr = LogAddress(3, 100)
        assert addr.advance(48) == LogAddress(3, 148)
        assert addr == LogAddress(3, 100)  # frozen

    def test_null_sentinel(self):
        assert is_null_address(NULL_LOG_ADDRESS)
        assert not is_null_address(LogAddress(0, 0))

    def test_hashable(self):
        assert len({LogAddress(1, 0), LogAddress(1, 0),
                    LogAddress(2, 0)}) == 2


class TestLsnHelpers:
    def test_max_lsn(self):
        assert max_lsn([3, 9, 1]) == 9
        assert max_lsn([]) == NULL_LSN

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 2**63)))
    def test_property_max_lsn_matches_builtin(self, values):
        assert max_lsn(values) == (max(values) if values else NULL_LSN)


class TestStatsRegistry:
    def test_incr_and_get(self):
        stats = StatsRegistry()
        stats.incr("x")
        stats.incr("x", 4)
        assert stats.get("x") == 5
        assert stats.get("never") == 0

    def test_negative_rejected(self):
        stats = StatsRegistry()
        with pytest.raises(ValueError):
            stats.incr("x", -1)

    def test_snapshot_isolated(self):
        stats = StatsRegistry()
        stats.incr("a")
        snap = stats.snapshot()
        stats.incr("a")
        assert snap == {"a": 1}
        assert stats.get("a") == 2

    def test_diff(self):
        stats = StatsRegistry()
        stats.incr("a", 2)
        before = stats.snapshot()
        stats.incr("a", 3)
        stats.incr("b")
        assert stats.diff(before) == {"a": 3, "b": 1}

    def test_reset_and_iter(self):
        stats = StatsRegistry()
        stats.incr("b")
        stats.incr("a")
        assert list(stats) == [("a", 1), ("b", 1)]
        stats.reset()
        assert stats.snapshot() == {}


class TestCounterHandles:
    """Pre-resolved counter handles (the hot-lane stats fast path) must
    stay indistinguishable from ``incr``/``get`` on the registry."""

    def test_handle_bumps_visible_through_get(self):
        stats = StatsRegistry()
        handle = stats.handle("h.counter")
        handle.bump()
        handle.bump(4)
        assert stats.get("h.counter") == 5

    def test_handle_and_incr_merge(self):
        stats = StatsRegistry()
        handle = stats.handle("h.counter")
        handle.bump(2)
        stats.incr("h.counter", 3)
        assert stats.get("h.counter") == 5
        assert stats.snapshot()["h.counter"] == 5

    def test_handle_is_interned(self):
        stats = StatsRegistry()
        assert stats.handle("h.counter") is stats.handle("h.counter")

    def test_reset_zeroes_but_keeps_handle_alive(self):
        stats = StatsRegistry()
        handle = stats.handle("h.counter")
        handle.bump(7)
        stats.reset()
        assert stats.get("h.counter") == 0
        handle.bump()
        assert stats.get("h.counter") == 1

    def test_diff_sees_handle_bumps(self):
        stats = StatsRegistry()
        handle = stats.handle("h.counter")
        handle.bump()
        before = stats.snapshot()
        handle.bump(9)
        assert stats.diff(before) == {"h.counter": 9}

    def test_iteration_includes_handle_counters(self):
        stats = StatsRegistry()
        stats.handle("h.counter").bump(2)
        stats.incr("other", 1)
        assert dict(iter(stats)) == {"h.counter": 2, "other": 1}
