"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import CsSystem, SDComplex


@pytest.fixture
def sd():
    """A two-instance shared-disks complex."""
    complex_ = SDComplex(n_data_pages=512)
    complex_.add_instance(1)
    complex_.add_instance(2)
    return complex_


@pytest.fixture
def sd3():
    """A three-instance shared-disks complex."""
    complex_ = SDComplex(n_data_pages=512)
    for system_id in (1, 2, 3):
        complex_.add_instance(system_id)
    return complex_


@pytest.fixture
def cs():
    """A client-server system with two clients."""
    system = CsSystem(n_data_pages=512)
    system.add_client(1)
    system.add_client(2)
    return system
