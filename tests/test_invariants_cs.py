"""Property-based invariant tests for the client-server architecture.

Random client histories with client crashes (recovered by the server),
server crashes (whole-deployment failure) and page recalls; checked
against an oracle model for durability and atomicity, plus per-page LSN
uniqueness across the single interleaved server log.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import CsSystem
from repro.common.errors import (
    DeadlockError,
    LockWouldBlock,
    ProtocolError,
)
from repro.workload.generator import populate_pages

N_CLIENTS = 2
N_PAGES = 3
RECORDS_PER_PAGE = 3


def op_strategy():
    handle = st.integers(0, N_PAGES * RECORDS_PER_PAGE - 1)
    client = st.integers(0, N_CLIENTS - 1)
    return st.lists(
        st.one_of(
            st.tuples(st.just("update"), client, handle,
                      st.integers(0, 255)),
            st.tuples(st.just("commit"), client, st.just(0), st.just(0)),
            st.tuples(st.just("rollback"), client, st.just(0), st.just(0)),
            st.tuples(st.just("send_back"), client, handle, st.just(0)),
            st.tuples(st.just("checkpoint"), client, st.just(0), st.just(0)),
            st.tuples(st.just("crash_client"), client, st.just(0),
                      st.just(0)),
            st.tuples(st.just("crash_server"), st.just(0), st.just(0),
                      st.just(0)),
        ),
        min_size=1, max_size=35,
    )


@pytest.mark.parametrize("cache_capacity", [0, 3])
@settings(max_examples=50, deadline=None)
@given(ops=op_strategy())
def test_property_cs_durability_and_atomicity(cache_capacity, ops):
    """With unbounded caches and with tiny LRU caches (capacity 3),
    which forces dirty write-backs mid-transaction."""
    system = CsSystem(n_data_pages=128)
    clients = [
        system.add_client(i + 1, cache_capacity=cache_capacity)
        for i in range(N_CLIENTS)
    ]
    handles = populate_pages(clients[0], N_PAGES, RECORDS_PER_PAGE,
                             payload_bytes=4)
    txn0 = clients[0].begin()
    for page_id, slot in handles:
        clients[0].update(txn0, page_id, slot, b"init")
    clients[0].commit(txn0)

    committed = {h: b"init" for h in handles}
    pending = [dict() for _ in range(N_CLIENTS)]
    txns = [None] * N_CLIENTS

    def ensure_txn(idx):
        if txns[idx] is None:
            txns[idx] = clients[idx].begin()
        return txns[idx]

    for kind, a, b, c in ops:
        if kind == "update":
            idx, handle_idx, value = a, b, c
            if clients[idx].crashed or system.server.crashed:
                continue
            page_id, slot = handles[handle_idx]
            payload = bytes([value]) * 4
            try:
                clients[idx].update(ensure_txn(idx), page_id, slot, payload)
                pending[idx][(page_id, slot)] = payload
            except (LockWouldBlock, ProtocolError):
                pass
            except DeadlockError:
                clients[idx].rollback(txns[idx])
                txns[idx] = None
                pending[idx] = {}
        elif kind == "commit":
            idx = a
            if clients[idx].crashed or system.server.crashed \
                    or txns[idx] is None:
                continue
            clients[idx].commit(txns[idx])
            txns[idx] = None
            committed.update(pending[idx])
            pending[idx] = {}
        elif kind == "rollback":
            idx = a
            if clients[idx].crashed or system.server.crashed \
                    or txns[idx] is None:
                continue
            try:
                clients[idx].rollback(txns[idx])
            except ProtocolError:
                continue
            txns[idx] = None
            pending[idx] = {}
        elif kind == "send_back":
            idx, handle_idx = a, b
            if clients[idx].crashed or system.server.crashed:
                continue
            page_id, _ = handles[handle_idx]
            clients[idx].send_page_back(page_id)
        elif kind == "checkpoint":
            idx = a
            if clients[idx].crashed or system.server.crashed:
                continue
            clients[idx].checkpoint()
        elif kind == "crash_client":
            idx = a
            if clients[idx].crashed or system.server.crashed:
                continue
            system.crash_client(idx + 1)
            txns[idx] = None
            pending[idx] = {}
            system.recover_client(idx + 1)
        elif kind == "crash_server":
            if system.server.crashed:
                continue
            system.crash_server()
            for idx in range(N_CLIENTS):
                txns[idx] = None
                pending[idx] = {}
            system.restart_server()

    # Final verdict: crash everything, restart, compare disk to model.
    if not system.server.crashed:
        system.crash_server()
    system.restart_server()
    for page_id, slot in handles:
        value = system.server.disk.read_page(page_id).read_record(slot)
        assert value == committed[(page_id, slot)], (
            f"page {page_id} slot {slot}: disk={value!r} "
            f"expected={committed[(page_id, slot)]!r}"
        )


@settings(max_examples=50, deadline=None)
@given(ops=op_strategy())
def test_property_cs_per_page_lsn_uniqueness(ops):
    """I1 in CS: per-page LSNs never repeat across the interleaved
    single log, and per-client streams are increasing."""
    system = CsSystem(n_data_pages=128)
    clients = [system.add_client(i + 1) for i in range(N_CLIENTS)]
    handles = populate_pages(clients[0], N_PAGES, RECORDS_PER_PAGE,
                             payload_bytes=4)

    txns = [None] * N_CLIENTS
    for kind, a, b, c in ops:
        if kind != "update":
            continue
        idx, handle_idx, value = a, b, c
        page_id, slot = handles[handle_idx]
        try:
            if txns[idx] is None:
                txns[idx] = clients[idx].begin()
            clients[idx].update(txns[idx], page_id, slot,
                                bytes([value]) * 4)
        except (LockWouldBlock, ProtocolError):
            pass
        except DeadlockError:
            clients[idx].rollback(txns[idx])
            txns[idx] = None
    for idx in range(N_CLIENTS):
        if txns[idx] is not None:
            clients[idx].commit(txns[idx])

    per_page = {}
    per_client = {}
    for _, record in system.server.log.scan():
        if record.is_page_oriented():
            per_page.setdefault(record.page_id, []).append(record.lsn)
        if record.system_id and record.lsn:
            per_client.setdefault(record.system_id, []).append(record.lsn)
    for page_id, lsns in per_page.items():
        assert len(lsns) == len(set(lsns))
        assert lsns == sorted(lsns)   # ship order preserves page order
    for client_id, lsns in per_client.items():
        assert lsns == sorted(lsns)
