"""Tests for the complex-wide invariant verifier."""

from repro import CsSystem, SDComplex
from repro.baselines.naive import NaiveDbmsInstance
from repro.harness.verifier import (
    verify_cs_system,
    verify_logs,
    verify_sd_complex,
)
from repro.workload.generator import (
    WorkloadConfig,
    build_scripts,
    populate_pages,
    run_interleaved_cs,
    run_interleaved_sd,
)


class TestHealthyComplexes:
    def test_sd_workload_verifies_clean(self):
        sd = SDComplex(n_data_pages=256)
        instances = [sd.add_instance(i) for i in (1, 2)]
        handles = populate_pages(instances[0], 4, 4)
        scripts = build_scripts(WorkloadConfig(n_transactions=12, seed=3),
                                2, handles)
        run_interleaved_sd(instances, scripts)
        for instance in instances:
            instance.pool.flush_all()
        report = verify_sd_complex(sd, quiesced=True)
        assert report.ok, [str(v) for v in report.violations]
        assert report.records_checked > 0

    def test_sd_after_crash_recovery_verifies_clean(self):
        sd = SDComplex(n_data_pages=256)
        instances = [sd.add_instance(i) for i in (1, 2)]
        handles = populate_pages(instances[0], 4, 4)
        scripts = build_scripts(WorkloadConfig(n_transactions=10, seed=5),
                                2, handles)
        run_interleaved_sd(instances, scripts)
        sd.crash_complex()
        sd.restart_complex()
        report = verify_sd_complex(sd, quiesced=True)
        assert report.ok, [str(v) for v in report.violations]

    def test_cs_workload_verifies_clean(self):
        cs = CsSystem(n_data_pages=256)
        clients = [cs.add_client(i) for i in (1, 2)]
        handles = populate_pages(clients[0], 4, 4)
        scripts = build_scripts(WorkloadConfig(n_transactions=12, seed=7),
                                2, handles)
        run_interleaved_cs(clients, scripts)
        cs.quiesce()
        report = verify_cs_system(cs, quiesced=True)
        assert report.ok, [str(v) for v in report.violations]

    def test_summary_line(self):
        sd = SDComplex(n_data_pages=128)
        sd.add_instance(1)
        report = verify_sd_complex(sd)
        assert "OK" in report.summary()


class TestDetectsViolations:
    def test_naive_scheme_flagged(self):
        """The verifier catches exactly what the paper warns about: the
        naive scheme assigns per-page LSNs independently per system, so
        two systems updating one page from the same log position
        collide."""
        from repro.baselines.naive import NaiveLogManager
        from repro.wal.records import make_update

        a, b = NaiveLogManager(1), NaiveLogManager(2)
        a.append(make_update(1, 1, 10, 0, b"r", b"u"))   # LSN 1
        b.append(make_update(2, 2, 10, 0, b"r", b"u"))   # LSN 1 again!
        report = verify_logs([a, b])
        assert not report.ok
        assert any(v.invariant == "I1" for v in report.violations)

    def test_usn_scheme_never_collides_in_same_scenario(self):
        """Control: the USN rule with coherency avoids the collision
        the naive test above constructs."""
        sd = SDComplex(n_data_pages=256)
        s1, s2 = sd.add_instance(1), sd.add_instance(2)
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        slot = s1.insert(txn, page_id, b"x")
        s1.commit(txn)
        for i in range(6):
            instance = (s1, s2)[i % 2]
            txn = instance.begin()
            instance.update(txn, page_id, slot, b"v%d" % i)
            instance.commit(txn)
        report = verify_logs([s1.log, s2.log])
        assert report.ok, [str(v) for v in report.violations]

    def test_detects_disk_ahead_of_logs(self):
        from repro.storage.page import Page, PageType
        sd = SDComplex(n_data_pages=256)
        s1 = sd.add_instance(1)
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        s1.insert(txn, page_id, b"x")
        s1.commit(txn)
        s1.pool.flush_all()
        # Forge a disk page with an impossible LSN.
        rogue = sd.disk.read_page(page_id)
        rogue.page_lsn = 10_000_000
        sd.disk.write_page(rogue)
        report = verify_sd_complex(sd)
        assert not report.ok

    def test_detects_quiesced_mismatch(self):
        sd = SDComplex(n_data_pages=256)
        s1 = sd.add_instance(1)
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        s1.insert(txn, page_id, b"x")
        s1.commit(txn)
        # Not flushed: quiesced check must complain that the disk lags.
        report = verify_sd_complex(sd, quiesced=True)
        assert not report.ok


class TestEdgeCases:
    """Degenerate inputs the static linter cannot reason about."""

    def test_empty_log_set_is_vacuously_clean(self):
        report = verify_logs([])
        assert report.ok
        assert report.logs_checked == 0
        assert report.records_checked == 0
        assert "OK" in report.summary()

    def test_single_empty_log_is_clean(self):
        from repro.wal.log_manager import LogManager

        report = verify_logs([LogManager(1)])
        assert report.ok
        assert report.logs_checked == 1
        assert report.records_checked == 0

    def test_all_null_lsn_pages_verify_clean(self):
        """Freshly formatted pages carry NULL_LSN and appear in no log;
        the verifier must neither crash nor invent violations."""
        from repro.common.config import NULL_LSN
        from repro.storage.page import Page, PageType

        sd = SDComplex(n_data_pages=64)
        sd.add_instance(1)
        for page_id in (10, 11, 12):
            page = Page()
            page.format(page_id, PageType.DATA)
            assert page.page_lsn == NULL_LSN
            sd.disk.write_page(page)
        report = verify_sd_complex(sd, quiesced=True)
        assert report.ok, [str(v) for v in report.violations]
        assert report.pages_checked == 0  # nothing logged, nothing owed

    def test_non_monotonic_page_lsn_history_reported(self):
        """A log whose LSNs go 5, 3, 4 violates I2 (strict per-log
        monotonicity, the USN scheme's core guarantee).  Crafted via
        append_raw, which stores records verbatim like the CS server
        path — the only way a broken history can enter a log."""
        from repro.wal.log_manager import LogManager
        from repro.wal.records import make_update

        log = LogManager(1)
        blob = b""
        for lsn, page_id in ((5, 20), (3, 21), (4, 22)):
            record = make_update(1, 1, page_id, 0, b"r", b"u")
            record.lsn = lsn
            blob += record.to_bytes()
        log.append_raw(blob)
        report = verify_logs([log])
        assert not report.ok
        i2 = [v for v in report.violations if v.invariant == "I2"]
        # 3-after-5 and 4-after-... both break strictness exactly once
        # each against the running previous (5 then 3 -> prev 3, 4 > 3 ok).
        assert len(i2) == 1
        assert "3" in i2[0].detail and "5" in i2[0].detail

    def test_duplicate_lsn_same_page_across_logs_reported(self):
        """All-points check of I1 with a deliberately equal pair."""
        from repro.wal.log_manager import LogManager
        from repro.wal.records import make_update

        a, b = LogManager(1), LogManager(2)
        for log in (a, b):
            record = make_update(1, log.system_id, 30, 0, b"r", b"u")
            record.lsn = 7
            log.append_raw(record.to_bytes())
        report = verify_logs([a, b])
        assert not report.ok
        assert any(v.invariant == "I1" for v in report.violations)
