"""Tests for instant restart: redo-only on-demand per-page recovery.

Covers the equivalence discipline (instant and eager restart leave
byte-identical disk images), the open-for-business mechanics (losers
undone at open, redo deferred to demand/sweeper), the wiring knob
(``restart_mode`` defaults to the classic eager path), and the I8
``instant-recovery`` trace invariant.
"""

import pytest

from repro.common.stats import (
    INSTANT_DEMAND_RECOVERIES,
    INSTANT_PAGES_RECOVERED,
    INSTANT_SWEEP_RECOVERIES,
)
from repro.cs.system import CsSystem
from repro.faults.campaign import _disk_digest
from repro.faults.injector import NULL_INJECTOR
from repro.faults.scenarios import (
    build_cs,
    build_sd,
    run_cs_workload,
    run_sd_workload,
)
from repro.obs import events as ev
from repro.obs.invariants import check_trace, first_violation
from repro.obs.tracer import TraceEvent
from repro.sd.complex import SDComplex


# ----------------------------------------------------------------------
# small direct fixtures
# ----------------------------------------------------------------------
def small_sd(mode="eager", scheme="medium"):
    sd = SDComplex(n_data_pages=64, transfer_scheme=scheme,
                   restart_mode=mode)
    return sd, sd.add_instance(1), sd.add_instance(2)


def seed_pages(engine, n=4):
    """``n`` committed records on ``n`` fresh pages, all still dirty in
    the pool — restart redo work, one chain per page."""
    handles = []
    txn = engine.begin()
    for _ in range(n):
        page_id = engine.allocate_page(txn)
        handles.append((page_id, engine.insert(txn, page_id, b"v0")))
    engine.commit(txn)
    return handles


# ----------------------------------------------------------------------
# equivalence: instant == eager, byte for byte
# ----------------------------------------------------------------------
def run_sd_scenario(mode, scheme):
    """Chaos scenario workload, crash one instance, restart in ``mode``."""
    sd, tracer = build_sd(NULL_INJECTOR, seed=7)
    sd.transfer_scheme = scheme
    sd.coherency.scheme = scheme
    sd.restart_mode = mode
    run_sd_workload(sd, seed=7)
    victim = min(sd.instances)
    sd.crash_instance(victim)
    summary = sd.restart_instance(victim)
    if mode == "instant":
        sd.instant_drain()
    for system_id in sorted(sd.instances):
        sd.instances[system_id].pool.flush_all()
    return sd, tracer, summary


def run_cs_scenario(mode):
    cs, tracer = build_cs(NULL_INJECTOR, seed=7)
    cs.server.restart_mode = mode
    run_cs_workload(cs, seed=7)
    cs.crash_server()
    summary = cs.restart_server()
    if mode == "instant":
        cs.server.instant_drain()
    cs.quiesce()
    return cs, tracer, summary


class TestEquivalence:
    @pytest.mark.parametrize("scheme", ["medium", "fast"])
    def test_sd_instant_digest_matches_eager(self, scheme):
        eager_sd, _, eager_summary = run_sd_scenario("eager", scheme)
        instant_sd, tracer, instant_summary = run_sd_scenario(
            "instant", scheme)
        assert _disk_digest(instant_sd.disk) == _disk_digest(eager_sd.disk)
        assert (instant_summary.records_redone
                == eager_summary.records_redone)
        assert (instant_summary.clrs_written
                == eager_summary.clrs_written)
        assert check_trace(tracer.events()) == []

    def test_cs_instant_digest_matches_eager(self):
        eager_cs, _, eager_summary = run_cs_scenario("eager")
        instant_cs, tracer, instant_summary = run_cs_scenario("instant")
        assert (_disk_digest(instant_cs.server.disk)
                == _disk_digest(eager_cs.server.disk))
        assert (instant_summary.records_redone
                == eager_summary.records_redone)
        assert check_trace(tracer.events()) == []


# ----------------------------------------------------------------------
# the knob
# ----------------------------------------------------------------------
class TestRestartModeKnob:
    def test_default_is_eager_and_registry_stays_empty(self):
        sd, s1, _ = small_sd()
        assert sd.restart_mode == "eager"
        seed_pages(s1)
        sd.crash_instance(1)
        sd.restart_instance(1)
        assert sd.instant == {}
        assert s1.pool.recovery_intercept is None

    def test_unknown_restart_mode_rejected(self):
        with pytest.raises(ValueError):
            SDComplex(restart_mode="lazy")
        with pytest.raises(ValueError):
            CsSystem(restart_mode="lazy")


# ----------------------------------------------------------------------
# lazy mechanics
# ----------------------------------------------------------------------
class TestLazyRecovery:
    def test_open_defers_redo_then_first_touch_recovers(self):
        sd, s1, s2 = small_sd(mode="instant")
        handles = seed_pages(s1)
        sd.crash_instance(1)
        sd.restart_instance(1)
        manager = sd.instant[1]
        pending = manager.pending_pages()
        page_id, slot = handles[0]
        assert page_id in pending
        # A survivor's read is the first touch: the coherency guard
        # must apply the page's chain before serving it.
        txn = s2.begin()
        assert s2.read(txn, page_id, slot) == b"v0"
        s2.commit(txn)
        assert page_id not in manager.pending_pages()
        assert manager.demand_recoveries >= 1
        assert sd.stats.get(INSTANT_DEMAND_RECOVERIES) >= 1

    def test_sweeper_recovers_in_sorted_deterministic_increments(self):
        sd, s1, _ = small_sd(mode="instant")
        seed_pages(s1, n=5)
        sd.crash_instance(1)
        sd.restart_instance(1)
        manager = sd.instant[1]
        expected = manager.pending_pages()
        assert expected
        order = []
        while not manager.drained:
            before = manager.pending_pages()
            assert manager.sweep(max_pages=1) == 1
            order.extend(sorted(set(before)
                                - set(manager.pending_pages())))
        assert order == expected
        assert sd.stats.get(INSTANT_SWEEP_RECOVERIES) == len(expected)

    def test_drain_clears_registry_and_intercepts(self):
        sd, s1, s2 = small_sd(mode="instant")
        seed_pages(s1)
        sd.crash_instance(1)
        sd.restart_instance(1)
        # The restarting instance's pool carries the intercept;
        # survivors are guarded at the coherency seam instead.
        assert s1.pool.recovery_intercept is not None
        assert sd.instant_drain() > 0
        assert sd.instant == {}
        assert s1.pool.recovery_intercept is None
        assert s2.pool.recovery_intercept is None
        assert sd.stats.get(INSTANT_PAGES_RECOVERED) > 0

    def test_losers_are_undone_at_open(self):
        sd, s1, _ = small_sd(mode="instant")
        handles = seed_pages(s1)
        page_id, slot = handles[0]
        in_flight = s1.begin()
        s1.update(in_flight, page_id, slot, b"in-flight")
        s1.pool.write_page(page_id)  # steal the uncommitted image
        s1.log.force()
        sd.crash_instance(1)
        summary = sd.restart_instance(1)
        assert summary.loser_transactions == 1
        assert summary.clrs_written >= 1
        sd.instant_drain()
        s1.pool.flush_all()
        assert sd.disk.read_page(page_id).read_record(slot) == b"v0"

    def test_recover_page_is_idempotent_per_page(self):
        sd, s1, _ = small_sd(mode="instant")
        handles = seed_pages(s1, n=2)
        sd.crash_instance(1)
        sd.restart_instance(1)
        manager = sd.instant[1]
        page_id = handles[0][0]
        assert manager.recover_page(page_id) is True
        assert manager.recover_page(page_id) is False


# ----------------------------------------------------------------------
# I8: the instant-recovery trace invariant
# ----------------------------------------------------------------------
def _ev(seq, system, kind, /, **fields):
    return TraceEvent(seq=seq, system=system, kind=kind, fields=fields)


class TestInstantInvariant:
    def test_stale_access_before_recovery_flagged(self):
        events = [
            _ev(1, 1, ev.INSTANT_OPEN, mode="medium", pages=[5, 6],
                losers=0),
            _ev(2, 2, ev.PAGE_READ, page=5),
        ]
        found = check_trace(events)
        assert first_violation(found, "instant-recovery") is not None

    def test_access_after_recovery_clean(self):
        events = [
            _ev(1, 1, ev.INSTANT_OPEN, mode="medium", pages=[5],
                losers=0),
            _ev(2, 1, ev.INSTANT_PAGE, page=5, redone=1, skipped=0,
                via="demand"),
            _ev(3, 2, ev.PAGE_READ, page=5),
            _ev(4, 1, ev.INSTANT_DONE, recovered=1, demand=1, swept=0),
        ]
        assert check_trace(events) == []

    def test_done_with_pending_pages_flagged(self):
        events = [
            _ev(1, 1, ev.INSTANT_OPEN, mode="cs", pages=[5], losers=0),
            _ev(2, 1, ev.INSTANT_DONE, recovered=0, demand=0, swept=0),
        ]
        found = check_trace(events)
        assert first_violation(found, "instant-recovery") is not None

    def test_undeclared_recover_page_flagged(self):
        events = [
            _ev(1, 1, ev.INSTANT_PAGE, page=9, redone=0, skipped=0,
                via="sweep"),
        ]
        found = check_trace(events)
        assert first_violation(found, "instant-recovery") is not None
