"""Serial-equivalence tests for parallel partitioned restart redo.

The load-bearing claim (docs/scaleout.md): after a whole-complex crash,
restart with P-way partitioned redo leaves the shared disk byte-for-byte
identical to serial restart, for every P and under both page-transfer
schemes.  These tests assert exactly that, plus the observability
contract (plan/partition events, invariant-clean traces).
"""

import hashlib

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.cluster.redo import partition_of
from repro.obs import events as ev
from repro.obs.invariants import check_trace
from repro.obs.tracer import Tracer
from repro.workload.scaleout import ScaleoutConfig, run_scaleout

#: Small enough to keep the parallelism x scheme sweep quick, sharing
#: high enough that hot pages land in several instances' redo sets.
WORKLOAD = ScaleoutConfig(n_transactions=24, sharing_ratio=0.2, seed=11)


def disk_digest(sd):
    """SHA-256 over every materialised disk page, in page-id order."""
    digest = hashlib.sha256()
    for page_id in sorted(sd.disk._pages):
        digest.update(page_id.to_bytes(8, "big"))
        digest.update(sd.disk._pages[page_id])
    return digest.hexdigest()


def crash_and_recover(parallelism, scheme="medium", tracer=None):
    """Run the workload, crash the whole complex, restart with
    ``parallelism``-way redo; return the complex for inspection."""
    sd = build_cluster(
        ClusterConfig(n_instances=4, lock_shards=1,
                      redo_parallelism=parallelism, n_data_pages=256,
                      transfer_scheme=scheme),
        tracer=tracer,
    )
    result = run_scaleout(sd, WORKLOAD)
    assert result.committed > 0
    sd.crash_complex()
    summaries = sd.restart_complex()
    return sd, summaries


class TestSerialEquivalence:
    @pytest.mark.parametrize("scheme", ["medium", "fast"])
    def test_parallel_redo_is_byte_identical_to_serial(self, scheme):
        serial, _ = crash_and_recover(1, scheme)
        baseline = disk_digest(serial)
        baseline_written = set(serial.disk.written_page_ids())
        for parallelism in (2, 4, 8):
            parallel, _ = crash_and_recover(parallelism, scheme)
            assert disk_digest(parallel) == baseline, (
                f"divergent disk image at parallelism={parallelism} "
                f"under the {scheme} scheme")
            assert set(parallel.disk.written_page_ids()) == baseline_written

    def test_complex_usable_after_parallel_restart(self):
        """The recovered complex takes (and survives) a fresh workload."""
        sd, _ = crash_and_recover(4)
        rerun = run_scaleout(sd, ScaleoutConfig(n_transactions=12, seed=3))
        assert rerun.committed > 0


class TestObservability:
    def test_plan_and_partition_events_emitted(self):
        tracer = Tracer()
        crash_and_recover(4, tracer=tracer)
        plans = [e for e in tracer.events()
                 if e.kind == ev.CLUSTER_REDO_PLAN]
        parts = [e for e in tracer.events()
                 if e.kind == ev.CLUSTER_REDO_PART]
        assert plans, "no redo plan traced"
        assert all(e.fields["parallelism"] == 4 for e in plans)
        assert parts, "no partition outcomes traced"
        for event in parts:
            assert 0 <= event.fields["partition"] < 4
            assert (event.fields["redone"] + event.fields["skipped"]
                    == event.fields["records"])

    def test_serial_restart_emits_no_cluster_events(self):
        tracer = Tracer()
        crash_and_recover(1, tracer=tracer)
        kinds = {e.kind for e in tracer.events()}
        assert ev.CLUSTER_REDO_PLAN not in kinds
        assert ev.CLUSTER_REDO_PART not in kinds

    @pytest.mark.parametrize("parallelism", [1, 2, 4, 8])
    def test_trace_invariants_hold(self, parallelism):
        tracer = Tracer()
        crash_and_recover(parallelism, tracer=tracer)
        violations = check_trace(tracer.events())
        assert violations == []


class TestPartitioning:
    def test_partition_function_is_total_and_stable(self):
        for page_id in range(64):
            index = partition_of(page_id, 4)
            assert index == page_id % 4
            assert 0 <= index < 4

    def test_redo_and_skip_counts_match_serial(self):
        _, serial = crash_and_recover(1)
        _, parallel = crash_and_recover(4)

        def counts(summaries):
            return sorted(
                (sid, s.records_redone, s.redo_skipped_by_lsn)
                for sid, s in summaries.items()
            )

        assert counts(parallel) == counts(serial)
