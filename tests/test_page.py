"""Unit and property tests for the slotted page format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import NULL_LSN, PAGE_DATA_SIZE, PAGE_SIZE
from repro.common.errors import CorruptPageError
from repro.storage.page import Page, PageType, SLOT_SIZE


def make_page(page_id=7, page_type=PageType.DATA):
    page = Page()
    page.format(page_id, page_type)
    return page


class TestHeader:
    def test_fresh_page_header(self):
        page = make_page(page_id=12)
        assert page.page_id == 12
        assert page.page_lsn == NULL_LSN
        assert page.page_type == PageType.DATA
        assert page.slot_count == 0

    def test_page_lsn_roundtrip(self):
        page = make_page()
        page.page_lsn = 123456789
        assert page.page_lsn == 123456789

    def test_page_lsn_rejects_negative(self):
        page = make_page()
        with pytest.raises(ValueError):
            page.page_lsn = -1

    def test_format_with_initial_lsn(self):
        page = Page()
        page.format(3, PageType.INDEX, page_lsn=55)
        assert page.page_lsn == 55
        assert page.page_type == PageType.INDEX

    def test_buffer_must_be_page_sized(self):
        with pytest.raises(CorruptPageError):
            Page(bytearray(100))

    def test_format_wipes_previous_content(self):
        page = make_page()
        page.insert_record(b"data")
        page.format(7, PageType.DATA)
        assert page.slot_count == 0
        assert page.free_space() == PAGE_DATA_SIZE


class TestRecords:
    def test_insert_and_read(self):
        page = make_page()
        slot = page.insert_record(b"hello")
        assert page.read_record(slot) == b"hello"

    def test_insert_returns_sequential_slots(self):
        page = make_page()
        slots = [page.insert_record(bytes([i])) for i in range(1, 6)]
        assert slots == [0, 1, 2, 3, 4]

    def test_empty_record_rejected(self):
        page = make_page()
        with pytest.raises(ValueError):
            page.insert_record(b"")

    def test_delete_leaves_tombstone(self):
        page = make_page()
        slot = page.insert_record(b"x")
        page.delete_record(slot)
        assert page.read_record(slot) is None
        assert page.slot_count == 1  # slot numbers remain stable

    def test_double_delete_raises(self):
        page = make_page()
        slot = page.insert_record(b"x")
        page.delete_record(slot)
        with pytest.raises(CorruptPageError):
            page.delete_record(slot)

    def test_insert_reuses_tombstone_slot(self):
        page = make_page()
        a = page.insert_record(b"a")
        page.insert_record(b"b")
        page.delete_record(a)
        c = page.insert_record(b"c")
        assert c == a
        assert page.read_record(c) == b"c"

    def test_update_same_size_in_place(self):
        page = make_page()
        slot = page.insert_record(b"aaaa")
        page.update_record(slot, b"bbbb")
        assert page.read_record(slot) == b"bbbb"

    def test_update_shrinking(self):
        page = make_page()
        slot = page.insert_record(b"aaaaaaaa")
        page.update_record(slot, b"bb")
        assert page.read_record(slot) == b"bb"

    def test_update_growing(self):
        page = make_page()
        slot = page.insert_record(b"aa")
        page.update_record(slot, b"b" * 100)
        assert page.read_record(slot) == b"b" * 100

    def test_update_tombstone_raises(self):
        page = make_page()
        slot = page.insert_record(b"x")
        page.delete_record(slot)
        with pytest.raises(CorruptPageError):
            page.update_record(slot, b"y")

    def test_records_iterates_live_only(self):
        page = make_page()
        a = page.insert_record(b"a")
        b = page.insert_record(b"b")
        page.delete_record(a)
        assert list(page.records()) == [(b, b"b")]

    def test_is_empty(self):
        page = make_page()
        assert page.is_empty()
        slot = page.insert_record(b"a")
        assert not page.is_empty()
        page.delete_record(slot)
        assert page.is_empty()

    def test_page_full_raises(self):
        page = make_page()
        big = b"z" * 1000
        for _ in range(4):
            page.insert_record(big)
        with pytest.raises(CorruptPageError):
            page.insert_record(big)

    def test_compaction_reclaims_deleted_space(self):
        page = make_page()
        big = b"z" * 1000
        slots = [page.insert_record(big) for _ in range(4)]
        for slot in slots[:2]:
            page.delete_record(slot)
        # Needs compaction to fit; must succeed.
        new_slot = page.insert_record(b"w" * 1500)
        assert page.read_record(new_slot) == b"w" * 1500
        # Survivors intact after compaction.
        assert page.read_record(slots[2]) == big
        assert page.read_record(slots[3]) == big


class TestInsertAt:
    def test_insert_at_specific_slot(self):
        page = make_page()
        page.insert_record_at(3, b"redo")
        assert page.read_record(3) == b"redo"
        assert page.slot_count == 4
        assert page.read_record(0) is None  # intermediate tombstones

    def test_insert_at_occupied_slot_raises(self):
        page = make_page()
        page.insert_record(b"a")
        with pytest.raises(CorruptPageError):
            page.insert_record_at(0, b"b")

    def test_insert_at_tombstone(self):
        page = make_page()
        slot = page.insert_record(b"a")
        page.delete_record(slot)
        page.insert_record_at(slot, b"b")
        assert page.read_record(slot) == b"b"

    def test_replay_reproduces_original_layout(self):
        original = make_page()
        ops = []
        s0 = original.insert_record(b"one")
        ops.append(("insert", s0, b"one"))
        s1 = original.insert_record(b"two")
        ops.append(("insert", s1, b"two"))
        original.delete_record(s0)
        ops.append(("delete", s0, None))
        replay = make_page()
        for kind, slot, payload in ops:
            if kind == "insert":
                replay.insert_record_at(slot, payload)
            else:
                replay.delete_record(slot)
        assert list(replay.records()) == list(original.records())


class TestPayloadAccess:
    def test_payload_roundtrip(self):
        page = make_page(page_type=PageType.SPACE_MAP)
        page.write_payload(10, b"\xff\x01")
        assert page.read_payload(10, 2) == b"\xff\x01"

    def test_payload_bounds_checked(self):
        page = make_page()
        with pytest.raises(IndexError):
            page.write_payload(PAGE_DATA_SIZE - 1, b"ab")
        with pytest.raises(IndexError):
            page.read_payload(-1, 1)


class TestSerialization:
    def test_bytes_roundtrip(self):
        page = make_page(page_id=42)
        page.insert_record(b"payload")
        page.page_lsn = 99
        clone = Page.from_bytes(page.to_bytes())
        assert clone.page_id == 42
        assert clone.page_lsn == 99
        assert clone.read_record(0) == b"payload"

    def test_copy_is_independent(self):
        page = make_page()
        slot = page.insert_record(b"orig")
        clone = page.copy()
        clone.update_record(slot, b"chgd")
        assert page.read_record(slot) == b"orig"

    def test_image_is_page_sized(self):
        assert len(make_page().to_bytes()) == PAGE_SIZE


@settings(max_examples=60, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=1, max_size=60), min_size=1,
                      max_size=40),
)
def test_property_insert_then_read_all(payloads):
    """Every inserted record reads back identically."""
    page = make_page()
    slots = [page.insert_record(p) for p in payloads]
    for slot, payload in zip(slots, payloads):
        assert page.read_record(slot) == payload


@settings(max_examples=60, deadline=None)
@given(
    steps=st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "update"]),
                  st.binary(min_size=1, max_size=40)),
        min_size=1, max_size=60,
    ),
)
def test_property_model_based_page_ops(steps):
    """The page agrees with a dict model under random op sequences."""
    page = make_page()
    model = {}
    for kind, payload in steps:
        if kind == "insert":
            if page.free_space() < len(payload) + SLOT_SIZE:
                continue
            slot = page.insert_record(payload)
            model[slot] = payload
        elif kind == "delete" and model:
            slot = sorted(model)[0]
            page.delete_record(slot)
            del model[slot]
        elif kind == "update" and model:
            slot = sorted(model)[-1]
            try:
                page.update_record(slot, payload)
            except CorruptPageError:
                continue  # page full: drop this random update
            model[slot] = payload
    assert dict(page.records()) == model


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=1, max_size=200), st.integers(0, 2**64 - 1))
def test_property_serialization_roundtrip(payload, lsn):
    page = make_page()
    page.insert_record(payload)
    page.page_lsn = lsn
    clone = Page.from_bytes(page.to_bytes())
    assert clone.page_lsn == lsn
    assert clone.read_record(0) == payload
