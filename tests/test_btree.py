"""Tests for the B-tree access method on the multi-system engine."""

import random

import pytest

from repro import SDComplex
from repro.access.btree import BTree


@pytest.fixture
def env():
    sd = SDComplex(n_data_pages=1024)
    s1 = sd.add_instance(1)
    s2 = sd.add_instance(2)
    txn = s1.begin()
    tree = BTree.create(s1, txn, fanout=8)
    s1.commit(txn)
    return sd, s1, s2, tree


def key(i):
    return b"k%06d" % i


class TestBasics:
    def test_insert_and_search(self, env):
        sd, s1, _, tree = env
        txn = s1.begin()
        tree.insert(s1, txn, b"alpha", b"1")
        tree.insert(s1, txn, b"beta", b"2")
        s1.commit(txn)
        txn = s1.begin()
        assert tree.search(s1, txn, b"alpha") == b"1"
        assert tree.search(s1, txn, b"beta") == b"2"
        assert tree.search(s1, txn, b"gamma") is None
        s1.commit(txn)

    def test_overwrite_existing_key(self, env):
        sd, s1, _, tree = env
        txn = s1.begin()
        tree.insert(s1, txn, b"k", b"old")
        tree.insert(s1, txn, b"k", b"new")
        s1.commit(txn)
        txn = s1.begin()
        assert tree.search(s1, txn, b"k") == b"new"
        s1.commit(txn)

    def test_empty_key_rejected(self, env):
        sd, s1, _, tree = env
        txn = s1.begin()
        with pytest.raises(ValueError):
            tree.insert(s1, txn, b"", b"v")
        s1.rollback(txn)

    def test_scan_in_key_order(self, env):
        sd, s1, _, tree = env
        keys = [key(i) for i in (5, 1, 9, 3, 7)]
        txn = s1.begin()
        for k in keys:
            tree.insert(s1, txn, k, b"v" + k)
        s1.commit(txn)
        txn = s1.begin()
        scanned = [k for k, _ in tree.scan(s1, txn)]
        s1.commit(txn)
        assert scanned == sorted(keys)

    def test_delete(self, env):
        sd, s1, _, tree = env
        txn = s1.begin()
        tree.insert(s1, txn, b"a", b"1")
        assert tree.delete(s1, txn, b"a")
        assert not tree.delete(s1, txn, b"missing")
        s1.commit(txn)
        txn = s1.begin()
        assert tree.search(s1, txn, b"a") is None
        s1.commit(txn)


class TestSplits:
    def test_grows_beyond_one_page(self, env):
        sd, s1, _, tree = env
        txn = s1.begin()
        for i in range(100):
            tree.insert(s1, txn, key(i), b"v%d" % i)
        s1.commit(txn)
        assert tree.depth(s1) >= 2
        txn = s1.begin()
        for i in range(100):
            assert tree.search(s1, txn, key(i)) == b"v%d" % i
        s1.commit(txn)

    def test_root_page_id_stable_across_splits(self, env):
        sd, s1, _, tree = env
        root_before = tree.root_page_id
        txn = s1.begin()
        for i in range(100):
            tree.insert(s1, txn, key(i), b"v")
        s1.commit(txn)
        assert tree.root_page_id == root_before

    def test_random_order_inserts(self, env):
        sd, s1, _, tree = env
        rng = random.Random(7)
        keys = [key(i) for i in range(150)]
        rng.shuffle(keys)
        txn = s1.begin()
        for k in keys:
            tree.insert(s1, txn, k, k.upper())
        s1.commit(txn)
        txn = s1.begin()
        scanned = [k for k, _ in tree.scan(s1, txn)]
        s1.commit(txn)
        assert scanned == sorted(keys)


class TestEmptyLeafReuse:
    def test_emptied_leaf_is_deallocated(self, env):
        sd, s1, _, tree = env
        txn = s1.begin()
        for i in range(40):
            tree.insert(s1, txn, key(i), b"v")
        s1.commit(txn)
        assert tree.depth(s1) >= 2
        allocated_before = sum(
            1 for pid in range(sd.space_map.data_start,
                               sd.space_map.data_start + 100)
            if s1.is_allocated(pid)
        )
        txn = s1.begin()
        for i in range(40):
            tree.delete(s1, txn, key(i))
        s1.commit(txn)
        allocated_after = sum(
            1 for pid in range(sd.space_map.data_start,
                               sd.space_map.data_start + 100)
            if s1.is_allocated(pid)
        )
        assert allocated_after < allocated_before

    def test_reuse_after_mass_removal(self, env):
        """Delete everything, then refill: splits reallocate the freed
        pages read-free (the paper's index-page churn)."""
        sd, s1, _, tree = env
        txn = s1.begin()
        for i in range(60):
            tree.insert(s1, txn, key(i), b"v1")
        s1.commit(txn)
        txn = s1.begin()
        for i in range(60):
            tree.delete(s1, txn, key(i))
        s1.commit(txn)
        avoided_before = sd.stats.get("storage.page_reads_avoided")
        txn = s1.begin()
        for i in range(60):
            tree.insert(s1, txn, key(i), b"v2")
        s1.commit(txn)
        assert sd.stats.get("storage.page_reads_avoided") > avoided_before
        txn = s1.begin()
        assert tree.search(s1, txn, key(30)) == b"v2"
        s1.commit(txn)


class TestMultiSystem:
    def test_tree_shared_across_systems(self, env):
        sd, s1, s2, tree = env
        txn = s1.begin()
        tree.insert(s1, txn, b"from-s1", b"1")
        s1.commit(txn)
        handle = BTree(tree.root_page_id, fanout=tree.fanout)
        txn = s2.begin()
        assert handle.search(s2, txn, b"from-s1") == b"1"
        handle.insert(s2, txn, b"from-s2", b"2")
        s2.commit(txn)
        txn = s1.begin()
        assert tree.search(s1, txn, b"from-s2") == b"2"
        s1.commit(txn)

    def test_alternating_inserts_with_splits(self, env):
        sd, s1, s2, tree = env
        systems = (s1, s2)
        for i in range(80):
            instance = systems[i % 2]
            txn = instance.begin()
            tree.insert(instance, txn, key(i), b"s%d" % (i % 2))
            instance.commit(txn)
        txn = s1.begin()
        assert len(list(tree.scan(s1, txn))) == 80
        s1.commit(txn)


class TestRecovery:
    def test_tree_survives_crash(self, env):
        sd, s1, s2, tree = env
        txn = s1.begin()
        for i in range(50):
            tree.insert(s1, txn, key(i), b"v%d" % i)
        s1.commit(txn)
        sd.crash_instance(1)
        sd.restart_instance(1)
        reopened = BTree(tree.root_page_id, fanout=tree.fanout)
        txn = s2.begin()
        for i in range(50):
            assert reopened.search(s2, txn, key(i)) == b"v%d" % i
        s2.commit(txn)

    def test_uncommitted_inserts_rolled_back_at_restart(self, env):
        sd, s1, s2, tree = env
        txn = s1.begin()
        tree.insert(s1, txn, b"durable", b"1")
        s1.commit(txn)
        loser = s1.begin()
        tree.insert(s1, loser, b"ghost", b"2")
        s1.pool.flush_all()     # steal the dirty index pages
        sd.crash_instance(1)
        sd.restart_instance(1)
        reopened = BTree(tree.root_page_id, fanout=tree.fanout)
        txn = s2.begin()
        assert reopened.search(s2, txn, b"durable") == b"1"
        assert reopened.search(s2, txn, b"ghost") is None
        s2.commit(txn)

    def test_rollback_of_split_restores_structure(self, env):
        sd, s1, _, tree = env
        txn = s1.begin()
        for i in range(7):
            tree.insert(s1, txn, key(i), b"v")
        s1.commit(txn)
        depth_before = tree.depth(s1)
        loser = s1.begin()
        for i in range(100, 140):
            tree.insert(s1, loser, key(i), b"x")
        assert tree.depth(s1) > depth_before
        s1.rollback(loser)
        assert tree.depth(s1) == depth_before
        txn = s1.begin()
        scanned = [k for k, _ in tree.scan(s1, txn)]
        s1.commit(txn)
        assert scanned == [key(i) for i in range(7)]


class TestBTreeOnClientServer:
    """The same B-tree code runs against CS clients — the engines share
    the page-access and record-operation protocols."""

    def make_cs(self):
        from repro import CsSystem
        cs = CsSystem(n_data_pages=1024)
        return cs, cs.add_client(1), cs.add_client(2)

    def test_insert_search_on_client(self):
        cs, c1, c2 = self.make_cs()
        txn = c1.begin()
        tree = BTree.create(c1, txn, fanout=8)
        for i in range(50):
            tree.insert(c1, txn, key(i), b"v%d" % i)
        c1.commit(txn)
        txn = c1.begin()
        for i in range(50):
            assert tree.search(c1, txn, key(i)) == b"v%d" % i
        c1.commit(txn)

    def test_tree_shared_across_clients(self):
        cs, c1, c2 = self.make_cs()
        txn = c1.begin()
        tree = BTree.create(c1, txn, fanout=8)
        tree.insert(c1, txn, b"alice", b"1")
        c1.commit(txn)
        handle = BTree(tree.root_page_id, fanout=8)
        txn = c2.begin()
        assert handle.search(c2, txn, b"alice") == b"1"
        handle.insert(c2, txn, b"bob", b"2")
        c2.commit(txn)
        txn = c1.begin()
        assert tree.search(c1, txn, b"bob") == b"2"
        c1.commit(txn)

    def test_tree_survives_client_crash(self):
        cs, c1, c2 = self.make_cs()
        txn = c1.begin()
        tree = BTree.create(c1, txn, fanout=8)
        for i in range(30):
            tree.insert(c1, txn, key(i), b"v")
        c1.commit(txn)
        cs.crash_client(1)
        cs.recover_client(1)
        handle = BTree(tree.root_page_id, fanout=8)
        txn = c2.begin()
        assert [k for k, _ in handle.scan(c2, txn)] == \
            [key(i) for i in range(30)]
        c2.commit(txn)


class TestRangeScan:
    def test_closed_range(self, env):
        sd, s1, _, tree = env
        txn = s1.begin()
        for i in range(60):
            tree.insert(s1, txn, key(i), b"v")
        s1.commit(txn)
        txn = s1.begin()
        got = [k for k, _ in tree.range_scan(s1, txn, key(10), key(20))]
        s1.commit(txn)
        assert got == [key(i) for i in range(10, 20)]

    def test_open_ended_ranges(self, env):
        sd, s1, _, tree = env
        txn = s1.begin()
        for i in range(30):
            tree.insert(s1, txn, key(i), b"v")
        s1.commit(txn)
        txn = s1.begin()
        assert [k for k, _ in tree.range_scan(s1, txn, lo=key(25))] == \
            [key(i) for i in range(25, 30)]
        assert [k for k, _ in tree.range_scan(s1, txn, hi=key(5))] == \
            [key(i) for i in range(5)]
        assert len(list(tree.range_scan(s1, txn))) == 30
        s1.commit(txn)

    def test_empty_and_inverted_ranges(self, env):
        sd, s1, _, tree = env
        txn = s1.begin()
        tree.insert(s1, txn, b"m", b"v")
        s1.commit(txn)
        txn = s1.begin()
        assert list(tree.range_scan(s1, txn, b"x", b"z")) == []
        assert list(tree.range_scan(s1, txn, b"z", b"a")) == []
        s1.commit(txn)

    def test_range_matches_filtered_full_scan(self, env):
        import random as _random
        sd, s1, _, tree = env
        rng = _random.Random(11)
        keys = sorted({key(rng.randrange(500)) for _ in range(120)})
        txn = s1.begin()
        for k in keys:
            tree.insert(s1, txn, k, b"v")
        s1.commit(txn)
        txn = s1.begin()
        lo, hi = key(100), key(400)
        expected = [k for k in keys if lo <= k < hi]
        got = [k for k, _ in tree.range_scan(s1, txn, lo, hi)]
        s1.commit(txn)
        assert got == expected


class TestRoutingAfterChildRemoval:
    def test_lower_bound_survives_middle_child_removal(self, env):
        """Regression (found by the soak test): removing an inner
        node's lowest child must hand its separator to the next child,
        or keys in the gap become unroutable."""
        sd, s1, _, tree = env
        txn = s1.begin()
        for i in range(64):
            tree.insert(s1, txn, key(i), b"v")
        s1.commit(txn)
        assert tree.depth(s1) >= 3   # needs inner nodes below the root
        # Carve a hole in the middle, emptying several leaves.
        txn = s1.begin()
        for i in range(16, 48):
            tree.delete(s1, txn, key(i))
        s1.commit(txn)
        # Every key in the hole must still be routable (to a miss) and
        # re-insertable.
        txn = s1.begin()
        for i in range(16, 48):
            assert tree.search(s1, txn, key(i)) is None
        for i in range(16, 48):
            tree.insert(s1, txn, key(i), b"again")
        s1.commit(txn)
        txn = s1.begin()
        assert [k for k, _ in tree.scan(s1, txn)] == \
            [key(i) for i in range(64)]
        s1.commit(txn)
