"""Property-based whole-system invariant tests.

Hypothesis generates random multi-system histories — updates, commits,
rollbacks, crashes, restarts, Local_Max_LSN broadcasts — and we check
the paper's invariants against an oracle model:

* I1  per-page LSNs are unique complex-wide, and the flushed disk
      version carries the maximum;
* I2  each local log's LSN sequence is strictly increasing;
* I4  every committed update survives total failure + restart;
* I5  no uncommitted update survives;
* I6  a Commit_LSN hit never exposes uncommitted data.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import SDComplex
from repro.common.errors import (
    DeadlockError,
    LockWouldBlock,
    ProtocolError,
    ReproError,
)
from repro.workload.generator import populate_pages

N_SYSTEMS = 2
N_PAGES = 3
RECORDS_PER_PAGE = 3


def op_strategy():
    handle = st.integers(0, N_PAGES * RECORDS_PER_PAGE - 1)
    system = st.integers(0, N_SYSTEMS - 1)
    return st.lists(
        st.one_of(
            st.tuples(st.just("update"), system, handle,
                      st.integers(0, 255)),
            st.tuples(st.just("read_cl"), system, handle, st.just(0)),
            st.tuples(st.just("commit"), system, st.just(0), st.just(0)),
            st.tuples(st.just("rollback"), system, st.just(0), st.just(0)),
            st.tuples(st.just("crash"), system, st.just(0), st.just(0)),
            st.tuples(st.just("restart"), system, st.just(0), st.just(0)),
            st.tuples(st.just("broadcast"), st.just(0), st.just(0),
                      st.just(0)),
        ),
        min_size=1, max_size=40,
    )


class _Model:
    """Oracle: committed values plus per-transaction pending writes."""

    def __init__(self, handles):
        self.committed = {h: b"init" for h in handles}
        self.pending = [dict() for _ in range(N_SYSTEMS)]

    def commit(self, idx):
        self.committed.update(self.pending[idx])
        self.pending[idx] = {}

    def discard(self, idx):
        self.pending[idx] = {}

    def page_fully_committed(self, handles, page_id):
        for idx in range(N_SYSTEMS):
            for (p, _s) in self.pending[idx]:
                if p == page_id:
                    return False
        return True


def _run_history(ops, scheme="medium"):
    complex_ = SDComplex(n_data_pages=128, transfer_scheme=scheme)
    instances = [complex_.add_instance(i + 1) for i in range(N_SYSTEMS)]
    handles = populate_pages(instances[0], N_PAGES, RECORDS_PER_PAGE,
                             payload_bytes=4)
    # Normalise: overwrite initial payloads with a known value.
    txn = instances[0].begin()
    for page_id, slot in handles:
        instances[0].update(txn, page_id, slot, b"init")
    instances[0].commit(txn)

    model = _Model(handles)
    txns = [None] * N_SYSTEMS

    def ensure_txn(idx):
        if txns[idx] is None:
            txns[idx] = instances[idx].begin()
        return txns[idx]

    def clear_aborting(idx):
        """Retry a rollback that previously failed on a fenced page.
        Returns True when the slot is free for a new transaction."""
        from repro.txn.transaction import TxnState

        txn = txns[idx]
        if txn is None or txn.state != TxnState.ABORTING:
            return True
        try:
            instances[idx].rollback(txn)
        except ProtocolError:
            return False
        txns[idx] = None
        return True

    for op in ops:
        kind, a, b, c = op
        if kind == "update":
            idx, handle_idx, value = a, b, c
            if instances[idx].crashed or not clear_aborting(idx):
                continue
            page_id, slot = handles[handle_idx]
            payload = bytes([value]) * 4
            try:
                instances[idx].update(ensure_txn(idx), page_id, slot, payload)
                model.pending[idx][(page_id, slot)] = payload
            except LockWouldBlock:
                pass
            except DeadlockError:
                instances[idx].rollback(txns[idx])
                txns[idx] = None
                model.discard(idx)
            except ProtocolError:
                pass
        elif kind == "read_cl":
            idx, handle_idx = a, b
            if instances[idx].crashed:
                continue
            page_id, slot = handles[handle_idx]
            commit_lsn = complex_.commit_lsn.global_commit_lsn()
            try:
                page = complex_.coherency.access(instances[idx], page_id,
                                                 for_update=False)
            except ProtocolError:
                continue
            try:
                if page.page_lsn < commit_lsn:
                    # I6: the page must contain no uncommitted data.
                    assert model.page_fully_committed(handles, page_id), \
                        "Commit_LSN hit on a page with uncommitted data"
            finally:
                instances[idx].pool.unfix(page_id)
        elif kind == "commit":
            idx = a
            if instances[idx].crashed or txns[idx] is None \
                    or not clear_aborting(idx) or txns[idx] is None:
                continue
            instances[idx].commit(txns[idx])
            txns[idx] = None
            model.commit(idx)
        elif kind == "rollback":
            idx = a
            if instances[idx].crashed or txns[idx] is None:
                continue
            # An aborting transaction can never commit: drop its
            # pending writes from the oracle now, whether or not the
            # rollback completes on this attempt.
            model.discard(idx)
            try:
                instances[idx].rollback(txns[idx])
            except ProtocolError:
                # Undo needs a page a crashed system owns: postpone by
                # leaving the txn aborting (a real system would wait);
                # clear_aborting retries it later.
                continue
            txns[idx] = None
        elif kind == "crash":
            idx = a
            if instances[idx].crashed:
                continue
            complex_.crash_instance(idx + 1)
            txns[idx] = None
            model.discard(idx)
        elif kind == "restart":
            idx = a
            if not instances[idx].crashed:
                continue
            complex_.restart_instance(idx + 1)
        elif kind == "broadcast":
            complex_.broadcast_max_lsns()

    return complex_, instances, handles, model, txns


@pytest.mark.parametrize("scheme", ["medium", "fast"])
@settings(max_examples=60, deadline=None)
@given(ops=op_strategy())
def test_property_durability_and_atomicity(scheme, ops):
    """I4 + I5 under arbitrary histories with crashes — under both the
    medium (single-log restart) and fast (merged-log restart) transfer
    schemes."""
    complex_, instances, handles, model, txns = _run_history(ops, scheme)
    # Open transactions never committed: drop them from the model.
    for idx in range(N_SYSTEMS):
        model.discard(idx)
    complex_.crash_complex()
    complex_.restart_complex()
    for page_id, slot in handles:
        value = complex_.disk.read_page(page_id).read_record(slot)
        assert value == model.committed[(page_id, slot)], (
            f"page {page_id} slot {slot}: disk={value!r} "
            f"expected={model.committed[(page_id, slot)]!r}"
        )


@settings(max_examples=60, deadline=None)
@given(ops=op_strategy())
def test_property_lsn_invariants(ops):
    """I1 + I2 under arbitrary histories."""
    complex_, instances, handles, model, txns = _run_history(ops)
    complex_.crash_complex()
    complex_.restart_complex()
    per_page = {}
    for instance in instances:
        previous = 0
        for _, record in instance.log.scan():
            # I2: strictly increasing within a local log.
            assert record.lsn > previous
            previous = record.lsn
            if record.is_page_oriented():
                per_page.setdefault(record.page_id, []).append(record.lsn)
    # I1: no page ever sees the same LSN twice, complex-wide.
    for page_id, lsns in per_page.items():
        assert len(lsns) == len(set(lsns)), f"duplicate LSN on page {page_id}"
        # Flushed disk version carries the page's maximum LSN.
        disk_lsn = complex_.disk.page_lsn_on_disk(page_id)
        assert disk_lsn == max(lsns)
