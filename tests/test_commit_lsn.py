"""Tests for the complex-wide Commit_LSN optimization."""

from repro.common.stats import COMMIT_LSN_HITS, COMMIT_LSN_MISSES, StatsRegistry
from repro.recovery.commit_lsn import CommitLsnService
from repro.txn.manager import TransactionManager
from repro.wal.log_manager import LogManager
from repro.wal.records import make_update


class FakeSystem:
    """Minimal CommitLsnMember."""

    def __init__(self, system_id):
        self.system_id = system_id
        self.crashed = False
        self.txns = TransactionManager(system_id)
        self.log = LogManager(system_id)

    def log_updates(self, n, first_lsn_into=None):
        txn = first_lsn_into
        for _ in range(n):
            record = make_update(txn.txn_id if txn else 0, self.system_id,
                                 10, 0, b"r", b"u")
            offset = self.log.end_offset
            self.log.append(record)
            if txn is not None:
                txn.note_logged(record.lsn, offset, undoable=True)


def service_with(*systems):
    svc = CommitLsnService(stats=StatsRegistry())
    for system in systems:
        svc.register(system)
    return svc


class TestLocalContribution:
    def test_idle_system_contributes_local_max_plus_one(self):
        s = FakeSystem(1)
        s.log_updates(5)
        svc = service_with(s)
        assert svc.local_commit_lsn(s) == 6

    def test_active_txn_contributes_its_first_lsn(self):
        s = FakeSystem(1)
        txn = s.txns.begin()
        s.log_updates(1, first_lsn_into=txn)   # first_lsn == 1
        s.log_updates(10)
        svc = service_with(s)
        assert svc.local_commit_lsn(s) == 1

    def test_oldest_of_several_txns(self):
        s = FakeSystem(1)
        t1 = s.txns.begin()
        s.log_updates(1, first_lsn_into=t1)
        t2 = s.txns.begin()
        s.log_updates(1, first_lsn_into=t2)
        svc = service_with(s)
        assert svc.local_commit_lsn(s) == t1.first_lsn


class TestGlobalValue:
    def test_minimum_across_systems(self):
        a, b = FakeSystem(1), FakeSystem(2)
        a.log_updates(100)
        txn = b.txns.begin()
        b.log_updates(1, first_lsn_into=txn)
        svc = service_with(a, b)
        assert svc.global_commit_lsn() == txn.first_lsn

    def test_lagging_idle_system_drags_value_down(self):
        """The paper's E2 concern: a system issuing low LSNs keeps the
        global Commit_LSN in the past."""
        fast, slow = FakeSystem(1), FakeSystem(2)
        fast.log_updates(1000)
        slow.log_updates(2)
        svc = service_with(fast, slow)
        assert svc.global_commit_lsn() == 3  # slow one dominates

    def test_lamport_exchange_lifts_the_value(self):
        fast, slow = FakeSystem(1), FakeSystem(2)
        fast.log_updates(1000)
        slow.log_updates(2)
        slow.log.observe_remote_max(fast.log.local_max_lsn)
        svc = service_with(fast, slow)
        assert svc.global_commit_lsn() == 1001

    def test_crashed_system_freezes_contribution(self):
        """Invariant I6 safety: a crashed system's in-flight updates
        must keep bounding the global value."""
        a, b = FakeSystem(1), FakeSystem(2)
        txn = a.txns.begin()
        a.log_updates(1, first_lsn_into=txn)   # first_lsn 1, uncommitted
        b.log_updates(5)
        svc = service_with(a, b)
        assert svc.global_commit_lsn() == 1
        a.crashed = True
        a.txns.crash()  # volatile state gone, like a real crash
        b.log_updates(100)
        assert svc.global_commit_lsn() == 1    # frozen, not 6/106

    def test_empty_service(self):
        svc = CommitLsnService()
        assert svc.global_commit_lsn() == 1


class TestCheck:
    def test_hit_and_miss_counting(self):
        s = FakeSystem(1)
        s.log_updates(10)
        svc = service_with(s)
        assert svc.check(5)        # 5 < 11
        assert not svc.check(11)
        assert not svc.check(50)
        assert svc.stats.get(COMMIT_LSN_HITS) == 1
        assert svc.stats.get(COMMIT_LSN_MISSES) == 2
        assert svc.hit_rate() == 1 / 3

    def test_hit_rate_empty(self):
        assert CommitLsnService().hit_rate() == 0.0

    def test_soundness_page_below_commit_lsn_is_committed(self):
        """If check() says yes, no active txn can have touched the page:
        every active txn's records have LSN >= its first_lsn >=
        commit_lsn > page_lsn."""
        s = FakeSystem(1)
        s.log_updates(5)                     # committed history
        txn = s.txns.begin()
        s.log_updates(1, first_lsn_into=txn)  # active from LSN 6
        svc = service_with(s)
        commit_lsn = svc.global_commit_lsn()
        assert commit_lsn == 6
        # Any page the active txn touched has page_lsn >= 6 -> miss.
        assert not svc.check(6)
        # Pages with page_lsn < 6 predate the active txn -> hit, sound.
        assert svc.check(5)
