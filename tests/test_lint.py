"""Tests for reprolint (repro.lint): rules, suppressions, CLI, and the
tier-1 gate that keeps the real tree clean forever.

Each rule is exercised in both directions — a fixture snippet seeded
with a violation must produce a finding with the right rule ID and
line, and the corresponding clean snippet must produce none.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, lint_paths, lint_source
from repro.lint.engine import parse_suppressions
from repro.lint.rules import RULES_BY_ID

REPO = Path(__file__).resolve().parent.parent

#: Synthetic path that makes fixtures look like library modules.
SRC = "src/repro/fake/module.py"
#: ... and like test modules.
TST = "tests/test_fake.py"


def findings_for(source, path=SRC, rule=None):
    rules = None if rule is None else [RULES_BY_ID[rule]]
    return lint_source(textwrap.dedent(source), path=path, rules=rules)


def ids_of(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# R001 — wal-discipline
# ----------------------------------------------------------------------
class TestR001:
    def test_direct_page_lsn_write_flagged(self):
        found = findings_for(
            """
            def redo(page, record):
                page.page_lsn = record.lsn
            """
        )
        assert ids_of(found) == ["R001"]
        assert found[0].line == 3

    def test_augmented_write_flagged(self):
        found = findings_for("page.page_lsn += 1\n")
        assert ids_of(found) == ["R001"]

    def test_allowed_in_apply_module(self):
        source = "def stamp(page, lsn):\n    page.page_lsn = lsn\n"
        assert findings_for(source, path="src/repro/recovery/apply.py") == []
        assert findings_for(source, path="src/repro/storage/page.py") == []

    def test_unlogged_mutation_flagged(self):
        found = findings_for(
            """
            def mutate(page, payload):
                return page.insert_record(payload)
            """
        )
        assert ids_of(found) == ["R001"]
        assert "no log append" in found[0].message

    def test_logged_mutation_clean(self):
        assert (
            findings_for(
                """
                def mutate(self, page, payload):
                    slot = page.insert_record(payload)
                    self.log.append(make_record(payload), page_lsn=page.page_lsn)
                    return slot
                """
            )
            == []
        )

    def test_mutation_via_log_wrapper_clean(self):
        assert (
            findings_for(
                """
                def mutate(self, page, payload):
                    page.update_record(0, payload)
                    self._log_applied_update(page, payload)
                """
            )
            == []
        )

    def test_tests_exempt(self):
        source = "def test_x(page):\n    page.page_lsn = 5\n"
        assert findings_for(source, path=TST) == []


# ----------------------------------------------------------------------
# R002 — clock-discipline
# ----------------------------------------------------------------------
class TestR002:
    def test_wall_clock_flagged(self):
        found = findings_for(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert ids_of(found) == ["R002"]

    def test_sleep_flagged(self):
        found = findings_for("import time\ntime.sleep(1)\n")
        assert ids_of(found) == ["R002"]

    def test_from_import_flagged(self):
        found = findings_for(
            "from time import perf_counter\nelapsed = perf_counter()\n"
        )
        assert ids_of(found) == ["R002"]

    def test_datetime_now_flagged(self):
        found = findings_for(
            "import datetime\nts = datetime.datetime.now()\n"
        )
        assert ids_of(found) == ["R002"]
        found = findings_for(
            "from datetime import datetime\nts = datetime.now()\n"
        )
        assert ids_of(found) == ["R002"]

    def test_global_rng_flagged(self):
        found = findings_for("import random\nx = random.randint(1, 6)\n")
        assert ids_of(found) == ["R002"]

    def test_unseeded_random_flagged(self):
        found = findings_for("import random\nrng = random.Random()\n")
        assert ids_of(found) == ["R002"]

    def test_seeded_random_clean(self):
        assert findings_for("import random\nrng = random.Random(42)\n") == []
        assert (
            findings_for(
                "import random as _random\nrng = _random.Random(11)\n"
            )
            == []
        )

    def test_clock_module_exempt(self):
        source = "import time\nnow = time.time()\n"
        assert findings_for(source, path="src/repro/common/clock.py") == []

    def test_applies_to_tests(self):
        found = findings_for("import time\nt = time.time()\n", path=TST)
        assert ids_of(found) == ["R002"]


# ----------------------------------------------------------------------
# R003 — lsn-hygiene
# ----------------------------------------------------------------------
class TestR003:
    def test_address_vs_int_flagged(self):
        found = findings_for(
            """
            def check(addr, lsn):
                return addr < lsn
            """
        )
        assert ids_of(found) == ["R003"]

    def test_constructed_address_vs_literal_flagged(self):
        found = findings_for(
            "from repro.common.lsn import LogAddress\n"
            "ok = LogAddress(1, 2) > 10\n"
        )
        assert ids_of(found) == ["R003"]

    def test_null_sentinel_ordering_flagged(self):
        found = findings_for(
            "from repro.common.lsn import NULL_LOG_ADDRESS\n"
            "def f(addr):\n"
            "    return NULL_LOG_ADDRESS < addr\n"
        )
        assert ids_of(found) == ["R003"]
        assert "is_null_address" in found[0].message

    def test_cross_address_ordering_flagged_outside_wal(self):
        found = findings_for(
            "def f(addr_a, addr_b):\n    return addr_a < addr_b\n"
        )
        assert ids_of(found) == ["R003"]

    def test_address_ordering_allowed_in_wal(self):
        source = "def f(addr_a, addr_b):\n    return addr_a < addr_b\n"
        assert findings_for(source, path="src/repro/wal/merge.py") == []
        assert findings_for(source, path="src/repro/common/lsn.py") == []

    def test_lsn_vs_lsn_clean(self):
        assert (
            findings_for(
                "def f(record, page):\n"
                "    return record.lsn > page.page_lsn\n"
            )
            == []
        )

    def test_offset_vs_int_clean(self):
        # addr.offset is a same-log byte position, not an address value.
        assert (
            findings_for("def f(addr, end):\n    return addr.offset < end\n")
            == []
        )


# ----------------------------------------------------------------------
# R004 — lock-pairing
# ----------------------------------------------------------------------
class TestR004:
    def test_acquire_without_release_flagged(self):
        found = findings_for(
            """
            class Broken:
                def grab(self, txn, resource, mode):
                    return self.lock_manager.acquire(txn, resource, mode)
            """
        )
        assert ids_of(found) == ["R004"]

    def test_acquire_with_release_in_scope_clean(self):
        assert (
            findings_for(
                """
                class Fine:
                    def grab(self, txn, resource, mode):
                        return self.glm.acquire(txn, resource, mode)

                    def drop(self, txn):
                        self.glm.release_all(txn)
                """
            )
            == []
        )

    def test_module_level_pairing(self):
        found = findings_for(
            "def grab(glm, txn, r, m):\n    glm.acquire(txn, r, m)\n"
        )
        assert ids_of(found) == ["R004"]
        assert (
            findings_for(
                "def grab(glm, txn, r, m):\n    glm.acquire(txn, r, m)\n"
                "def drop(glm, txn, r):\n    glm.release(txn, r)\n"
            )
            == []
        )

    def test_non_lock_receiver_ignored(self):
        # Not lock-ish: e.g. a semaphore-free queue with an acquire name.
        assert (
            findings_for("def f(conn):\n    conn.acquire(1)\n") == []
        )

    def test_tests_exempt(self):
        source = "def test_grab(glm):\n    glm.acquire(1, 2, 3)\n"
        assert findings_for(source, path=TST) == []


# ----------------------------------------------------------------------
# R005 — error-discipline
# ----------------------------------------------------------------------
class TestR005:
    def test_bare_except_flagged(self):
        found = findings_for(
            """
            def f():
                try:
                    g()
                except:
                    pass
            """
        )
        assert ids_of(found) == ["R005"]

    def test_swallowed_exception_flagged(self):
        found = findings_for(
            """
            def f():
                try:
                    g()
                except Exception:
                    pass
            """
        )
        assert ids_of(found) == ["R005"]

    def test_broad_in_tuple_flagged(self):
        found = findings_for(
            """
            def f():
                try:
                    g()
                except (ValueError, Exception):
                    pass
            """
        )
        assert ids_of(found) == ["R005"]

    def test_reraise_clean(self):
        assert (
            findings_for(
                """
                def f(log):
                    try:
                        g()
                    except Exception:
                        log.note("boom")
                        raise
                """
            )
            == []
        )

    def test_specific_type_clean(self):
        assert (
            findings_for(
                """
                from repro.common.errors import ReproError

                def f():
                    try:
                        g()
                    except ReproError:
                        pass
                """
            )
            == []
        )


# ----------------------------------------------------------------------
# R006 — stats-discipline
# ----------------------------------------------------------------------
class TestR006:
    def test_inline_literal_flagged(self):
        found = findings_for(
            """
            def f(self):
                self.stats.incr("net.messages.sent")
            """
        )
        assert ids_of(found) == ["R006"]
        assert "net.messages.sent" in found[0].message

    def test_inline_observe_flagged(self):
        found = findings_for(
            "def f(metrics, v):\n    metrics.observe('lock.waits', v)\n"
        )
        assert ids_of(found) == ["R006"]

    def test_inline_incr_labeled_flagged(self):
        found = findings_for(
            "def f(metrics):\n"
            "    metrics.incr_labeled('trace.events', kind='x')\n"
        )
        assert ids_of(found) == ["R006"]

    def test_fstring_name_flagged(self):
        found = findings_for(
            "def f(self, kind):\n"
            "    self.stats.incr(f'net.messages.{kind}')\n"
        )
        assert ids_of(found) == ["R006"]
        assert "f-string" in found[0].message

    def test_constant_name_clean(self):
        assert (
            findings_for(
                """
                from repro.common.stats import MESSAGES_SENT

                def f(self):
                    self.stats.incr(MESSAGES_SENT)
                """
            )
            == []
        )

    def test_helper_built_name_clean(self):
        assert (
            findings_for(
                """
                from repro.common.stats import message_kind_counter

                def f(self, kind):
                    self.stats.incr(message_kind_counter(kind))
                """
            )
            == []
        )

    def test_non_registry_receiver_ignored(self):
        assert (
            findings_for("def f(q):\n    q.incr('depth')\n") == []
        )

    def test_stats_module_exempt(self):
        source = "def f(self):\n    self.stats.incr('x')\n"
        assert findings_for(source, path="src/repro/common/stats.py") == []

    def test_tests_exempt(self):
        source = "def test_f(stats):\n    stats.incr('x')\n"
        assert findings_for(source, path=TST) == []


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_disable(self):
        assert (
            findings_for(
                "def f(page, lsn):\n"
                "    page.page_lsn = lsn  # reprolint: disable=R001 -- why\n"
            )
            == []
        )

    def test_standalone_disable_applies_to_next_line(self):
        assert (
            findings_for(
                "def f(page, lsn):\n"
                "    # reprolint: disable=R001 -- justified\n"
                "    page.page_lsn = lsn\n"
            )
            == []
        )

    def test_disable_wrong_rule_keeps_finding(self):
        found = findings_for(
            "def f(page, lsn):\n"
            "    page.page_lsn = lsn  # reprolint: disable=R005\n"
        )
        assert ids_of(found) == ["R001"]

    def test_disable_all(self):
        assert (
            findings_for(
                "def f(page, lsn):\n"
                "    page.page_lsn = lsn  # reprolint: disable=all\n"
            )
            == []
        )

    def test_file_wide_disable(self):
        assert (
            findings_for(
                "# reprolint: disable-file=R001\n"
                "def f(page, lsn):\n"
                "    page.page_lsn = lsn\n"
                "def g(page, lsn):\n"
                "    page.page_lsn = lsn\n"
            )
            == []
        )

    def test_multi_rule_pragma(self):
        supp = parse_suppressions("x = 1  # reprolint: disable=R001,R002\n")
        assert supp.is_suppressed("R001", 1)
        assert supp.is_suppressed("R002", 1)
        assert not supp.is_suppressed("R003", 1)


# ----------------------------------------------------------------------
# engine / CLI
# ----------------------------------------------------------------------
class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        found = lint_source("def broken(:\n", path=SRC)
        assert ids_of(found) == ["E000"]

    def test_finding_render_format(self):
        found = findings_for("page.page_lsn = 1\n")
        rendered = found[0].render()
        assert rendered.startswith(f"{SRC}:1:")
        assert "R001" in rendered

    def test_rule_catalog_complete(self):
        assert [r.id for r in ALL_RULES] == [
            "R001",
            "R002",
            "R003",
            "R004",
            "R005",
            "R006",
            "R007",
        ]
        for rule in ALL_RULES:
            assert rule.description

    def test_cli_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        from repro.lint.__main__ import main

        assert main([str(target)]) == 0

    def test_cli_violation_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "module.py"
        target.write_text("def f(page):\n    page.page_lsn = 1\n")
        from repro.lint.__main__ import main

        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "module.py:2:" in out

    def test_cli_select(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("def f(page):\n    page.page_lsn = 1\n")
        from repro.lint.__main__ import main

        assert main(["--select", "R002", str(target)]) == 0
        assert main(["--select", "R001", str(target)]) == 1

    def test_cli_list_rules(self, capsys):
        from repro.lint.__main__ import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert rule_id in out

    def test_cli_unknown_rule_is_usage_error(self, capsys):
        import pytest

        from repro.lint.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["--select", "R999", "src"])
        assert exc.value.code == 2
        assert "R999" in capsys.readouterr().err

    def test_cli_missing_path_is_usage_error(self, capsys):
        from repro.lint.__main__ import main

        assert main(["path/does/not/exist"]) == 2
        assert "no such file" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the tier-1 gate: the real tree stays clean, and stays *checkable*
# ----------------------------------------------------------------------
class TestRealTree:
    def test_src_and_tests_are_clean(self):
        findings = lint_paths([str(REPO / "src"), str(REPO / "tests")])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_each_rule_still_fires_on_seeded_violation(self):
        """Guard against rules rotting into no-ops: every rule must
        still produce a finding on its canonical violation."""
        seeded = {
            "R001": "def f(page, lsn):\n    page.page_lsn = lsn\n",
            "R002": "import time\nt = time.time()\n",
            "R003": "def f(addr, lsn):\n    return addr < lsn\n",
            "R004": (
                "class C:\n"
                "    def f(self):\n"
                "        self.glm.acquire(1, 2, 3)\n"
            ),
            "R005": "try:\n    pass\nexcept Exception:\n    pass\n",
            "R006": (
                "class C:\n"
                "    def f(self):\n"
                "        self.stats.incr('made.up.counter')\n"
            ),
        }
        for rule_id, source in seeded.items():
            found = findings_for(source, rule=rule_id)
            assert ids_of(found) == [rule_id], (rule_id, found)

    def test_cli_end_to_end_on_repo(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests"],
            cwd=str(REPO),
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr


# ----------------------------------------------------------------------
# optional externals: mypy strict core and ruff, when installed
# ----------------------------------------------------------------------
def _have(module):
    try:
        __import__(module)
        return True
    except ImportError:
        return False


@pytest.mark.skipif(not _have("mypy"), reason="mypy not installed")
def test_mypy_strict_core_passes():
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=str(REPO),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout


@pytest.mark.skipif(not _have("ruff"), reason="ruff not installed")
def test_ruff_passes():
    result = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tests"],
        cwd=str(REPO),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout
