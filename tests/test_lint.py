"""Tests for reprolint (repro.lint): rules, suppressions, CLI, and the
tier-1 gate that keeps the real tree clean forever.

Each rule is exercised in both directions — a fixture snippet seeded
with a violation must produce a finding with the right rule ID and
line, and the corresponding clean snippet must produce none.
"""

import ast
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, lint_paths, lint_source
from repro.lint import cache as result_cache
from repro.lint.cfg import WithEnter, WithExit, build_cfg, reachable_blocks
from repro.lint.dataflow import LocksetAnalysis, ReachingDefinitions
from repro.lint.engine import Finding, parse_suppressions
from repro.lint.rules import RULES_BY_ID
from repro.lint.sarif import SARIF_VERSION, findings_to_sarif, render_sarif

REPO = Path(__file__).resolve().parent.parent

#: Synthetic path that makes fixtures look like library modules.
SRC = "src/repro/fake/module.py"
#: ... and like test modules.
TST = "tests/test_fake.py"


def findings_for(source, path=SRC, rule=None):
    rules = None if rule is None else [RULES_BY_ID[rule]]
    return lint_source(textwrap.dedent(source), path=path, rules=rules)


def ids_of(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# R001 — wal-discipline
# ----------------------------------------------------------------------
class TestR001:
    def test_direct_page_lsn_write_flagged(self):
        found = findings_for(
            """
            def redo(page, record):
                page.page_lsn = record.lsn
            """
        )
        assert ids_of(found) == ["R001"]
        assert found[0].line == 3

    def test_augmented_write_flagged(self):
        found = findings_for("page.page_lsn += 1\n")
        assert ids_of(found) == ["R001"]

    def test_allowed_in_apply_module(self):
        source = "def stamp(page, lsn):\n    page.page_lsn = lsn\n"
        assert findings_for(source, path="src/repro/recovery/apply.py") == []
        assert findings_for(source, path="src/repro/storage/page.py") == []

    def test_unlogged_mutation_flagged(self):
        found = findings_for(
            """
            def mutate(page, payload):
                return page.insert_record(payload)
            """
        )
        assert ids_of(found) == ["R001"]
        assert "no log append" in found[0].message

    def test_logged_mutation_clean(self):
        assert (
            findings_for(
                """
                def mutate(self, page, payload):
                    slot = page.insert_record(payload)
                    self.log.append(make_record(payload), page_lsn=page.page_lsn)
                    return slot
                """
            )
            == []
        )

    def test_mutation_via_log_wrapper_clean(self):
        assert (
            findings_for(
                """
                def mutate(self, page, payload):
                    page.update_record(0, payload)
                    self._log_applied_update(page, payload)
                """
            )
            == []
        )

    def test_tests_exempt(self):
        source = "def test_x(page):\n    page.page_lsn = 5\n"
        assert findings_for(source, path=TST) == []


# ----------------------------------------------------------------------
# R002 — clock-discipline
# ----------------------------------------------------------------------
class TestR002:
    def test_wall_clock_flagged(self):
        found = findings_for(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert ids_of(found) == ["R002"]

    def test_sleep_flagged(self):
        found = findings_for("import time\ntime.sleep(1)\n")
        assert ids_of(found) == ["R002"]

    def test_from_import_flagged(self):
        found = findings_for(
            "from time import perf_counter\nelapsed = perf_counter()\n"
        )
        assert ids_of(found) == ["R002"]

    def test_datetime_now_flagged(self):
        found = findings_for(
            "import datetime\nts = datetime.datetime.now()\n"
        )
        assert ids_of(found) == ["R002"]
        found = findings_for(
            "from datetime import datetime\nts = datetime.now()\n"
        )
        assert ids_of(found) == ["R002"]

    def test_global_rng_flagged(self):
        found = findings_for("import random\nx = random.randint(1, 6)\n")
        assert ids_of(found) == ["R002"]

    def test_unseeded_random_flagged(self):
        found = findings_for("import random\nrng = random.Random()\n")
        assert ids_of(found) == ["R002"]

    def test_seeded_random_clean(self):
        assert findings_for("import random\nrng = random.Random(42)\n") == []
        assert (
            findings_for(
                "import random as _random\nrng = _random.Random(11)\n"
            )
            == []
        )

    def test_clock_module_exempt(self):
        source = "import time\nnow = time.time()\n"
        assert findings_for(source, path="src/repro/common/clock.py") == []

    def test_applies_to_tests(self):
        found = findings_for("import time\nt = time.time()\n", path=TST)
        assert ids_of(found) == ["R002"]


# ----------------------------------------------------------------------
# R003 — lsn-hygiene
# ----------------------------------------------------------------------
class TestR003:
    def test_address_vs_int_flagged(self):
        found = findings_for(
            """
            def check(addr, lsn):
                return addr < lsn
            """
        )
        assert ids_of(found) == ["R003"]

    def test_constructed_address_vs_literal_flagged(self):
        found = findings_for(
            "from repro.common.lsn import LogAddress\n"
            "ok = LogAddress(1, 2) > 10\n"
        )
        assert ids_of(found) == ["R003"]

    def test_null_sentinel_ordering_flagged(self):
        found = findings_for(
            "from repro.common.lsn import NULL_LOG_ADDRESS\n"
            "def f(addr):\n"
            "    return NULL_LOG_ADDRESS < addr\n"
        )
        assert ids_of(found) == ["R003"]
        assert "is_null_address" in found[0].message

    def test_cross_address_ordering_flagged_outside_wal(self):
        found = findings_for(
            "def f(addr_a, addr_b):\n    return addr_a < addr_b\n"
        )
        assert ids_of(found) == ["R003"]

    def test_address_ordering_allowed_in_wal(self):
        source = "def f(addr_a, addr_b):\n    return addr_a < addr_b\n"
        assert findings_for(source, path="src/repro/wal/merge.py") == []
        assert findings_for(source, path="src/repro/common/lsn.py") == []

    def test_lsn_vs_lsn_clean(self):
        assert (
            findings_for(
                "def f(record, page):\n"
                "    return record.lsn > page.page_lsn\n"
            )
            == []
        )

    def test_offset_vs_int_clean(self):
        # addr.offset is a same-log byte position, not an address value.
        assert (
            findings_for("def f(addr, end):\n    return addr.offset < end\n")
            == []
        )


# ----------------------------------------------------------------------
# R004 — lock-pairing
# ----------------------------------------------------------------------
class TestR004:
    def test_acquire_without_release_flagged(self):
        found = findings_for(
            """
            class Broken:
                def grab(self, txn, resource, mode):
                    return self.lock_manager.acquire(txn, resource, mode)
            """
        )
        assert ids_of(found) == ["R004"]

    def test_acquire_with_release_in_scope_clean(self):
        assert (
            findings_for(
                """
                class Fine:
                    def grab(self, txn, resource, mode):
                        return self.glm.acquire(txn, resource, mode)

                    def drop(self, txn):
                        self.glm.release_all(txn)
                """
            )
            == []
        )

    def test_module_level_pairing(self):
        found = findings_for(
            "def grab(glm, txn, r, m):\n    glm.acquire(txn, r, m)\n"
        )
        assert ids_of(found) == ["R004"]
        assert (
            findings_for(
                "def grab(glm, txn, r, m):\n    glm.acquire(txn, r, m)\n"
                "def drop(glm, txn, r):\n    glm.release(txn, r)\n"
            )
            == []
        )

    def test_non_lock_receiver_ignored(self):
        # Not lock-ish: e.g. a semaphore-free queue with an acquire name.
        assert (
            findings_for("def f(conn):\n    conn.acquire(1)\n") == []
        )

    def test_tests_exempt(self):
        source = "def test_grab(glm):\n    glm.acquire(1, 2, 3)\n"
        assert findings_for(source, path=TST) == []


# ----------------------------------------------------------------------
# R005 — error-discipline
# ----------------------------------------------------------------------
class TestR005:
    def test_bare_except_flagged(self):
        found = findings_for(
            """
            def f():
                try:
                    g()
                except:
                    pass
            """
        )
        assert ids_of(found) == ["R005"]

    def test_swallowed_exception_flagged(self):
        found = findings_for(
            """
            def f():
                try:
                    g()
                except Exception:
                    pass
            """
        )
        assert ids_of(found) == ["R005"]

    def test_broad_in_tuple_flagged(self):
        found = findings_for(
            """
            def f():
                try:
                    g()
                except (ValueError, Exception):
                    pass
            """
        )
        assert ids_of(found) == ["R005"]

    def test_reraise_clean(self):
        assert (
            findings_for(
                """
                def f(log):
                    try:
                        g()
                    except Exception:
                        log.note("boom")
                        raise
                """
            )
            == []
        )

    def test_specific_type_clean(self):
        assert (
            findings_for(
                """
                from repro.common.errors import ReproError

                def f():
                    try:
                        g()
                    except ReproError:
                        pass
                """
            )
            == []
        )


# ----------------------------------------------------------------------
# R006 — stats-discipline
# ----------------------------------------------------------------------
class TestR006:
    def test_inline_literal_flagged(self):
        found = findings_for(
            """
            def f(self):
                self.stats.incr("net.messages.sent")
            """
        )
        assert ids_of(found) == ["R006"]
        assert "net.messages.sent" in found[0].message

    def test_inline_observe_flagged(self):
        found = findings_for(
            "def f(metrics, v):\n    metrics.observe('lock.waits', v)\n"
        )
        assert ids_of(found) == ["R006"]

    def test_inline_incr_labeled_flagged(self):
        found = findings_for(
            "def f(metrics):\n"
            "    metrics.incr_labeled('trace.events', kind='x')\n"
        )
        assert ids_of(found) == ["R006"]

    def test_fstring_name_flagged(self):
        found = findings_for(
            "def f(self, kind):\n"
            "    self.stats.incr(f'net.messages.{kind}')\n"
        )
        assert ids_of(found) == ["R006"]
        assert "f-string" in found[0].message

    def test_constant_name_clean(self):
        assert (
            findings_for(
                """
                from repro.common.stats import MESSAGES_SENT

                def f(self):
                    self.stats.incr(MESSAGES_SENT)
                """
            )
            == []
        )

    def test_helper_built_name_clean(self):
        assert (
            findings_for(
                """
                from repro.common.stats import message_kind_counter

                def f(self, kind):
                    self.stats.incr(message_kind_counter(kind))
                """
            )
            == []
        )

    def test_non_registry_receiver_ignored(self):
        assert (
            findings_for("def f(q):\n    q.incr('depth')\n") == []
        )

    def test_stats_module_exempt(self):
        source = "def f(self):\n    self.stats.incr('x')\n"
        assert findings_for(source, path="src/repro/common/stats.py") == []

    def test_tests_exempt(self):
        source = "def test_f(stats):\n    stats.incr('x')\n"
        assert findings_for(source, path=TST) == []


# ----------------------------------------------------------------------
# R008 — seam-threading (cross-file via the ProjectIndex)
# ----------------------------------------------------------------------
class TestR008:
    def test_dropped_seam_flagged(self):
        found = findings_for(
            """
            class Child:
                def __init__(self, size, tracer=None):
                    self.tracer = tracer

            class Parent:
                def __init__(self, tracer=None):
                    self.child = Child(4)
            """
        )
        assert ids_of(found) == ["R008"]
        assert "tracer" in found[0].message

    def test_seam_passed_by_keyword_clean(self):
        assert (
            findings_for(
                """
                class Child:
                    def __init__(self, size, tracer=None):
                        self.tracer = tracer

                class Parent:
                    def __init__(self, tracer=None):
                        self.child = Child(4, tracer=tracer)
                """
            )
            == []
        )

    def test_explicit_null_is_a_visible_decision(self):
        assert (
            findings_for(
                """
                class Child:
                    def __init__(self, tracer=None):
                        self.tracer = tracer

                class Parent:
                    def __init__(self, tracer=None):
                        self.child = Child(tracer=NULL_TRACER)
                """
            )
            == []
        )

    def test_kwargs_splat_counts_as_passed(self):
        assert (
            findings_for(
                """
                class Child:
                    def __init__(self, tracer=None):
                        self.tracer = tracer

                class Parent:
                    def __init__(self, tracer=None, **kw):
                        self.child = Child(**kw)
                """
            )
            == []
        )

    def test_scope_without_seam_clean(self):
        # A scope that never held the seam cannot drop it.
        assert (
            findings_for(
                """
                class Child:
                    def __init__(self, tracer=None):
                        self.tracer = tracer

                def make():
                    return Child()
                """
            )
            == []
        )

    def test_method_inherits_class_seam(self):
        found = findings_for(
            """
            class Child:
                def __init__(self, tracer=None):
                    self.tracer = tracer

            class Parent:
                def __init__(self, tracer=None):
                    self.tracer = tracer

                def spawn(self):
                    return Child()
            """
        )
        assert ids_of(found) == ["R008"]

    def test_tests_exempt(self):
        source = (
            "class Child:\n"
            "    def __init__(self, tracer=None):\n"
            "        self.tracer = tracer\n"
            "def test_make(tracer):\n"
            "    return Child()\n"
        )
        assert findings_for(source, path=TST) == []


# ----------------------------------------------------------------------
# R009 — lock-release-paths (flow-sensitive, via the CFG lockset)
# ----------------------------------------------------------------------
class TestR009:
    def test_early_return_leak_flagged(self):
        found = findings_for(
            """
            class C:
                def f(self, txn):
                    self.glm.acquire(txn, 1, 2)
                    if txn:
                        return None
                    self.glm.release(txn, 1)
                    return txn
            """
        )
        assert ids_of(found) == ["R009"]
        assert "normal return path" in found[0].message

    def test_raise_path_leak_flagged(self):
        found = findings_for(
            """
            class C:
                def f(self, txn):
                    self.glm.acquire(txn, 1, 2)
                    self._work(txn)
                    self.glm.release(txn, 1)
            """
        )
        assert ids_of(found) == ["R009"]
        assert "escaping-exception path" in found[0].message

    def test_try_finally_clean(self):
        assert (
            findings_for(
                """
                class C:
                    def f(self, txn):
                        self.glm.acquire(txn, 1, 2)
                        try:
                            return self._work(txn)
                        finally:
                            self.glm.release(txn, 1)
                """
            )
            == []
        )

    def test_straight_line_pairing_clean(self):
        # A trailing release must not manufacture a phantom raise path
        # out of the lock protocol's own calls.
        assert (
            findings_for(
                """
                class C:
                    def f(self, txn):
                        self.glm.acquire(txn, 1, 2)
                        self.glm.release(txn, 1)
                """
            )
            == []
        )

    def test_release_all_clean(self):
        assert (
            findings_for(
                """
                class C:
                    def f(self, txn):
                        self.glm.acquire(txn, 1, 2)
                        self.glm.release_all(txn)
                """
            )
            == []
        )

    def test_acquire_without_any_release_is_r004_territory(self):
        # Structural omission (no release anywhere) belongs to R004;
        # R009 only judges path coverage when both halves exist.
        found = findings_for(
            """
            class C:
                def f(self, txn):
                    self.glm.acquire(txn, 1, 2)
            """,
            rule="R009",
        )
        assert found == []

    def test_tests_exempt(self):
        source = (
            "def test_leak(glm, txn):\n"
            "    glm.acquire(txn, 1, 2)\n"
            "    if txn:\n"
            "        return\n"
            "    glm.release(txn, 1)\n"
        )
        assert findings_for(source, path=TST) == []


# ----------------------------------------------------------------------
# R010 — shared-state-under-lock in thread workers
# ----------------------------------------------------------------------
class TestR010:
    def test_unlocked_worker_mutation_flagged(self):
        found = findings_for(
            """
            from concurrent.futures import ThreadPoolExecutor

            class C:
                def run(self):
                    self.pool.submit(self._work, 1)

                def _work(self, part):
                    self.results.append(part)
            """
        )
        assert ids_of(found) == ["R010"]

    def test_mutation_under_with_lock_clean(self):
        assert (
            findings_for(
                """
                from concurrent.futures import ThreadPoolExecutor

                class C:
                    def run(self):
                        self.pool.submit(self._work, 1)

                    def _work(self, part):
                        with self._lock:
                            self.results.append(part)
                """
            )
            == []
        )

    def test_locally_created_state_clean(self):
        assert (
            findings_for(
                """
                from concurrent.futures import ThreadPoolExecutor

                class C:
                    def run(self):
                        self.pool.submit(self._work, 1)

                    def _work(self, part):
                        out = []
                        out.append(part)
                        return out
                """
            )
            == []
        )

    def test_non_worker_method_clean(self):
        # Without a pool handing the method to another thread there is
        # no data race to protect against.
        assert (
            findings_for(
                """
                class C:
                    def _work(self, part):
                        self.results.append(part)
                """
            )
            == []
        )

    def test_transitive_worker_callee_flagged(self):
        found = findings_for(
            """
            from concurrent.futures import ThreadPoolExecutor

            class C:
                def run(self):
                    self.pool.submit(self._work, 1)

                def _work(self, part):
                    self._record(part)

                def _record(self, part):
                    self.results.append(part)
            """
        )
        assert ids_of(found) == ["R010"]

    def test_tests_exempt(self):
        source = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "class C:\n"
            "    def run(self):\n"
            "        self.pool.submit(self._work, 1)\n"
            "    def _work(self, part):\n"
            "        self.results.append(part)\n"
        )
        assert findings_for(source, path=TST) == []


# ----------------------------------------------------------------------
# R011 — flow-sensitive WAL ordering (one unlogged branch is enough)
# ----------------------------------------------------------------------
class TestR011:
    def test_unlogged_fast_path_flagged(self):
        found = findings_for(
            """
            class C:
                def f(self, page, rec, fast):
                    if fast:
                        page.update_record(0, rec)
                        return
                    page.update_record(0, rec)
                    self.log.append(rec, page_lsn=page.page_lsn)
            """,
            rule="R011",
        )
        assert ids_of(found) == ["R011"]
        assert found[0].line == 5  # the fast-path mutation

    def test_all_paths_logged_clean(self):
        assert (
            findings_for(
                """
                class C:
                    def f(self, page, rec, fast):
                        page.update_record(0, rec)
                        self.log.append(rec, page_lsn=page.page_lsn)
                """,
                rule="R011",
            )
            == []
        )

    def test_later_log_forgives_earlier_mutation(self):
        # Mutate-then-log is the WAL protocol itself; the log records
        # the mutation before any path can force the page.
        assert (
            findings_for(
                """
                class C:
                    def f(self, page, rec, first, second):
                        page.update_record(0, first)
                        page.update_record(1, second)
                        self.log.append(first, page_lsn=page.page_lsn)
                """,
                rule="R011",
            )
            == []
        )

    def test_function_without_logging_is_r001_territory(self):
        # No logging call at all: the structural rule (R001) owns it.
        found = findings_for(
            """
            class C:
                def f(self, page, rec):
                    page.update_record(0, rec)
            """,
            rule="R011",
        )
        assert found == []

    def test_raise_path_not_flagged(self):
        # An exception between mutate and log aborts the transaction;
        # recovery undoes the mutation, so only the normal exit counts.
        assert (
            findings_for(
                """
                class C:
                    def f(self, page, rec):
                        page.update_record(0, rec)
                        self._validate(rec)
                        self.log.append(rec, page_lsn=page.page_lsn)
                """,
                rule="R011",
            )
            == []
        )


# ----------------------------------------------------------------------
# R012 — determinism hygiene in trace-emitting functions
# ----------------------------------------------------------------------
class TestR012:
    def test_set_iteration_flagged(self):
        found = findings_for(
            """
            class C:
                def f(self, pages):
                    for p in set(pages):
                        self.tracer.emit("touch", page=p)
            """
        )
        assert ids_of(found) == ["R012"]

    def test_sorted_iteration_clean(self):
        assert (
            findings_for(
                """
                class C:
                    def f(self, pages):
                        for p in sorted(set(pages)):
                            self.tracer.emit("touch", page=p)
                """
            )
            == []
        )

    def test_set_via_reaching_definition_flagged(self):
        found = findings_for(
            """
            class C:
                def f(self, pages):
                    pending = set(pages)
                    for p in pending:
                        self.tracer.emit("touch", page=p)
            """
        )
        assert ids_of(found) == ["R012"]

    def test_id_call_flagged(self):
        found = findings_for(
            """
            class C:
                def f(self, page):
                    self.tracer.emit("touch", key=id(page))
            """
        )
        assert ids_of(found) == ["R012"]

    def test_wall_seconds_flagged(self):
        found = findings_for(
            """
            class C:
                def f(self, page):
                    t = wall_seconds()
                    self.tracer.emit("touch", at=t)
            """
        )
        assert ids_of(found) == ["R012"]

    def test_non_emitting_function_clean(self):
        # Iteration order only matters where it can reach the trace.
        assert (
            findings_for(
                """
                class C:
                    def f(self, pages):
                        total = 0
                        for p in set(pages):
                            total += p
                        return total
                """
            )
            == []
        )

    def test_applies_to_tests(self):
        # Unlike the structural rules, R012 covers tests too: a test
        # helper that emits in arbitrary order is a flaky trace test.
        source = (
            "def test_emit(tracer, pages):\n"
            "    for p in set(pages):\n"
            "        tracer.emit('touch', page=p)\n"
        )
        assert ids_of(findings_for(source, path=TST)) == ["R012"]


# ----------------------------------------------------------------------
# R013 — span discipline (with usage; span_end on all exit paths)
# ----------------------------------------------------------------------
class TestR013:
    def test_bare_span_call_flagged(self):
        found = findings_for(
            """
            class C:
                def f(self, txn):
                    self.tracer.span("commit", txn=txn)
                    return txn
            """
        )
        assert ids_of(found) == ["R013"]

    def test_with_span_clean(self):
        assert (
            findings_for(
                """
                class C:
                    def f(self, txn):
                        with self.tracer.span("commit", txn=txn):
                            return self.apply(txn)
                """
            )
            == []
        )

    def test_returned_span_clean(self):
        # A factory handing the handle to its caller is not the leak.
        assert (
            findings_for(
                """
                class C:
                    def open_span(self, txn):
                        return self.tracer.span("commit", txn=txn)
                """
            )
            == []
        )

    def test_manual_begin_without_end_flagged(self):
        found = findings_for(
            """
            class C:
                def f(self, txn):
                    handle = self.tracer.span_begin("commit", txn=txn)
                    return self.apply(txn)
            """
        )
        assert ids_of(found) == ["R013"]

    def test_manual_begin_early_return_flagged(self):
        found = findings_for(
            """
            class C:
                def f(self, txn):
                    handle = self.tracer.span_begin("commit", txn=txn)
                    if txn is None:
                        return None
                    self.tracer.span_end(handle)
                    return txn
            """
        )
        assert ids_of(found) == ["R013"]

    def test_manual_begin_raise_path_flagged(self):
        # apply() may raise between begin and end; no try/finally.
        found = findings_for(
            """
            class C:
                def f(self, txn):
                    handle = self.tracer.span_begin("commit", txn=txn)
                    result = self.apply(txn)
                    self.tracer.span_end(handle)
                    return result
            """
        )
        assert ids_of(found) == ["R013"]
        assert "escaping-exception" in found[0].message

    def test_manual_begin_try_finally_clean(self):
        assert (
            findings_for(
                """
                class C:
                    def f(self, txn):
                        handle = self.tracer.span_begin("commit", txn=txn)
                        try:
                            return self.apply(txn)
                        finally:
                            self.tracer.span_end(handle)
                """
            )
            == []
        )

    def test_non_tracer_receiver_ignored(self):
        # .span() on something that is not a tracer is out of scope.
        assert (
            findings_for(
                """
                class C:
                    def f(self, layout):
                        return self.grid.span(3)
                """
            )
            == []
        )


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_disable(self):
        assert (
            findings_for(
                "def f(page, lsn):\n"
                "    page.page_lsn = lsn  # reprolint: disable=R001 -- why\n"
            )
            == []
        )

    def test_standalone_disable_applies_to_next_line(self):
        assert (
            findings_for(
                "def f(page, lsn):\n"
                "    # reprolint: disable=R001 -- justified\n"
                "    page.page_lsn = lsn\n"
            )
            == []
        )

    def test_disable_wrong_rule_keeps_finding(self):
        found = findings_for(
            "def f(page, lsn):\n"
            "    page.page_lsn = lsn  # reprolint: disable=R005\n"
        )
        assert ids_of(found) == ["R001"]

    def test_disable_all(self):
        assert (
            findings_for(
                "def f(page, lsn):\n"
                "    page.page_lsn = lsn  # reprolint: disable=all\n"
            )
            == []
        )

    def test_file_wide_disable(self):
        assert (
            findings_for(
                "# reprolint: disable-file=R001\n"
                "def f(page, lsn):\n"
                "    page.page_lsn = lsn\n"
                "def g(page, lsn):\n"
                "    page.page_lsn = lsn\n"
            )
            == []
        )

    def test_multi_rule_pragma(self):
        supp = parse_suppressions("x = 1  # reprolint: disable=R001,R002\n")
        assert supp.is_suppressed("R001", 1)
        assert supp.is_suppressed("R002", 1)
        assert not supp.is_suppressed("R003", 1)


# ----------------------------------------------------------------------
# engine / CLI
# ----------------------------------------------------------------------
class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        found = lint_source("def broken(:\n", path=SRC)
        assert ids_of(found) == ["E000"]

    def test_finding_render_format(self):
        found = findings_for("page.page_lsn = 1\n")
        rendered = found[0].render()
        assert rendered.startswith(f"{SRC}:1:")
        assert "R001" in rendered

    def test_rule_catalog_complete(self):
        assert [r.id for r in ALL_RULES] == [
            "R001",
            "R002",
            "R003",
            "R004",
            "R005",
            "R006",
            "R007",
            "R008",
            "R009",
            "R010",
            "R011",
            "R012",
            "R013",
        ]
        for rule in ALL_RULES:
            assert rule.description

    def test_cli_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        from repro.lint.__main__ import main

        assert main([str(target)]) == 0

    def test_cli_violation_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "module.py"
        target.write_text("def f(page):\n    page.page_lsn = 1\n")
        from repro.lint.__main__ import main

        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "module.py:2:" in out

    def test_cli_select(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("def f(page):\n    page.page_lsn = 1\n")
        from repro.lint.__main__ import main

        assert main(["--select", "R002", str(target)]) == 0
        assert main(["--select", "R001", str(target)]) == 1

    def test_cli_list_rules(self, capsys):
        from repro.lint.__main__ import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_cli_unknown_rule_is_usage_error(self, capsys):
        import pytest

        from repro.lint.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["--select", "R999", "src"])
        assert exc.value.code == 2
        assert "R999" in capsys.readouterr().err

    def test_cli_missing_path_is_usage_error(self, capsys):
        from repro.lint.__main__ import main

        assert main(["path/does/not/exist"]) == 2
        assert "no such file" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the analysis engine: CFG construction
# ----------------------------------------------------------------------
def _cfg_for(source, **kwargs):
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return func, build_cfg(func, **kwargs)


def _block_with(cfg, node_type):
    """The first block whose payload includes a statement of node_type."""
    for block in cfg.blocks:
        for payload in block.stmts:
            if isinstance(payload, node_type):
                return block
    raise AssertionError(f"no block holds a {node_type.__name__}")


class TestCfg:
    def test_straight_line_has_no_raise_path(self):
        _, cfg = _cfg_for(
            """
            def f():
                x = 1
                return x
            """
        )
        reached = reachable_blocks(cfg)
        assert cfg.exit_id in reached
        assert cfg.raise_id not in reached

    def test_call_adds_exception_edge(self):
        _, cfg = _cfg_for("def f():\n    g()\n")
        reached = reachable_blocks(cfg)
        assert cfg.exit_id in reached
        assert cfg.raise_id in reached

    def test_call_may_raise_predicate_narrows_edges(self):
        _, cfg = _cfg_for(
            "def f():\n    g()\n",
            call_may_raise=lambda call: False,
        )
        assert cfg.raise_id not in reachable_blocks(cfg)

    def test_branch_paths_both_reach_exit(self):
        _, cfg = _cfg_for(
            """
            def f(p):
                if p:
                    return 1
                return 2
            """
        )
        returns = [
            b for b in cfg.blocks
            if any(isinstance(s, ast.Return) for s in b.stmts)
        ]
        assert len(returns) == 2
        for block in returns:
            assert cfg.exit_id in block.succs

    def test_loop_header_has_back_edge(self):
        _, cfg = _cfg_for(
            """
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )
        header = _block_with(cfg, ast.While)
        preds = cfg.preds()[header.id]
        assert len(preds) >= 2  # entry side plus the back edge

    def test_finally_suite_duplicated_per_path(self):
        # One copy runs on normal completion, one on the exception
        # path — the same finally statement appears in two blocks.
        func, cfg = _cfg_for(
            """
            def f():
                try:
                    g()
                finally:
                    x = 1
            """
        )
        final_stmt = next(
            n for n in ast.walk(func) if isinstance(n, ast.Assign)
        )
        copies = [b for b in cfg.blocks if final_stmt in b.stmts]
        assert len(copies) >= 2

    def test_with_produces_enter_and_both_exits(self):
        _, cfg = _cfg_for(
            """
            def f(lock):
                with lock:
                    g()
            """
        )
        enters = [
            b for b in cfg.blocks
            if any(isinstance(s, WithEnter) for s in b.stmts)
        ]
        exits = [
            b for b in cfg.blocks
            if any(isinstance(s, WithExit) for s in b.stmts)
        ]
        assert len(enters) == 1
        assert len(exits) == 2  # normal __exit__ and exceptional __exit__

    def test_exception_edge_carries_in_state(self):
        # The raising statement's own effects must not be visible on
        # its exception edge: the block reaches raise_id via exc_succs,
        # never via succs.
        _, cfg = _cfg_for("def f(self):\n    self.g()\n")
        call_block = _block_with(cfg, ast.Expr)
        assert cfg.raise_id in call_block.exc_succs
        assert cfg.raise_id not in call_block.succs


# ----------------------------------------------------------------------
# the analysis engine: dataflow
# ----------------------------------------------------------------------
class TestDataflow:
    def test_reaching_definitions_join_branches(self):
        func, cfg = _cfg_for(
            """
            def f(flag):
                x = set()
                if flag:
                    x = []
                return x
            """
        )
        defs = ReachingDefinitions(cfg, func)
        return_block = _block_with(cfg, ast.Return)
        values = defs.values_at(return_block.id, "x")
        assert len(values) == 2  # both definitions reach the return
        kinds = {type(v) for v in values}
        assert kinds == {ast.Call, ast.List}

    def test_parameters_reach_with_opaque_value(self):
        func, cfg = _cfg_for("def f(flag):\n    return flag\n")
        defs = ReachingDefinitions(cfg, func)
        return_block = _block_with(cfg, ast.Return)
        assert defs.values_at(return_block.id, "flag") == [None]

    def test_redefinition_kills_previous(self):
        func, cfg = _cfg_for(
            """
            def f():
                x = set()
                x = sorted(x)
                return x
            """
        )
        defs = ReachingDefinitions(cfg, func)
        return_block = _block_with(cfg, ast.Return)
        values = defs.values_at(return_block.id, "x")
        assert len(values) == 1  # the sorted() def killed the set() def

    def test_may_lockset_sees_leaking_path(self):
        func, cfg = _cfg_for(
            """
            def f(self, txn):
                self.glm.acquire(txn, 1, 2)
                if txn:
                    return None
                self.glm.release(txn, 1)
                return txn
            """,
            call_may_raise=lambda call: False,
        )
        lockset = LocksetAnalysis(cfg, lambda name: name == "glm")
        held = lockset.held_at_exit()
        assert held == {"self.glm": [cfg.exit_id]}

    def test_balanced_protocol_holds_nothing_at_exit(self):
        func, cfg = _cfg_for(
            """
            def f(self, txn):
                self.glm.acquire(txn, 1, 2)
                self.glm.release(txn, 1)
            """,
            call_may_raise=lambda call: False,
        )
        lockset = LocksetAnalysis(cfg, lambda name: name == "glm")
        assert lockset.held_at_exit() == {}

    def test_must_lockset_under_with(self):
        func, cfg = _cfg_for(
            """
            def f(self, part):
                with self._lock:
                    self.results.append(part)
            """
        )
        lockset = LocksetAnalysis(
            cfg, lambda name: name is not None and "lock" in name.lower(),
            must=True,
        )
        mutation = _block_with(cfg, ast.Expr)
        assert "with:self._lock" in lockset.held_before(mutation.id)

    def test_must_lockset_drops_unprotected_branch(self):
        func, cfg = _cfg_for(
            """
            def f(self, txn, fast):
                if not fast:
                    self.lock.acquire(txn)
                self.results.append(txn)
            """,
            call_may_raise=lambda call: False,
        )
        lockset = LocksetAnalysis(
            cfg, lambda name: name is not None and "lock" in name.lower(),
            must=True,
        )
        mutation = next(
            b for b in cfg.blocks
            if any(
                isinstance(s, ast.Expr)
                and isinstance(s.value, ast.Call)
                and isinstance(s.value.func, ast.Attribute)
                and s.value.func.attr == "append"
                for s in b.stmts
            )
        )
        assert lockset.held_before(mutation.id) == frozenset()


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------
class TestSarif:
    def _one_finding(self):
        return findings_for("def f(page):\n    page.page_lsn = 1\n")

    def test_log_shape(self):
        findings = self._one_finding()
        log = findings_to_sarif(findings, ALL_RULES)
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            r.id for r in ALL_RULES
        ]

    def test_result_points_back_into_catalog(self):
        findings = self._one_finding()
        log = findings_to_sarif(findings, ALL_RULES)
        run = log["runs"][0]
        assert len(run["results"]) == 1
        result = run["results"][0]
        assert result["ruleId"] == "R001"
        catalog = run["tool"]["driver"]["rules"]
        assert catalog[result["ruleIndex"]]["id"] == result["ruleId"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == findings[0].line
        assert region["startColumn"] == findings[0].col

    def test_engine_pseudo_rule_appended(self):
        findings = lint_source("def broken(:\n", path=SRC)
        log = findings_to_sarif(findings, ALL_RULES)
        run = log["runs"][0]
        catalog = run["tool"]["driver"]["rules"]
        assert len(catalog) == len(ALL_RULES) + 1
        assert catalog[-1]["id"] == "E000"
        assert run["results"][0]["ruleIndex"] == len(ALL_RULES)

    def test_render_is_deterministic_json(self):
        findings = self._one_finding()
        first = render_sarif(findings, ALL_RULES)
        second = render_sarif(findings, ALL_RULES)
        assert first == second
        assert json.loads(first)["version"] == "2.1.0"

    def test_cli_sarif_file(self, tmp_path):
        from repro.lint.__main__ import main

        target = tmp_path / "module.py"
        target.write_text("def f(page):\n    page.page_lsn = 1\n")
        out = tmp_path / "log.sarif"
        assert main(
            ["--no-cache", "--sarif-file", str(out), "-q", str(target)]
        ) == 1
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "R001"


# ----------------------------------------------------------------------
# the content-hash result cache
# ----------------------------------------------------------------------
class TestCache:
    def test_key_is_stable_and_content_sensitive(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("x = 1\n")
        first = result_cache.compute_key([str(target)], ALL_RULES)
        again = result_cache.compute_key([str(target)], ALL_RULES)
        assert first == again
        target.write_text("x = 2\n")
        assert result_cache.compute_key([str(target)], ALL_RULES) != first

    def test_key_depends_on_rule_selection(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("x = 1\n")
        all_key = result_cache.compute_key([str(target)], ALL_RULES)
        one_key = result_cache.compute_key([str(target)], ALL_RULES[:1])
        assert all_key != one_key

    def test_store_load_roundtrip(self, tmp_path):
        cache_file = str(tmp_path / "cache.json")
        findings = [
            Finding(path="a.py", line=3, col=5, rule_id="R001",
                    message="unlogged mutation"),
        ]
        result_cache.store(cache_file, "key1", findings)
        assert result_cache.load(cache_file, "key1") == findings
        assert result_cache.load(cache_file, "other") is None

    def test_load_tolerates_corruption(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        assert result_cache.load(str(cache_file), "key") is None
        cache_file.write_text('{"format": 999, "entries": {}}')
        assert result_cache.load(str(cache_file), "key") is None

    def test_mru_pruning(self, tmp_path):
        cache_file = str(tmp_path / "cache.json")
        for i in range(result_cache.MAX_ENTRIES + 4):
            result_cache.store(cache_file, f"key{i}", [])
        assert result_cache.load(cache_file, "key0") is None
        newest = f"key{result_cache.MAX_ENTRIES + 3}"
        assert result_cache.load(cache_file, newest) == []

    def test_cli_second_run_is_cached(self, tmp_path, capsys):
        from repro.lint.__main__ import main

        target = tmp_path / "module.py"
        target.write_text("def f(page):\n    page.page_lsn = 1\n")
        cache_file = str(tmp_path / "cache.json")
        assert main(["--cache-file", cache_file, str(target)]) == 1
        assert "cached" not in capsys.readouterr().err
        # Same tree, same rules: the replay must re-render and re-exit
        # identically, from the cache.
        assert main(["--cache-file", cache_file, str(target)]) == 1
        captured = capsys.readouterr()
        assert "cached" in captured.err
        assert "R001" in captured.out

    def test_cli_no_cache_bypasses(self, tmp_path, capsys):
        from repro.lint.__main__ import main

        target = tmp_path / "module.py"
        target.write_text("x = 1\n")
        cache_file = str(tmp_path / "cache.json")
        assert main(["--cache-file", cache_file, str(target)]) == 0
        capsys.readouterr()
        args = ["--no-cache", "--cache-file", cache_file, str(target)]
        assert main(args) == 0
        assert "cached" not in capsys.readouterr().err

    def test_edit_invalidates(self, tmp_path, capsys):
        from repro.lint.__main__ import main

        target = tmp_path / "module.py"
        target.write_text("x = 1\n")
        cache_file = str(tmp_path / "cache.json")
        assert main(["--cache-file", cache_file, str(target)]) == 0
        target.write_text("def f(page):\n    page.page_lsn = 1\n")
        capsys.readouterr()
        assert main(["--cache-file", cache_file, str(target)]) == 1
        assert "cached" not in capsys.readouterr().err


# ----------------------------------------------------------------------
# the tier-1 gate: the real tree stays clean, and stays *checkable*
# ----------------------------------------------------------------------
class TestRealTree:
    def test_whole_tree_is_clean(self):
        findings = lint_paths(
            [
                str(REPO / "src"),
                str(REPO / "tests"),
                str(REPO / "benchmarks"),
                str(REPO / "examples"),
            ]
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_each_rule_still_fires_on_seeded_violation(self):
        """Guard against rules rotting into no-ops: every rule must
        still produce a finding on its canonical violation."""
        seeded = {
            "R001": "def f(page, lsn):\n    page.page_lsn = lsn\n",
            "R002": "import time\nt = time.time()\n",
            "R003": "def f(addr, lsn):\n    return addr < lsn\n",
            "R004": (
                "class C:\n"
                "    def f(self):\n"
                "        self.glm.acquire(1, 2, 3)\n"
            ),
            "R005": "try:\n    pass\nexcept Exception:\n    pass\n",
            "R006": (
                "class C:\n"
                "    def f(self):\n"
                "        self.stats.incr('made.up.counter')\n"
            ),
            "R007": (
                "def f():\n"
                "    raise FaultInjectedError('disk.write', 'crash')\n"
            ),
            "R008": (
                "class Child:\n"
                "    def __init__(self, size, tracer=None):\n"
                "        self.tracer = tracer\n"
                "class Parent:\n"
                "    def __init__(self, tracer=None):\n"
                "        self.child = Child(4)\n"
            ),
            "R009": (
                "class C:\n"
                "    def f(self, txn):\n"
                "        self.glm.acquire(txn, 1, 2)\n"
                "        if txn:\n"
                "            return None\n"
                "        self.glm.release(txn, 1)\n"
                "        return txn\n"
            ),
            "R010": (
                "from concurrent.futures import ThreadPoolExecutor\n"
                "class C:\n"
                "    def run(self):\n"
                "        self.pool.submit(self._work, 1)\n"
                "    def _work(self, part):\n"
                "        self.results.append(part)\n"
            ),
            "R011": (
                "class C:\n"
                "    def f(self, page, rec, fast):\n"
                "        if fast:\n"
                "            page.update_record(0, rec)\n"
                "            return\n"
                "        page.update_record(0, rec)\n"
                "        self.log.append(rec, page_lsn=page.page_lsn)\n"
            ),
            "R012": (
                "class C:\n"
                "    def f(self, pages):\n"
                "        for p in set(pages):\n"
                "            self.tracer.emit('touch', page=p)\n"
            ),
            "R013": (
                "class C:\n"
                "    def f(self, txn):\n"
                "        self.tracer.span('commit', txn=txn)\n"
            ),
        }
        assert set(seeded) == {r.id for r in ALL_RULES}
        for rule_id, source in seeded.items():
            found = findings_for(source, rule=rule_id)
            assert ids_of(found) == [rule_id], (rule_id, found)

    def test_cli_end_to_end_on_repo(self):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.lint", "--no-cache",
                "src", "tests", "benchmarks", "examples",
            ],
            cwd=str(REPO),
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr


# ----------------------------------------------------------------------
# optional externals: mypy strict core and ruff, when installed
# ----------------------------------------------------------------------
def _have(module):
    try:
        __import__(module)
        return True
    except ImportError:
        return False


@pytest.mark.skipif(not _have("mypy"), reason="mypy not installed")
def test_mypy_strict_core_passes():
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=str(REPO),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout


@pytest.mark.skipif(not _have("ruff"), reason="ruff not installed")
def test_ruff_passes():
    result = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tests"],
        cwd=str(REPO),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout
