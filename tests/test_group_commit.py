"""Tests for group commit (lazy commit + batched log force)."""

import pytest

from repro import SDComplex
from repro.common.errors import LockWouldBlock
from repro.common.stats import LOG_FORCES


def fresh():
    sd = SDComplex(n_data_pages=256)
    return sd, sd.add_instance(1), sd.add_instance(2)


def committed_row(instance, payload=b"v0"):
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    slot = instance.insert(txn, page_id, payload)
    instance.commit(txn)
    return page_id, slot


class TestBatching:
    def test_one_force_covers_a_batch(self):
        """Ten independent transactions, one force.  (Lazy commits keep
        their locks until synced, so the batch touches ten distinct
        records — the realistic group-commit shape.)"""
        sd, s1, _ = fresh()
        rows = [committed_row(s1, b"r%d" % i) for i in range(10)]
        forces_before = sd.stats.get(LOG_FORCES)
        for i, (page_id, slot) in enumerate(rows):
            txn = s1.begin()
            s1.update(txn, page_id, slot, b"v%d" % i)
            s1.commit(txn, lazy=True)
        assert sd.stats.get(LOG_FORCES) == forces_before
        assert s1.sync_commits() == 10
        assert sd.stats.get(LOG_FORCES) == forces_before + 1

    def test_eager_commit_drains_pending(self):
        sd, s1, _ = fresh()
        (page_a, slot_a), (page_b, slot_b) = (committed_row(s1),
                                              committed_row(s1))
        txn_a = s1.begin()
        s1.update(txn_a, page_a, slot_a, b"a")
        s1.commit(txn_a, lazy=True)
        txn_b = s1.begin()
        s1.update(txn_b, page_b, slot_b, b"b")
        s1.commit(txn_b)           # eager: forces and completes both
        assert s1.txns.active_count() == 0
        assert s1.sync_commits() == 0

    def test_sync_with_nothing_pending_is_free(self):
        sd, s1, _ = fresh()
        forces_before = sd.stats.get(LOG_FORCES)
        assert s1.sync_commits() == 0
        assert sd.stats.get(LOG_FORCES) == forces_before


class TestAckSemantics:
    def test_locks_held_until_sync(self):
        sd, s1, s2 = fresh()
        page_id, slot = committed_row(s1)
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"pending")
        s1.commit(txn, lazy=True)
        other = s2.begin()
        with pytest.raises(LockWouldBlock):
            s2.update(other, page_id, slot, b"blocked")
        s1.sync_commits()
        s2.update(other, page_id, slot, b"now-ok")
        s2.commit(other)

    def test_unsynced_lazy_commit_lost_on_crash(self):
        """Group-commit loss semantics: a commit never acknowledged may
        vanish — and must vanish *atomically*."""
        sd, s1, _ = fresh()
        page_id, slot = committed_row(s1, b"durable")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"unacked")
        s1.commit(txn, lazy=True)
        sd.crash_instance(1)
        summary = sd.restart_instance(1)
        assert sd.disk.read_page(page_id).read_record(slot) == b"durable"

    def test_synced_lazy_commit_is_durable(self):
        sd, s1, _ = fresh()
        page_id, slot = committed_row(s1, b"old")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"grouped")
        s1.commit(txn, lazy=True)
        s1.sync_commits()
        sd.crash_instance(1)
        sd.restart_instance(1)
        assert sd.disk.read_page(page_id).read_record(slot) == b"grouped"

    def test_wal_force_stops_short_of_commit_record(self):
        """A WAL-driven page write forces the log only through the
        page's last *update* record; the lazy COMMIT behind it stays
        volatile, so the transaction still rolls back at restart."""
        sd, s1, _ = fresh()
        page_id, slot = committed_row(s1, b"durable")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"unacked")
        s1.commit(txn, lazy=True)
        s1.pool.write_page(page_id)   # forces up to the update only
        sd.crash_instance(1)
        summary = sd.restart_instance(1)
        assert summary.loser_transactions == 1
        assert sd.disk.read_page(page_id).read_record(slot) == b"durable"

    def test_externally_forced_lazy_commit_is_a_winner(self):
        """Once the commit record reaches stable storage by *any* path,
        restart treats the transaction as committed — acknowledgement
        is a liveness courtesy, durability follows the log."""
        sd, s1, _ = fresh()
        page_id, slot = committed_row(s1, b"old")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"lazy-win")
        s1.commit(txn, lazy=True)
        s1.log.force()                # e.g. another txn's eager commit
        sd.crash_instance(1)
        summary = sd.restart_instance(1)
        assert summary.loser_transactions == 0
        assert sd.disk.read_page(page_id).read_record(slot) == b"lazy-win"


class TestCsGroupCommit:
    def make_cs(self):
        from repro import CsSystem
        cs = CsSystem(n_data_pages=256)
        return cs, cs.add_client(1), cs.add_client(2)

    def committed_row(self, client, payload=b"v0"):
        txn = client.begin()
        page_id = client.allocate_page(txn)
        slot = client.insert(txn, page_id, payload)
        client.commit(txn)
        return page_id, slot

    def test_one_ship_and_force_covers_a_batch(self):
        cs, c1, _ = self.make_cs()
        rows = [self.committed_row(c1, b"r%d" % i) for i in range(5)]
        forces_before = cs.stats.get("log.forces")
        ships_before = cs.stats.get("net.messages.log_ship")
        for i, (page_id, slot) in enumerate(rows):
            txn = c1.begin()
            c1.update(txn, page_id, slot, b"v%d" % i)
            c1.commit(txn, lazy=True)
        assert cs.stats.get("log.forces") == forces_before
        assert c1.sync_commits() == 5
        assert cs.stats.get("log.forces") == forces_before + 1
        assert cs.stats.get("net.messages.log_ship") == ships_before + 1

    def test_locks_held_until_sync(self):
        from repro.common.errors import LockWouldBlock
        cs, c1, c2 = self.make_cs()
        page_id, slot = self.committed_row(c1)
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"pending")
        c1.commit(txn, lazy=True)
        other = c2.begin()
        with pytest.raises(LockWouldBlock):
            c2.update(other, page_id, slot, b"blocked")
        c1.sync_commits()
        c2.update(other, page_id, slot, b"ok")
        c2.commit(other)

    def test_unsynced_batch_lost_consistently_on_crash(self):
        cs, c1, _ = self.make_cs()
        page_id, slot = self.committed_row(c1, b"durable")
        c1.flush_all()
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"unacked")
        c1.commit(txn, lazy=True)
        cs.crash_client(1)
        summary = cs.server.recover_client(1)
        c1.rejoin()
        assert summary.loser_transactions == 0   # nothing ever shipped
        cs.quiesce()
        assert cs.server.disk.read_page(page_id).read_record(slot) \
            == b"durable"

    def test_synced_batch_durable_across_client_crash(self):
        cs, c1, _ = self.make_cs()
        page_id, slot = self.committed_row(c1, b"old")
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"batched")
        c1.commit(txn, lazy=True)
        c1.sync_commits()
        cs.crash_client(1)
        cs.recover_client(1)
        cs.quiesce()
        assert cs.server.disk.read_page(page_id).read_record(slot) \
            == b"batched"

    def test_eager_commit_drains_pending(self):
        cs, c1, _ = self.make_cs()
        (pa, sa), (pb, sb) = (self.committed_row(c1),
                              self.committed_row(c1))
        ta = c1.begin()
        c1.update(ta, pa, sa, b"a")
        c1.commit(ta, lazy=True)
        tb = c1.begin()
        c1.update(tb, pb, sb, b"b")
        c1.commit(tb)
        assert c1.txns.active_count() == 0
        assert c1.sync_commits() == 0
