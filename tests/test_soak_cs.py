"""Deterministic CS soak test: the client-server stack end to end.

Mirrors tests/test_soak.py for the client-server architecture: bounded
caches forcing eviction write-backs, group commits, client checkpoints,
client crashes recovered by the server, a server crash, B-tree use from
clients, and a final verifier + oracle pass.
"""

import random

from repro import BTree, CsSystem
from repro.common.errors import (
    DeadlockError,
    LockWouldBlock,
    ProtocolError,
    ReproError,
)
from repro.harness import verify_cs_system


def test_soak_client_server():
    rng = random.Random(19920600)   # ICDCS '92
    cs = CsSystem(n_data_pages=1024)
    clients = [
        cs.add_client(1, cache_capacity=8),
        cs.add_client(2, cache_capacity=8),
        cs.add_client(3),           # one unbounded workstation
    ]
    c1, c2, c3 = clients

    # Setup: an indexed key-value store owned by the complex.
    txn = c1.begin()
    index = BTree.create(c1, txn, fanout=8)
    store_page = c1.allocate_page(txn)
    oracle = {}
    slots = {}
    for i in range(24):
        key = b"obj%03d" % i
        value = b"v0-%03d" % i
        if i and i % 8 == 0:
            store_page = c1.allocate_page(txn)
        slot = c1.insert(txn, store_page, value)
        slots[key] = (store_page, slot)
        index.insert(c1, txn, key, b"%d:%d" % (store_page, slot))
        oracle[key] = value
    c1.commit(txn)

    def do_update(client, i, value, lazy):
        """One update transaction.  Lazy commits may be applied to the
        oracle immediately: record locks are held until the batch is
        acknowledged, so issue order equals commit order, and this test
        always syncs every batch before any crash."""
        key = b"obj%03d" % i
        txn = client.begin()
        try:
            page_id, slot = slots[key]
            client.update(txn, page_id, slot, value)
            client.commit(txn, lazy=lazy)
            oracle[key] = value
            return True
        except (LockWouldBlock, DeadlockError, ProtocolError):
            try:
                client.rollback(txn)
            except ReproError:
                pass  # best-effort rollback of a doomed txn
            return False

    # Phase 1: mixed traffic with group commits and checkpoints.
    for step in range(90):
        client = clients[step % 3]
        if client.crashed:
            continue
        do_update(client, rng.randrange(24), b"p1-%04d" % step,
                  lazy=rng.random() < 0.25)
        if step % 20 == 19:
            for cl in clients:
                if not cl.crashed:
                    cl.sync_commits()
                    cl.checkpoint()

    # Sync all remaining lazy commits before any failure.
    for cl in clients:
        cl.sync_commits()

    # Phase 2: crash each bounded client in turn, server recovers it.
    for victim in (1, 2):
        txn = clients[victim - 1].begin()
        page_id, slot = slots[b"obj%03d" % victim]
        clients[victim - 1].update(txn, page_id, slot, b"in-flight")
        clients[victim - 1].send_page_back(page_id)
        cs.crash_client(victim)
        cs.recover_client(victim)

    # Phase 3: more traffic, then the server dies.
    for step in range(30):
        client = clients[step % 3]
        do_update(client, rng.randrange(24), b"p3-%04d" % step, lazy=False)
    cs.server.take_checkpoint()
    cs.crash_server()
    cs.restart_server()

    # Verdict.
    cs.quiesce()
    report = verify_cs_system(cs, quiesced=True)
    assert report.ok, [str(v) for v in report.violations]
    txn = c3.begin()
    for key, expected in oracle.items():
        page_id, slot = slots[key]
        assert c3.read(txn, page_id, slot) == expected, key
        assert index.search(c3, txn, key) == b"%d:%d" % (page_id, slot)
    c3.commit(txn)
