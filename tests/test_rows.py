"""Tests for the typed row codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.access.rows import RowCodec


CODEC = RowCodec([("id", "i"), ("name", "s"), ("price", "f"),
                  ("blob", "b")])


class TestPackUnpack:
    def test_roundtrip(self):
        row = CODEC.pack(42, "widget", 9.75, b"\x00\x01")
        assert CODEC.unpack(row) == (42, "widget", 9.75, b"\x00\x01")

    def test_as_dict(self):
        row = CODEC.pack(1, "x", 0.5, b"")
        assert CODEC.as_dict(row) == {
            "id": 1, "name": "x", "price": 0.5, "blob": b"",
        }

    def test_negative_int_and_unicode(self):
        codec = RowCodec([("n", "i"), ("s", "s")])
        row = codec.pack(-2**40, "héllo ✓")
        assert codec.unpack(row) == (-2**40, "héllo ✓")

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            CODEC.pack(1, "x")

    def test_trailing_bytes_rejected(self):
        row = CODEC.pack(1, "x", 0.0, b"")
        with pytest.raises(ValueError):
            CODEC.unpack(row + b"junk")

    def test_invalid_schema(self):
        with pytest.raises(ValueError):
            RowCodec([("x", "z")])
        with pytest.raises(ValueError):
            RowCodec([])

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(-2**62, 2**62),
        s=st.text(max_size=60),
        f=st.floats(allow_nan=False, allow_infinity=False),
        b=st.binary(max_size=60),
    )
    def test_property_roundtrip(self, n, s, f, b):
        row = CODEC.pack(n, s, f, b)
        assert CODEC.unpack(row) == (n, s, f, b)


class TestWithEngine:
    def test_rows_through_a_table(self):
        from repro import SDComplex
        from repro.access.table import SegmentedTable

        sd = SDComplex(n_data_pages=128)
        s1 = sd.add_instance(1)
        codec = RowCodec([("account", "i"), ("balance", "i")])
        table = SegmentedTable("accounts")
        txn = s1.begin()
        rid = table.insert_row(s1, txn, codec.pack(7, 1000))
        s1.commit(txn)
        txn = s1.begin()
        account, balance = codec.unpack(table.read_row(s1, txn, rid))
        table.update_row(s1, txn, rid, codec.pack(account, balance - 50))
        s1.commit(txn)
        sd.crash_instance(1)
        sd.restart_instance(1)
        txn = s1.begin()
        assert codec.unpack(table.read_row(s1, txn, rid)) == (7, 950)
        s1.commit(txn)
