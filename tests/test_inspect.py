"""Tests for the log inspection utilities."""

from repro import SDComplex
from repro.recovery.checkpoint import take_checkpoint
from repro.wal.inspect import (
    describe_record,
    dump_log,
    page_history,
    summarize_log,
    transaction_history,
)


def instance_with_history():
    sd = SDComplex(n_data_pages=128)
    s1 = sd.add_instance(1)
    txn = s1.begin()
    page_id = s1.allocate_page(txn)
    slot = s1.insert(txn, page_id, b"hello-world")
    s1.update(txn, page_id, slot, b"updated-bytes")
    s1.commit(txn)
    loser = s1.begin()
    s1.update(loser, page_id, slot, b"rolled-back")
    s1.rollback(loser)
    take_checkpoint(s1)
    return sd, s1, txn.txn_id, loser.txn_id, page_id


class TestDump:
    def test_dump_renders_every_record(self):
        sd, s1, *_ = instance_with_history()
        text = dump_log(s1.log)
        assert text.count("\n") == s1.log.record_count()  # header + lines
        assert "lsn=" in text
        assert "CMT" in text and "CLR" in text and "ECK" in text

    def test_dump_limit(self):
        sd, s1, *_ = instance_with_history()
        text = dump_log(s1.log, limit=2)
        assert "truncated" in text

    def test_header_fields(self):
        sd, s1, *_ = instance_with_history()
        header = dump_log(s1.log).splitlines()[0]
        assert "system 1" in header
        assert "Local_Max_LSN" in header

    def test_describe_record_checkpoint_payload(self):
        sd, s1, *_ = instance_with_history()
        lines = dump_log(s1.log).splitlines()
        eck = next(line for line in lines if "ECK" in line)
        assert "dpt=" in eck and "txns=" in eck


class TestSummaries:
    def test_summary_counts(self):
        sd, s1, txn_id, loser_id, page_id = instance_with_history()
        summary = summarize_log(s1.log)
        assert summary.records == s1.log.record_count()
        assert summary.by_kind["CMT"] == 1
        assert summary.by_kind["CLR"] == 1
        assert txn_id in summary.transactions
        assert page_id in summary.pages
        assert summary.last_lsn >= summary.first_lsn > 0
        assert "records" in summary.render()

    def test_transaction_history(self):
        sd, s1, txn_id, loser_id, _ = instance_with_history()
        history = transaction_history(s1.log, loser_id)
        assert any("CLR" in line for line in history)
        assert any("END" in line for line in history)

    def test_page_history_in_order(self):
        sd, s1, _, _, page_id = instance_with_history()
        history = page_history(s1.log, page_id)
        assert len(history) >= 4   # format, insert, update, loser, CLR
        # LSNs in the rendered lines are increasing (I2, readable form).
        lsns = [int(line.split("lsn=")[1].split()[0]) for line in history]
        assert lsns == sorted(lsns)
