"""Tests for the CS client log manager (virtual-storage buffering)."""

from repro.wal.client_log import ClientLogManager
from repro.wal.records import LogRecord, RecordKind, make_update


def rec(txn_id=1_000_001, page_id=10):
    return make_update(txn_id, 0, page_id, 0, redo=b"r", undo=b"u")


class TestLsnAssignment:
    def test_same_usn_rule_as_local_logs(self):
        log = ClientLogManager(1)
        record = rec()
        log.append(record, page_lsn=40)
        assert record.lsn == 41
        second = rec()
        log.append(second)
        assert second.lsn == 42

    def test_stamps_client_identity(self):
        """Section 3.1: client log records carry the client's identity."""
        log = ClientLogManager(9)
        record = rec()
        log.append(record)
        assert record.system_id == 9

    def test_observe_remote_max(self):
        log = ClientLogManager(1)
        log.observe_remote_max(300)
        record = rec()
        log.append(record)
        assert record.lsn == 301


class TestShipping:
    def test_ship_drains_pending(self):
        log = ClientLogManager(1)
        log.append(rec())
        log.append(rec())
        assert log.pending_count() == 2
        data = log.ship()
        assert len(data) > 0
        assert log.pending_count() == 0
        assert log.ship() == b""

    def test_shipped_bytes_parse_in_order(self):
        log = ClientLogManager(1)
        records = [rec(page_id=p) for p in (5, 6, 7)]
        for record in records:
            log.append(record)
        data = log.ship()
        parsed = [r for _, r in LogRecord.parse_stream(data)]
        assert [r.page_id for r in parsed] == [5, 6, 7]
        assert [r.lsn for r in parsed] == [1, 2, 3]


class TestRetainedRecords:
    def test_records_retained_across_ship_for_rollback(self):
        log = ClientLogManager(1)
        record = rec(txn_id=1_000_001)
        log.append(record)
        log.ship()
        assert log.records_of_txn(1_000_001) == [record]

    def test_end_record_forgets_txn(self):
        log = ClientLogManager(1)
        log.append(rec(txn_id=1_000_001))
        end = LogRecord(kind=RecordKind.END, txn_id=1_000_001)
        log.append(end)
        assert log.records_of_txn(1_000_001) == []

    def test_forget_txn(self):
        log = ClientLogManager(1)
        log.append(rec(txn_id=1_000_001))
        log.forget_txn(1_000_001)
        assert log.records_of_txn(1_000_001) == []

    def test_txns_tracked_independently(self):
        log = ClientLogManager(1)
        a = rec(txn_id=1_000_001)
        b = rec(txn_id=1_000_002)
        log.append(a)
        log.append(b)
        assert log.records_of_txn(1_000_001) == [a]
        assert log.records_of_txn(1_000_002) == [b]


class TestCrash:
    def test_crash_loses_everything(self):
        log = ClientLogManager(1)
        log.append(rec())
        log.crash()
        assert log.pending_count() == 0
        assert log.records_of_txn(1_000_001) == []
        assert log.local_max_lsn == 0
