"""Tests for the seeded scale-out workload (repro.workload.scaleout)."""

import hashlib

from repro.cluster import ClusterConfig, build_cluster
from repro.workload.scaleout import (
    HIGH_SHARING,
    LOW_SHARING,
    ScaleoutConfig,
    build_scaleout_scripts,
    populate_scaleout,
    run_scaleout,
)


def build_complex(n_instances=4):
    return build_cluster(ClusterConfig(
        n_instances=n_instances, lock_shards=1, redo_parallelism=1,
        n_data_pages=256))


def script_fingerprint(scripts):
    return [
        (s.system_index,
         [(op.kind, op.page_id, op.slot, op.payload) for op in s.ops])
        for s in scripts
    ]


def fake_handles(config, n_systems):
    hot = [(1000 + i, 0) for i in range(config.n_hot_pages)]
    private = {
        index: [(2000 + index * 100 + p, 0)
                for p in range(config.pages_per_instance)]
        for index in range(n_systems)
    }
    return hot, private


class TestScriptGeneration:
    def test_scripts_are_deterministic(self):
        config = ScaleoutConfig(seed=21)
        hot, private = fake_handles(config, 4)
        a = build_scaleout_scripts(config, 4, hot, private)
        b = build_scaleout_scripts(config, 4, hot, private)
        assert script_fingerprint(a) == script_fingerprint(b)

    def test_seed_changes_scripts(self):
        config = ScaleoutConfig(seed=21)
        hot, private = fake_handles(config, 4)
        a = build_scaleout_scripts(config, 4, hot, private)
        b = build_scaleout_scripts(
            ScaleoutConfig(seed=22), 4, hot, private)
        assert script_fingerprint(a) != script_fingerprint(b)

    def test_round_robin_placement(self):
        config = ScaleoutConfig(n_transactions=12)
        hot, private = fake_handles(config, 4)
        scripts = build_scaleout_scripts(config, 4, hot, private)
        assert [s.system_index for s in scripts] == [
            t % 4 for t in range(12)]

    def test_sharing_ratio_drives_hot_page_traffic(self):
        def hot_fraction(config):
            hot, private = fake_handles(config, 4)
            hot_pages = {page_id for page_id, _ in hot}
            scripts = build_scaleout_scripts(config, 4, hot, private)
            ops = [op for s in scripts for op in s.ops]
            return sum(
                1 for op in ops if op.page_id in hot_pages) / len(ops)

        low = hot_fraction(LOW_SHARING)
        high = hot_fraction(HIGH_SHARING)
        assert low < 0.15
        assert high > 0.5
        assert high > low

    def test_private_ops_stay_on_own_slice(self):
        config = ScaleoutConfig(n_transactions=16)
        hot, private = fake_handles(config, 4)
        hot_pages = {page_id for page_id, _ in hot}
        scripts = build_scaleout_scripts(config, 4, hot, private)
        for script in scripts:
            own = {page_id for page_id, _ in private[script.system_index]}
            for op in script.ops:
                assert op.page_id in hot_pages or op.page_id in own


class TestPopulate:
    def test_populate_creates_hot_set_and_private_slices(self):
        sd = build_complex(4)
        config = ScaleoutConfig()
        hot, private = populate_scaleout(sd, config)
        assert len(hot) == config.n_hot_pages * config.records_per_page
        assert set(private) == {0, 1, 2, 3}
        expected = config.pages_per_instance * config.records_per_page
        for handles in private.values():
            assert len(handles) == expected
        all_pages = {page_id for page_id, _ in hot}
        for handles in private.values():
            slice_pages = {page_id for page_id, _ in handles}
            assert not (all_pages & slice_pages)
            all_pages |= slice_pages


class TestEndToEnd:
    def test_run_is_reproducible_across_complexes(self):
        def one_run():
            sd = build_complex(4)
            result = run_scaleout(sd, LOW_SHARING)
            digest = hashlib.sha256()
            for page_id in sorted(sd.disk._pages):
                digest.update(sd.disk._pages[page_id])
            return result, digest.hexdigest()

        result_a, disk_a = one_run()
        result_b, disk_b = one_run()
        assert result_a == result_b
        assert disk_a == disk_b
        assert result_a.committed > 0

    def test_high_sharing_contends_more(self):
        low = run_scaleout(build_complex(4), LOW_SHARING)
        high = run_scaleout(build_complex(4), HIGH_SHARING)
        assert low.committed > 0 and high.committed > 0
        assert (high.lock_retries + high.aborted_deadlock
                >= low.lock_retries + low.aborted_deadlock)
