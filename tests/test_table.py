"""Tests for segmented tables."""

import pytest

from repro import SDComplex
from repro.access.table import SegmentedTable
from repro.common.errors import ReproError


@pytest.fixture
def env():
    sd = SDComplex(n_data_pages=512)
    s1 = sd.add_instance(1)
    return sd, s1


class TestRows:
    def test_insert_and_read(self, env):
        sd, s1 = env
        table = SegmentedTable("t")
        txn = s1.begin()
        row_id = table.insert_row(s1, txn, b"hello")
        s1.commit(txn)
        txn = s1.begin()
        assert table.read_row(s1, txn, row_id) == b"hello"
        s1.commit(txn)

    def test_update_and_delete(self, env):
        sd, s1 = env
        table = SegmentedTable("t")
        txn = s1.begin()
        row_id = table.insert_row(s1, txn, b"a")
        table.update_row(s1, txn, row_id, b"b")
        s1.commit(txn)
        txn = s1.begin()
        assert table.read_row(s1, txn, row_id) == b"b"
        table.delete_row(s1, txn, row_id)
        s1.commit(txn)
        txn = s1.begin()
        assert table.read_row(s1, txn, row_id) is None
        s1.commit(txn)

    def test_grows_by_segments(self, env):
        sd, s1 = env
        table = SegmentedTable("t", segment_pages=4)
        txn = s1.begin()
        table.insert_row(s1, txn, b"x")
        s1.commit(txn)
        assert len(table.pages) == 4

    def test_fills_many_pages(self, env):
        sd, s1 = env
        table = SegmentedTable("t", segment_pages=2)
        big = b"z" * 900
        txn = s1.begin()
        rows = [table.insert_row(s1, txn, big) for _ in range(20)]
        s1.commit(txn)
        assert len({page for page, _ in rows}) > 1
        txn = s1.begin()
        assert table.row_count(s1, txn) == 20
        s1.commit(txn)

    def test_scan(self, env):
        sd, s1 = env
        table = SegmentedTable("t")
        txn = s1.begin()
        payloads = {b"a", b"b", b"c"}
        for payload in sorted(payloads):
            table.insert_row(s1, txn, payload)
        s1.commit(txn)
        txn = s1.begin()
        assert {p for _, p in table.scan(s1, txn)} == payloads
        s1.commit(txn)

    def test_foreign_page_rejected(self, env):
        sd, s1 = env
        table = SegmentedTable("t")
        txn = s1.begin()
        table.insert_row(s1, txn, b"x")
        with pytest.raises(ReproError):
            table.read_row(s1, txn, (9999, 0))
        s1.commit(txn)


class TestMassDelete:
    def test_mass_delete_empties_table(self, env):
        sd, s1 = env
        table = SegmentedTable("t", segment_pages=8)
        txn = s1.begin()
        for i in range(30):
            table.insert_row(s1, txn, b"row%02d" % i)
        s1.commit(txn)
        s1.pool.flush_all()
        reads_before = sd.stats.get("disk.page_reads")
        txn = s1.begin()
        records = table.mass_delete(s1, txn)
        s1.commit(txn)
        assert records >= 1
        assert sd.stats.get("disk.page_reads") == reads_before
        txn = s1.begin()
        assert table.row_count(s1, txn) == 0
        s1.commit(txn)

    def test_mass_delete_then_reuse(self, env):
        sd, s1 = env
        table = SegmentedTable("t")
        txn = s1.begin()
        table.insert_row(s1, txn, b"old")
        s1.commit(txn)
        txn = s1.begin()
        table.mass_delete(s1, txn)
        row_id = table.insert_row(s1, txn, b"new")   # reallocates pages
        s1.commit(txn)
        txn = s1.begin()
        assert table.read_row(s1, txn, row_id) == b"new"
        s1.commit(txn)

    def test_empty_table_mass_delete(self, env):
        sd, s1 = env
        table = SegmentedTable("t")
        txn = s1.begin()
        assert table.mass_delete(s1, txn) == 0
        s1.commit(txn)

    def test_mass_delete_rollback_restores_pages(self, env):
        sd, s1 = env
        table = SegmentedTable("t")
        txn = s1.begin()
        row_id = table.insert_row(s1, txn, b"keep")
        s1.commit(txn)
        pages = list(table.pages)
        txn = s1.begin()
        table.mass_delete(s1, txn)
        s1.rollback(txn)
        table.pages = pages  # catalog rollback (in-memory descriptor)
        txn = s1.begin()
        assert table.read_row(s1, txn, row_id) == b"keep"
        s1.commit(txn)

    def test_tables_isolated(self, env):
        """Segmentation: mass delete of one table leaves another's rows
        untouched (pages never intermix)."""
        sd, s1 = env
        t1 = SegmentedTable("one")
        t2 = SegmentedTable("two")
        txn = s1.begin()
        t1.insert_row(s1, txn, b"gone")
        keep = t2.insert_row(s1, txn, b"kept")
        s1.commit(txn)
        txn = s1.begin()
        t1.mass_delete(s1, txn)
        s1.commit(txn)
        txn = s1.begin()
        assert t2.read_row(s1, txn, keep) == b"kept"
        s1.commit(txn)
