"""Guard rails around the benchmarks/ directory.

Tier-1 (`pytest` with no arguments) must never collect benchmarks/,
and collecting a bench module *without* pytest-benchmark must produce
clean skips — not collection errors — so environments lacking the
optional plugin can still run everything else.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def test_tier1_testpaths_exclude_benchmarks():
    pyproject = (REPO / "pyproject.toml").read_text()
    assert 'testpaths = ["tests"]' in pyproject


def test_bench_without_plugin_skips_cleanly():
    proc = subprocess.run(
        [sys.executable, "-m", "pytest",
         str(REPO / "benchmarks" / "bench_a3_group_commit.py"),
         "-rs", "-p", "no:benchmark", "-p", "no:cacheprovider"],
        capture_output=True, text=True, cwd=str(REPO),
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "SKIPPED" in proc.stdout
    assert "pytest-benchmark not installed" in proc.stdout
    assert "error" not in proc.stdout.lower()
