"""Tests for fuzzy checkpoints."""

from repro import SDComplex
from repro.recovery.checkpoint import take_checkpoint
from repro.wal.records import CheckpointData, RecordKind


def one_instance_complex():
    complex_ = SDComplex(n_data_pages=128)
    return complex_, complex_.add_instance(1)


class TestCheckpoint:
    def test_writes_begin_end_pair(self):
        complex_, s1 = one_instance_complex()
        take_checkpoint(s1)
        kinds = [r.kind for _, r in s1.log.scan()]
        assert kinds[-2:] == [RecordKind.BEGIN_CHECKPOINT,
                              RecordKind.END_CHECKPOINT]

    def test_master_record_points_at_begin(self):
        complex_, s1 = one_instance_complex()
        addr = take_checkpoint(s1)
        assert s1.log.master_record_offset == addr.offset
        record = s1.log.read_record_at(addr.offset)
        assert record.kind == RecordKind.BEGIN_CHECKPOINT

    def test_checkpoint_is_forced(self):
        complex_, s1 = one_instance_complex()
        take_checkpoint(s1)
        assert s1.log.flushed_offset == s1.log.end_offset

    def test_captures_dirty_pages_with_rec_addr(self):
        complex_, s1 = one_instance_complex()
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        s1.insert(txn, page_id, b"x")
        take_checkpoint(s1)
        end_record = [r for _, r in s1.log.scan()
                      if r.kind == RecordKind.END_CHECKPOINT][-1]
        data = CheckpointData.from_bytes(end_record.extra)
        assert page_id in data.dirty_pages
        rec_lsn, rec_addr = data.dirty_pages[page_id]
        assert rec_lsn == s1.pool.bcb(page_id).rec_lsn
        assert rec_addr == s1.pool.bcb(page_id).rec_addr
        s1.commit(txn)

    def test_captures_active_update_transactions_only(self):
        complex_, s1 = one_instance_complex()
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        s1.insert(txn, page_id, b"x")
        reader = s1.begin()  # never logs
        take_checkpoint(s1)
        end_record = [r for _, r in s1.log.scan()
                      if r.kind == RecordKind.END_CHECKPOINT][-1]
        data = CheckpointData.from_bytes(end_record.extra)
        assert txn.txn_id in data.transactions
        assert reader.txn_id not in data.transactions
        s1.commit(txn)
        s1.commit(reader)

    def test_clean_checkpoint_has_empty_tables(self):
        complex_, s1 = one_instance_complex()
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        s1.insert(txn, page_id, b"x")
        s1.commit(txn)
        s1.pool.flush_all()
        take_checkpoint(s1)
        end_record = [r for _, r in s1.log.scan()
                      if r.kind == RecordKind.END_CHECKPOINT][-1]
        data = CheckpointData.from_bytes(end_record.extra)
        assert data.dirty_pages == {}
        assert data.transactions == {}

    def test_survives_crash(self):
        complex_, s1 = one_instance_complex()
        take_checkpoint(s1)
        master = s1.log.master_record_offset
        s1.crash()
        assert s1.log.master_record_offset == master
        record = s1.log.read_record_at(master)
        assert record.kind == RecordKind.BEGIN_CHECKPOINT
