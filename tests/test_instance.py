"""Unit tests for DbmsInstance edge cases and error handling."""

import pytest

from repro import SDComplex
from repro.common.errors import LockWouldBlock, ReproError
from repro.storage.page import PageType
from repro.txn.transaction import TxnState


@pytest.fixture
def env():
    sd = SDComplex(n_data_pages=256)
    return sd, sd.add_instance(1), sd.add_instance(2)


def committed_row(instance, payload=b"v0"):
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    slot = instance.insert(txn, page_id, payload)
    instance.commit(txn)
    return page_id, slot


class TestTxnStateGuards:
    def test_ops_on_committed_txn_rejected(self, env):
        sd, s1, _ = env
        page_id, slot = committed_row(s1)
        txn = s1.begin()
        s1.commit(txn)
        with pytest.raises(ReproError):
            s1.update(txn, page_id, slot, b"late")

    def test_double_commit_rejected(self, env):
        sd, s1, _ = env
        txn = s1.begin()
        s1.commit(txn)
        with pytest.raises(ReproError):
            s1.commit(txn)

    def test_rollback_of_ended_txn_rejected(self, env):
        sd, s1, _ = env
        txn = s1.begin()
        s1.commit(txn)
        with pytest.raises(ReproError):
            s1.rollback(txn)

    def test_read_only_txn_commit_writes_no_update_records(self, env):
        sd, s1, _ = env
        page_id, slot = committed_row(s1)
        records_before = s1.log.record_count()
        txn = s1.begin()
        s1.read(txn, page_id, slot)
        s1.commit(txn)
        # Only COMMIT + END control records.
        assert s1.log.record_count() == records_before + 2

    def test_ops_on_crashed_system_rejected(self, env):
        sd, s1, _ = env
        committed_row(s1)
        sd.crash_instance(1)
        with pytest.raises(ReproError):
            s1.begin()
        sd.restart_instance(1)
        s1.begin()  # fine again


class TestRecordErrors:
    def test_update_empty_slot_rejected(self, env):
        sd, s1, _ = env
        page_id, slot = committed_row(s1)
        txn = s1.begin()
        s1.delete(txn, page_id, slot)
        with pytest.raises(ReproError):
            s1.update(txn, page_id, slot, b"x")
        s1.rollback(txn)

    def test_delete_empty_slot_rejected(self, env):
        sd, s1, _ = env
        page_id, slot = committed_row(s1)
        txn = s1.begin()
        s1.delete(txn, page_id, slot)
        with pytest.raises(ReproError):
            s1.delete(txn, page_id, slot)
        s1.rollback(txn)

    def test_blocked_insert_undoes_page_change(self, env):
        """If the record lock for a fresh insert blocks, the optimistic
        in-page insert is removed before the retry."""
        sd, s1, s2 = env
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        slot0 = s1.insert(txn, page_id, b"first")
        s1.commit(txn)
        # s2 takes an X lock on the *next* slot's lock name by
        # deleting and re-inserting... simpler: lock (page, 1) directly.
        from repro.locking.lock_manager import LockMode, record_lock
        blocker = s2.begin()
        sd.lock(s2, blocker.txn_id, record_lock(page_id, 1), LockMode.X)
        victim = s1.begin()
        with pytest.raises(LockWouldBlock):
            s1.insert(victim, page_id, b"second")
        page = s1.fix_page(page_id)
        try:
            assert page.read_record(1) is None  # optimistic insert undone
        finally:
            s1.unfix_page(page_id)
        s2.commit(blocker)
        slot = s1.insert(victim, page_id, b"second")   # retry succeeds
        assert slot == 1
        s1.commit(victim)


class TestAllocation:
    def test_exhausted_space_raises(self):
        sd = SDComplex(n_data_pages=4)
        s1 = sd.add_instance(1)
        txn = s1.begin()
        for _ in range(4):
            s1.allocate_page(txn)
        with pytest.raises(ReproError):
            s1.allocate_page(txn)
        s1.commit(txn)

    def test_allocation_rollback_frees_pages(self):
        sd = SDComplex(n_data_pages=4)
        s1 = sd.add_instance(1)
        txn = s1.begin()
        for _ in range(4):
            s1.allocate_page(txn)
        s1.rollback(txn)
        txn = s1.begin()
        assert s1.allocate_page(txn) is not None
        s1.commit(txn)

    def test_allocate_index_page_type(self, env):
        sd, s1, _ = env
        txn = s1.begin()
        page_id = s1.allocate_page(txn, PageType.INDEX)
        s1.commit(txn)
        page = s1.fix_page(page_id)
        try:
            assert page.page_type == PageType.INDEX
        finally:
            s1.unfix_page(page_id)

    def test_deallocate_unallocated_rejected(self, env):
        sd, s1, _ = env
        txn = s1.begin()
        unused = sd.space_map.data_start + 100
        with pytest.raises(ReproError):
            s1.deallocate_page(txn, unused)
        s1.rollback(txn)


class TestLockGranularityModes:
    def test_page_mode_serializes_whole_page(self):
        sd = SDComplex(n_data_pages=128)
        s1 = sd.add_instance(1, lock_granularity="page")
        s2 = sd.add_instance(2, lock_granularity="page")
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        a = s1.insert(txn, page_id, b"a")
        b = s1.insert(txn, page_id, b"b")
        s1.commit(txn)
        t1 = s1.begin()
        s1.update(t1, page_id, a, b"a1")
        t2 = s2.begin()
        with pytest.raises(LockWouldBlock):
            s2.update(t2, page_id, b, b"b1")   # different record, same page
        s1.commit(t1)
        s2.update(t2, page_id, b, b"b1")
        s2.commit(t2)

    def test_invalid_granularity_rejected(self):
        sd = SDComplex(n_data_pages=128)
        with pytest.raises(ValueError):
            sd.add_instance(1, lock_granularity="table")


class TestCommitLsnReadPath:
    def test_miss_takes_and_releases_lock(self, env):
        sd, s1, s2 = env
        page_id, slot = committed_row(s1)
        # An active update txn on the page forces a Commit_LSN miss.
        holder = s1.begin()
        other_slot = s1.insert(holder, page_id, b"other")
        reader = s2.begin()
        value = s2.read(reader, page_id, slot, use_commit_lsn=True)
        assert value == b"v0"
        from repro.common.stats import COMMIT_LSN_MISSES
        assert sd.stats.get(COMMIT_LSN_MISSES) >= 1
        # Degree-2: the S lock was released right after the read, so the
        # holder's later X upgrade on that record cannot be blocked.
        s1.update(holder, page_id, slot, b"h")
        s1.commit(holder)
        s2.commit(reader)

    def test_blocked_commit_lsn_read_on_locked_record(self, env):
        sd, s1, s2 = env
        page_id, slot = committed_row(s1)
        holder = s1.begin()
        s1.update(holder, page_id, slot, b"locked")
        reader = s2.begin()
        with pytest.raises(LockWouldBlock):
            s2.read(reader, page_id, slot, use_commit_lsn=True)
        s1.commit(holder)


class TestFillerAndClock:
    def test_write_filler_grows_log_and_lsn(self, env):
        sd, s1, _ = env
        before_bytes = s1.log.end_offset
        before_lsn = s1.log.local_max_lsn
        s1.write_filler(5, payload_bytes=10)
        assert s1.log.end_offset > before_bytes
        assert s1.log.local_max_lsn == before_lsn + 5

    def test_clocks_are_skewed_but_unused(self, env):
        sd, s1, s2 = env
        assert s1.clock.now() != s2.clock.now()
        # Recovery behaviour is identical regardless of clock values.
        s1.clock.tick(1000)
        page_id, slot = committed_row(s1, b"x")
        sd.crash_instance(1)
        sd.restart_instance(1)
        assert sd.disk.read_page(page_id).read_record(slot) == b"x"
