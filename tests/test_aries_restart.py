"""Tests for ARIES restart recovery of an SD instance.

These drive the full stack: engine operations, crash (losing buffers,
unforced log tail and volatile txn state), restart (analysis / redo /
undo with CLRs), and verify durability (I4) and atomicity (I5) against
the disk state.
"""

import pytest

from repro import SDComplex
from repro.recovery.checkpoint import take_checkpoint
from repro.wal.records import RecordKind


def fresh(n_instances=1):
    complex_ = SDComplex(n_data_pages=256)
    instances = [complex_.add_instance(i + 1) for i in range(n_instances)]
    return (complex_, *instances)


def committed_row(instance, payload=b"v1"):
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    slot = instance.insert(txn, page_id, payload)
    instance.commit(txn)
    return page_id, slot


class TestRedo:
    def test_committed_update_lost_from_buffer_is_redone(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"keep-me")
        assert complex_.disk.page_lsn_on_disk(page_id) is None  # no-force
        complex_.crash_instance(1)
        summary = complex_.restart_instance(1)
        assert summary.records_redone > 0
        assert complex_.disk.read_page(page_id).read_record(slot) == b"keep-me"

    def test_update_already_on_disk_not_redone(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1)
        s1.pool.flush_all()
        complex_.crash_instance(1)
        summary = complex_.restart_instance(1)
        assert summary.records_redone == 0

    def test_multiple_updates_same_page_replayed_in_order(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"v1")
        for value in (b"v2", b"v3", b"v4"):
            txn = s1.begin()
            s1.update(txn, page_id, slot, value)
            s1.commit(txn)
        complex_.crash_instance(1)
        complex_.restart_instance(1)
        assert complex_.disk.read_page(page_id).read_record(slot) == b"v4"

    def test_unforced_committed_tail_is_gone_but_forced_survives(self):
        """Only what reached stable storage can be recovered; commit
        forces, so commits always survive."""
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"committed")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"never-committed")
        # no commit -> update record sits in the unforced tail
        complex_.crash_instance(1)
        complex_.restart_instance(1)
        assert complex_.disk.read_page(page_id).read_record(slot) == b"committed"

    def test_restart_is_idempotent(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"v")
        complex_.crash_instance(1)
        complex_.restart_instance(1)
        complex_.crash_instance(1)
        summary = complex_.restart_instance(1)
        assert complex_.disk.read_page(page_id).read_record(slot) == b"v"
        assert summary.loser_transactions == 0


class TestUndo:
    def test_stolen_uncommitted_update_rolled_back(self):
        """Steal policy: a dirty uncommitted page written to disk must
        be undone at restart (invariant I5)."""
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"good")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"BAD")
        s1.pool.write_page(page_id)          # steal: dirty page to disk
        s1.log.force()                       # records are stable, txn is not
        take_checkpoint(s1)
        complex_.crash_instance(1)
        summary = complex_.restart_instance(1)
        assert summary.loser_transactions == 1
        assert summary.clrs_written >= 1
        assert complex_.disk.read_page(page_id).read_record(slot) == b"good"

    def test_losers_get_end_records(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1)
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"BAD")
        s1.log.force()
        complex_.crash_instance(1)
        complex_.restart_instance(1)
        ends = [r for _, r in s1.log.scan()
                if r.kind == RecordKind.END and r.txn_id == txn.txn_id]
        assert len(ends) == 1

    def test_multi_update_loser_fully_undone(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"base")
        txn = s1.begin()
        slot2 = s1.insert(txn, page_id, b"extra")
        s1.update(txn, page_id, slot, b"changed")
        s1.pool.write_page(page_id)
        s1.log.force()
        complex_.crash_instance(1)
        complex_.restart_instance(1)
        page = complex_.disk.read_page(page_id)
        assert page.read_record(slot) == b"base"
        assert page.read_record(slot2) is None

    def test_interleaved_winner_and_loser(self):
        complex_, s1 = fresh()
        page_id, slot_a = committed_row(s1, b"a0")
        txn_b = s1.begin()
        slot_b = s1.insert(txn_b, page_id, b"b0")
        txn_a = s1.begin()
        s1.update(txn_a, page_id, slot_a, b"a1")
        s1.commit(txn_a)                     # winner
        s1.pool.write_page(page_id)          # loser's insert stolen too
        complex_.crash_instance(1)
        complex_.restart_instance(1)
        page = complex_.disk.read_page(page_id)
        assert page.read_record(slot_a) == b"a1"      # winner kept
        assert page.read_record(slot_b) is None       # loser undone

    def test_crash_during_restart_recovers_cleanly(self):
        """Repeating history + CLRs: a second crash mid-recovery must
        not double-undo (invariant I5 under repeated failures)."""
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"good")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"BAD")
        s1.pool.write_page(page_id)
        s1.log.force()
        complex_.crash_instance(1)
        complex_.restart_instance(1)
        # Crash immediately after recovery completed and flushed; then
        # run recovery again — the CLR chain must be honoured.
        complex_.crash_instance(1)
        summary = complex_.restart_instance(1)
        page = complex_.disk.read_page(page_id)
        assert page.read_record(slot) == b"good"
        assert summary.loser_transactions == 0


class TestCheckpointBounding:
    def test_checkpoint_bounds_redo_scan(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1)
        s1.pool.flush_all()
        take_checkpoint(s1)
        boundary = s1.log.master_record_offset
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"post-ckpt")
        s1.commit(txn)
        complex_.crash_instance(1)
        summary = complex_.restart_instance(1)
        assert summary.redo_scan_start >= boundary
        assert complex_.disk.read_page(page_id).read_record(slot) == b"post-ckpt"

    def test_dirty_page_in_checkpoint_extends_scan_back(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1)       # page still dirty
        rec_addr = s1.pool.bcb(page_id).rec_addr
        take_checkpoint(s1)
        complex_.crash_instance(1)
        summary = complex_.restart_instance(1)
        assert summary.redo_scan_start <= rec_addr
        assert complex_.disk.read_page(page_id).read_record(slot) is not None

    def test_txn_spanning_checkpoint_is_undone(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"pre")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"in-flight")
        take_checkpoint(s1)                      # txn captured in TT
        s1.pool.write_page(page_id)
        complex_.crash_instance(1)
        summary = complex_.restart_instance(1)
        assert summary.loser_transactions == 1
        assert complex_.disk.read_page(page_id).read_record(slot) == b"pre"


class TestRollback:
    def test_explicit_rollback_restores_state(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"orig")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"oops")
        s1.rollback(txn)
        read_txn = s1.begin()
        assert s1.read(read_txn, page_id, slot) == b"orig"
        s1.commit(read_txn)

    def test_rollback_of_insert_deletes(self):
        complex_, s1 = fresh()
        page_id, _ = committed_row(s1)
        txn = s1.begin()
        slot = s1.insert(txn, page_id, b"temp")
        s1.rollback(txn)
        page = s1.pool.fix(page_id)
        assert page.read_record(slot) is None
        s1.pool.unfix(page_id)

    def test_partial_rollback_to_savepoint(self):
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"v0")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"v1")
        s1.set_savepoint(txn, "sp")
        s1.update(txn, page_id, slot, b"v2")
        s1.rollback(txn, to_savepoint="sp")
        s1.commit(txn)
        read_txn = s1.begin()
        assert s1.read(read_txn, page_id, slot) == b"v1"
        s1.commit(read_txn)

    def test_rollback_survives_crash(self):
        """CLRs make a completed rollback durable like a commit is."""
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"orig")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"oops")
        s1.pool.write_page(page_id)   # stolen with the bad value
        s1.rollback(txn)
        s1.pool.write_page(page_id)   # and again with the rollback applied
        complex_.crash_instance(1)
        complex_.restart_instance(1)
        assert complex_.disk.read_page(page_id).read_record(slot) == b"orig"

    def test_rollback_deallocation_restores_smp(self):
        complex_, s1 = fresh()
        txn0 = s1.begin()
        page_id = s1.allocate_page(txn0)
        s1.commit(txn0)
        txn = s1.begin()
        s1.deallocate_page(txn, page_id)
        assert not s1.is_allocated(page_id)
        s1.rollback(txn)
        assert s1.is_allocated(page_id)


class TestCrashDuringRollback:
    def test_partially_rolled_back_txn_resumes_from_clr_chain(self):
        """Crash in the middle of an explicit rollback: restart undo
        must resume where the CLR chain left off, never compensating
        the same update twice."""
        complex_, s1 = fresh()
        page_id, slot_a = committed_row(s1, b"a0")
        txn = s1.begin()
        slot_b = s1.insert(txn, page_id, b"b-temp")
        s1.update(txn, page_id, slot_a, b"a-temp")
        slot_c = s1.insert(txn, page_id, b"c-temp")
        # Begin rolling back by hand: undo only the newest update (the
        # insert of c), as a crash mid-rollback would leave it.
        from repro.txn.transaction import TxnState
        txn.state = TxnState.ABORTING
        newest = txn.undo_entries[-1]
        record = s1.log.read_record_at(newest.offset)
        s1._undo_one(txn, record)
        s1.pool.write_page(page_id)   # partial rollback stolen to disk
        s1.log.force()
        complex_.crash_instance(1)
        summary = complex_.restart_instance(1)
        assert summary.loser_transactions == 1
        # Exactly the two remaining updates were compensated.
        assert summary.clrs_written == 2
        page = complex_.disk.read_page(page_id)
        assert page.read_record(slot_a) == b"a0"
        assert page.read_record(slot_b) is None
        assert page.read_record(slot_c) is None

    def test_repeated_crashes_during_recovery_converge(self):
        """Crash -> restart -> crash -> restart ... always lands on the
        same committed state, with no CLR inflation."""
        complex_, s1 = fresh()
        page_id, slot = committed_row(s1, b"stable")
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"doomed")
        s1.pool.write_page(page_id)
        s1.log.force()
        clr_counts = []
        for _ in range(3):
            complex_.crash_instance(1)
            summary = complex_.restart_instance(1)
            clr_counts.append(summary.clrs_written)
        assert clr_counts[0] >= 1
        assert clr_counts[1] == 0 and clr_counts[2] == 0
        assert complex_.disk.read_page(page_id).read_record(slot) == b"stable"
