"""Tests for repro.obs.metrics and its StatsRegistry interplay.

The histogram edge-semantics tests pin down the contract the docstring
promises: ``le`` (inclusive) upper edges, a value equal to an edge
lands in exactly one bucket, negatives are rejected.  The diff/reset
tests pin the interaction with the StatsRegistry base the experiments
already rely on.
"""

import pytest

from repro.common.stats import StatsRegistry
from repro.obs.metrics import (
    DEFAULT_EDGES,
    Histogram,
    MetricsRegistry,
    labeled_name,
)


# ----------------------------------------------------------------------
# histogram bucket semantics
# ----------------------------------------------------------------------
class TestHistogramEdges:
    def test_boundary_value_lands_in_exactly_one_bucket(self):
        hist = Histogram("h", edges=(1, 5, 10))
        hist.observe(5)  # exactly on an edge
        assert sum(hist.counts) == 1
        assert hist.counts[1] == 1  # the <=5 bucket, not the <=10 one

    def test_every_edge_value_is_inclusive(self):
        hist = Histogram("h", edges=(1, 5, 10))
        for edge in (1, 5, 10):
            hist.observe(edge)
        assert hist.counts == [1, 1, 1, 0]

    def test_between_edges_goes_up(self):
        hist = Histogram("h", edges=(1, 5, 10))
        hist.observe(2)
        assert hist.counts == [0, 1, 0, 0]

    def test_overflow_bucket(self):
        hist = Histogram("h", edges=(1, 5, 10))
        hist.observe(11)
        assert hist.counts == [0, 0, 0, 1]
        assert hist.bucket_label(3) == ">10"

    def test_zero_goes_in_first_bucket(self):
        hist = Histogram("h", edges=(1, 5))
        hist.observe(0)
        assert hist.counts[0] == 1

    def test_negative_rejected(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.observe(-1)
        assert hist.total == 0

    def test_edges_must_be_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(5, 1))
        with pytest.raises(ValueError):
            Histogram("h", edges=(1, 1))
        with pytest.raises(ValueError):
            Histogram("h", edges=())
        with pytest.raises(ValueError):
            Histogram("h", edges=(-1, 5))

    def test_mean_and_snapshot(self):
        hist = Histogram("h", edges=(10,))
        hist.observe(4)
        hist.observe(6)
        assert hist.mean() == 5.0
        snap = hist.snapshot()
        assert snap["total"] == 2
        assert snap["sum"] == 10.0
        assert snap["edges"] == [10.0]

    def test_default_edges_are_increasing(self):
        assert list(DEFAULT_EDGES) == sorted(set(DEFAULT_EDGES))


# ----------------------------------------------------------------------
# labeled counters
# ----------------------------------------------------------------------
class TestLabeledCounters:
    def test_labels_sorted_into_canonical_name(self):
        assert labeled_name("m", {"b": 1, "a": "x"}) == "m{a=x,b=1}"
        assert labeled_name("m", {}) == "m"

    def test_incr_and_get_labeled(self):
        metrics = MetricsRegistry()
        metrics.incr_labeled("trace.events", kind="log.append")
        metrics.incr_labeled("trace.events", kind="log.append")
        metrics.incr_labeled("trace.events", kind="net.msg")
        assert metrics.get_labeled("trace.events", kind="log.append") == 2
        assert metrics.get_labeled("trace.events", kind="net.msg") == 1
        assert metrics.get("trace.events{kind=log.append}") == 2

    def test_labeled_counters_appear_in_snapshot(self):
        metrics = MetricsRegistry()
        metrics.incr_labeled("m", kind="a")
        assert "m{kind=a}" in metrics.snapshot()


# ----------------------------------------------------------------------
# registry-level behaviour: diff, reset, drop-in compatibility
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_is_a_stats_registry(self):
        assert isinstance(MetricsRegistry(), StatsRegistry)

    def test_diff_sees_labeled_counters(self):
        metrics = MetricsRegistry()
        metrics.incr_labeled("m", kind="a")
        before = metrics.snapshot()
        metrics.incr_labeled("m", 4, kind="a")
        metrics.incr("plain")
        delta = metrics.diff(before)
        assert delta == {"m{kind=a}": 4, "plain": 1}

    def test_diff_after_reset_reports_fresh_counts(self):
        metrics = MetricsRegistry()
        metrics.incr("x", 7)
        before = metrics.snapshot()
        metrics.reset()
        metrics.incr("x", 2)
        # After a reset the old snapshot must not poison the diff:
        # diff against a *new* snapshot is the supported pattern.
        assert metrics.get("x") == 2
        assert metrics.diff(metrics.snapshot()) == {}
        assert before["x"] == 7  # the old snapshot is untouched

    def test_reset_zeroes_counters_and_drops_histograms(self):
        metrics = MetricsRegistry()
        metrics.incr("c")
        metrics.observe("h", 3)
        metrics.reset()
        assert metrics.get("c") == 0
        assert metrics.histograms() == {}

    def test_histogram_created_once_and_shared(self):
        metrics = MetricsRegistry()
        metrics.observe("h", 1)
        metrics.observe("h", 2)
        assert metrics.histograms()["h"].total == 2

    def test_histogram_edge_mismatch_rejected(self):
        metrics = MetricsRegistry()
        metrics.histogram("h", edges=(1, 2))
        with pytest.raises(ValueError):
            metrics.histogram("h", edges=(1, 3))
        # Same edges are fine (idempotent).
        metrics.histogram("h", edges=(1, 2))

    def test_observe_negative_propagates(self):
        metrics = MetricsRegistry()
        with pytest.raises(ValueError):
            metrics.observe("h", -5)

    def test_snapshot_all_round_trips_to_json(self):
        import json

        metrics = MetricsRegistry()
        metrics.incr("c", 2)
        metrics.observe("h", 7)
        snap = json.loads(json.dumps(metrics.snapshot_all()))
        assert snap["counters"]["c"] == 2
        assert snap["histograms"]["h"]["total"] == 1

    def test_subsystem_accepts_metrics_registry(self):
        """Drop-in through the existing ``stats=`` seam."""
        from repro.sd.complex import SDComplex

        metrics = MetricsRegistry()
        complex_ = SDComplex(n_data_pages=64, stats=metrics)
        instance = complex_.add_instance(1)
        txn = instance.begin()
        page = instance.allocate_page(txn)
        instance.insert(txn, page, b"v")
        instance.commit(txn)
        assert metrics.get("log.records_written") > 0
