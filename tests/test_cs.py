"""Integration tests for the client-server architecture."""

import pytest

from repro import CsSystem
from repro.common.errors import LockWouldBlock, ProtocolError, ReproError
from repro.wal.records import LogRecord, RecordKind


def committed_row(client, payload=b"v0"):
    txn = client.begin()
    page_id = client.allocate_page(txn)
    slot = client.insert(txn, page_id, payload)
    client.commit(txn)
    return page_id, slot


class TestBasicOperation:
    def test_insert_read_roundtrip(self, cs):
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1, b"hello")
        txn = c1.begin()
        assert c1.read(txn, page_id, slot) == b"hello"
        c1.commit(txn)

    def test_commit_ships_log_records(self, cs):
        c1 = cs.clients[1]
        committed_row(c1)
        assert c1.log.pending_count() == 0
        kinds = [r.kind for _, r in cs.server.log.scan()]
        assert RecordKind.COMMIT in kinds

    def test_commit_forces_server_log(self, cs):
        c1 = cs.clients[1]
        committed_row(c1)
        assert cs.server.log.flushed_offset == cs.server.log.end_offset

    def test_client_lsns_assigned_locally(self, cs):
        """No server round trip per log record: records carry LSNs the
        client assigned before shipping."""
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1)
        client_records = [r for _, r in cs.server.log.scan()
                          if r.system_id == 1]
        lsns = [r.lsn for r in client_records]
        assert lsns == sorted(lsns)
        assert len(lsns) >= 3  # SMP update, format... insert, commit, end

    def test_cross_client_page_sharing(self, cs):
        c1, c2 = cs.clients[1], cs.clients[2]
        page_id, slot = committed_row(c1, b"from-c1")
        txn = c2.begin()
        assert c2.read(txn, page_id, slot) == b"from-c1"
        c2.commit(txn)

    def test_cross_client_update_recalls_dirty_page(self, cs):
        c1, c2 = cs.clients[1], cs.clients[2]
        page_id, slot = committed_row(c1, b"one")
        assert cs.server._writer.get(page_id) == 1
        txn = c2.begin()
        c2.update(txn, page_id, slot, b"two")
        c2.commit(txn)
        assert cs.server._writer.get(page_id) == 2
        assert page_id not in c1.cache
        txn = c1.begin()
        assert c1.read(txn, page_id, slot) == b"two"
        c1.commit(txn)

    def test_server_log_interleaves_client_streams(self, cs):
        """Section 3.2.2: successive server-log records may not have
        increasing LSNs — per-client streams do."""
        c1, c2 = cs.clients[1], cs.clients[2]
        committed_row(c1)
        committed_row(c2)
        committed_row(c1)
        per_client = {1: [], 2: []}
        for _, record in cs.server.log.scan():
            if record.system_id in per_client and record.lsn:
                per_client[record.system_id].append(record.lsn)
        for lsns in per_client.values():
            assert lsns == sorted(lsns)

    def test_per_page_lsns_increase_across_clients(self, cs):
        c1, c2 = cs.clients[1], cs.clients[2]
        page_id, slot = committed_row(c1)
        values = [b"a", b"b", b"c", b"d"]
        for i, value in enumerate(values):
            client = (c1, c2)[i % 2]
            txn = client.begin()
            client.update(txn, page_id, slot, value)
            client.commit(txn)
        lsns = [r.lsn for _, r in cs.server.log.scan()
                if r.page_id == page_id]
        assert lsns == sorted(lsns)
        assert len(lsns) == len(set(lsns))


class TestRollback:
    def test_client_rollback_restores(self, cs):
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1, b"orig")
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"oops")
        c1.rollback(txn)
        txn = c1.begin()
        assert c1.read(txn, page_id, slot) == b"orig"
        c1.commit(txn)

    def test_rollback_works_after_records_shipped(self, cs):
        """Undo uses the client's retained copies even after the
        originals went to the server (Section 3.1)."""
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1, b"orig")
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"shipped")
        c1.send_page_back(page_id)   # ships records + page
        c1.rollback(txn)
        txn = c1.begin()
        assert c1.read(txn, page_id, slot) == b"orig"
        c1.commit(txn)

    def test_partial_rollback(self, cs):
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1, b"v0")
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"v1")
        c1.set_savepoint(txn, "sp")
        c1.update(txn, page_id, slot, b"v2")
        c1.rollback(txn, to_savepoint="sp")
        c1.commit(txn)
        txn = c1.begin()
        assert c1.read(txn, page_id, slot) == b"v1"
        c1.commit(txn)


class TestClientFailure:
    def test_committed_data_in_lost_cache_recovered(self, cs):
        """Client commits (records shipped+forced) but the dirty page
        never left the cache; server redo rebuilds it."""
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1, b"committed")
        assert page_id in c1.cache
        cs.crash_client(1)
        summary = cs.recover_client(1)
        assert summary.records_redone > 0
        cs.server.pool.flush_all()
        assert cs.server.disk.read_page(page_id).read_record(slot) == b"committed"

    def test_uncommitted_shipped_updates_undone(self, cs):
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1, b"good")
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"BAD")
        c1.send_page_back(page_id)       # dirty page + records at server
        cs.crash_client(1)
        summary = cs.recover_client(1)
        assert summary.loser_transactions == 1
        assert summary.clrs_written >= 1
        cs.server.pool.flush_all()
        assert cs.server.disk.read_page(page_id).read_record(slot) == b"good"

    def test_unshipped_updates_simply_vanish(self, cs):
        """Protocol guarantee: unshipped records can only cover pages
        that never reached the server — consistent loss."""
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1, b"good")
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"BAD")   # buffered only
        cs.crash_client(1)
        summary = cs.recover_client(1)
        assert summary.loser_transactions == 0
        cs.server.pool.flush_all()
        assert cs.server.disk.read_page(page_id).read_record(slot) == b"good"

    def test_client_checkpoint_bounds_recovery(self, cs):
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1)
        c1.flush_all()   # data page AND the dirty SMP page go back
        c1.checkpoint()
        cs.crash_client(1)
        summary = cs.recover_client(1)
        assert summary.records_scanned == 0   # nothing after checkpoint

    def test_locks_retained_until_recovery(self, cs):
        c1, c2 = cs.clients[1], cs.clients[2]
        page_id, slot = committed_row(c1, b"good")
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"BAD")
        c1.send_page_back(page_id)
        cs.crash_client(1)
        t2 = c2.begin()
        with pytest.raises((LockWouldBlock, ProtocolError)):
            c2.update(t2, page_id, slot, b"blocked")
        cs.recover_client(1)
        c2.update(t2, page_id, slot, b"ok")
        c2.commit(t2)

    def test_dirty_page_of_crashed_client_fenced(self, cs):
        c1, c2 = cs.clients[1], cs.clients[2]
        page_id, slot = committed_row(c1)
        cs.crash_client(1)
        txn = c2.begin()
        with pytest.raises((ProtocolError, LockWouldBlock)):
            c2.update(txn, page_id, slot, b"x")
        cs.recover_client(1)
        c2.update(txn, page_id, slot, b"x")
        c2.commit(txn)

    def test_failed_client_can_rejoin_and_work(self, cs):
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1, b"before")
        cs.crash_client(1)
        cs.recover_client(1)
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"after")
        c1.commit(txn)
        txn = c1.begin()
        assert c1.read(txn, page_id, slot) == b"after"
        c1.commit(txn)


class TestServerFailure:
    def test_server_restart_recovers_committed_data(self, cs):
        c1, c2 = cs.clients[1], cs.clients[2]
        row1 = committed_row(c1, b"one")
        row2 = committed_row(c2, b"two")
        # Recall pages to the server so its buffer holds them dirty.
        c1.flush_all()
        c2.flush_all()
        cs.server.take_checkpoint()
        cs.crash_server()
        assert c1.crashed and c2.crashed
        cs.restart_server()
        for (page_id, slot), value in ((row1, b"one"), (row2, b"two")):
            assert cs.server.disk.read_page(page_id).read_record(slot) == value

    def test_server_restart_undoes_inflight_txns(self, cs):
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1, b"good")
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"BAD")
        c1.send_page_back(page_id)
        cs.server.pool.flush_all()    # stolen to disk
        cs.crash_server()
        summary = cs.restart_server()
        assert summary.loser_transactions == 1
        assert cs.server.disk.read_page(page_id).read_record(slot) == b"good"

    def test_operations_rejected_while_server_down(self, cs):
        c1 = cs.clients[1]
        committed_row(c1)
        cs.crash_server()
        with pytest.raises(ReproError):
            c1.begin()


class TestRecLsnMapping:
    def test_rec_lsn_maps_into_containing_batch(self, cs):
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1)
        # Several ship batches.
        for value in (b"a", b"b"):
            txn = c1.begin()
            c1.update(txn, page_id, slot, value)
            c1.commit(txn)
        batches = cs.server._batches[1]
        assert len(batches) >= 2
        for batch in batches:
            mid = (batch.first_lsn + batch.last_lsn) // 2
            if batch.first_lsn <= mid <= batch.last_lsn:
                assert cs.server.map_rec_lsn(1, mid) == batch.offset

    def test_unknown_rec_lsn_maps_conservatively_to_zero(self, cs):
        assert cs.server.map_rec_lsn(1, 999999) == 0

    def test_received_dirty_page_gets_rec_addr(self, cs):
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1)
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"x")
        c1.commit(txn)
        c1.send_page_back(page_id)
        bcb = cs.server.pool.bcb(page_id)
        assert bcb.dirty
        assert bcb.rec_addr is not None


class TestCommitLsnInCs:
    def test_commit_lsn_read_without_lock(self, cs):
        from repro.common.stats import COMMIT_LSN_HITS, LOCK_REQUESTS
        c1, c2 = cs.clients[1], cs.clients[2]
        page_id, slot = committed_row(c1, b"data")
        cs.broadcast_max_lsns()
        locks_before = cs.stats.get(LOCK_REQUESTS)
        txn = c2.begin()
        value = c2.read(txn, page_id, slot, use_commit_lsn=True,
                        commit_lsn_service=cs.commit_lsn)
        c2.commit(txn)
        assert value == b"data"
        assert cs.stats.get(COMMIT_LSN_HITS) == 1
        assert cs.stats.get(LOCK_REQUESTS) == locks_before


class TestCsReallocStaleCopies:
    def test_other_clients_stale_copy_purged_on_realloc(self, cs):
        c1, c2 = cs.clients[1], cs.clients[2]
        page_id, slot = committed_row(c1, b"old")
        txn = c2.begin()
        assert c2.read(txn, page_id, slot) == b"old"   # cached at c2
        c2.commit(txn)
        txn = c1.begin()
        c1.delete(txn, page_id, slot)
        c1.deallocate_page(txn, page_id)
        c1.commit(txn)
        c1.flush_all()
        txn = c2.begin()
        c2.allocate_page(txn, page_id=page_id)
        new_slot = c2.insert(txn, page_id, b"new")
        c2.commit(txn)
        txn = c1.begin()
        assert c1.read(txn, page_id, new_slot) == b"new"
        c1.commit(txn)


class TestClientUndoUsesCurrentVersion:
    def test_recovery_recalls_page_from_live_client(self, cs):
        """Regression (found by hypothesis): C1's uncommitted update
        migrates (with the page) to C2, which updates another record in
        its cache without shipping; C1 crashes.  The server must recall
        the page from C2 before compensating, or the CLR's LSN can
        collide with C2's unshipped record."""
        c1, c2 = cs.clients[1], cs.clients[2]
        page_id, slot_a = committed_row(c1, b"init")
        loser = c1.begin()
        slot_b = c1.insert(loser, page_id, b"uncommitted")
        winner = c2.begin()
        c2.update(winner, page_id, slot_a, b"by-c2")   # recalls from c1
        cs.crash_client(1)
        cs.recover_client(1)
        c2.commit(winner)
        cs.quiesce()
        page = cs.server.disk.read_page(page_id)
        assert page.read_record(slot_a) == b"by-c2"
        assert page.read_record(slot_b) is None


class TestCsIsolation:
    def test_repeatable_read_holds_lock(self):
        cs = CsSystem(n_data_pages=256)
        reader = cs.add_client(1, isolation="repeatable_read")
        writer = cs.add_client(2)
        page_id, slot = committed_row(reader, b"v0")
        txn = reader.begin()
        first = reader.read(txn, page_id, slot)
        other = writer.begin()
        with pytest.raises(LockWouldBlock):
            writer.update(other, page_id, slot, b"v1")
        assert reader.read(txn, page_id, slot) == first
        reader.commit(txn)
        writer.update(other, page_id, slot, b"v1")
        writer.commit(other)

    def test_cursor_stability_releases_lock(self, cs):
        c1, c2 = cs.clients[1], cs.clients[2]
        page_id, slot = committed_row(c1, b"v0")
        txn = c2.begin()
        c2.read(txn, page_id, slot)
        other = c1.begin()
        c1.update(other, page_id, slot, b"v1")   # not blocked
        c1.commit(other)
        c2.commit(txn)

    def test_read_keeps_own_write_lock(self, cs):
        """Regression (same class as the SD bug): reading a record this
        txn already X-locked must not drop the X lock."""
        c1, c2 = cs.clients[1], cs.clients[2]
        page_id, slot = committed_row(c1, b"v0")
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"mine")
        assert c1.read(txn, page_id, slot) == b"mine"
        other = c2.begin()
        with pytest.raises((LockWouldBlock, ProtocolError)):
            c2.update(other, page_id, slot, b"steal")
        c1.commit(txn)
        c2.update(other, page_id, slot, b"steal")
        c2.commit(other)

    def test_invalid_isolation_rejected(self):
        cs = CsSystem(n_data_pages=128)
        with pytest.raises(ValueError):
            cs.add_client(1, isolation="serializable-ish")
