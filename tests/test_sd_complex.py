"""Integration tests for the shared-disks complex.

These reconstruct the paper's scenarios directly: the Section 1.5
lost-update anomaly (naive vs USN), the medium page-transfer scheme
(Section 3.1), read-free page reallocation across systems (Section 3.4)
and the Lamport LSN exchange (Section 3.5).
"""

import pytest

from repro import SDComplex
from repro.baselines.naive import NaiveDbmsInstance
from repro.common.errors import LockWouldBlock, ProtocolError, ReproError
from repro.common.stats import PAGE_READS_AVOIDED


def committed_row(instance, payload=b"v0"):
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    slot = instance.insert(txn, page_id, payload)
    instance.commit(txn)
    return page_id, slot


class TestCoherency:
    def test_page_migrates_for_update(self, sd):
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1)
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"from-s2")
        s2.commit(txn)
        assert sd.coherency.writer_of(page_id) == 2
        assert not s1.pool.contains(page_id)

    def test_medium_scheme_forces_disk_write_before_transfer(self, sd):
        """Invariant I8: the dirty page hits disk before the other
        system may update it."""
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1)
        assert s1.pool.is_dirty(page_id)
        disk_lsn_before = sd.disk.page_lsn_on_disk(page_id)
        assert disk_lsn_before is None          # never written yet
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"x")
        s2.commit(txn)
        # The transfer forced S1's version to disk first.
        disk_page = sd.disk.read_page(page_id)
        assert disk_page.page_lsn > 0

    def test_transfer_saves_requesters_disk_read(self, sd):
        from repro.common.stats import DISK_PAGE_READS
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1)
        reads_before = sd.stats.get(DISK_PAGE_READS)
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"x")
        s2.commit(txn)
        assert sd.stats.get(DISK_PAGE_READS) == reads_before

    def test_readers_share_then_get_invalidated(self, sd3):
        s1, s2, s3 = (sd3.instances[i] for i in (1, 2, 3))
        page_id, slot = committed_row(s1)
        s1.pool.write_page(page_id)
        for reader in (s2, s3):
            txn = reader.begin()
            assert reader.read(txn, page_id, slot) == b"v0"
            reader.commit(txn)
        assert sd3.coherency.readers_of(page_id) >= {2, 3}
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"v1")
        s1.commit(txn)
        assert not s2.pool.contains(page_id)
        assert not s3.pool.contains(page_id)

    def test_read_after_remote_update_sees_latest(self, sd):
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1, b"old")
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"new")
        s2.commit(txn)
        txn = s1.begin()
        assert s1.read(txn, page_id, slot) == b"new"
        s1.commit(txn)

    def test_crashed_writers_pages_fenced(self, sd):
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1)
        sd.crash_instance(1)
        txn = s2.begin()
        with pytest.raises(ProtocolError):
            s2.update(txn, page_id, slot, b"x")
        sd.restart_instance(1)
        s2.update(txn, page_id, slot, b"x")   # now fine
        s2.commit(txn)


class TestSection15Anomaly:
    """The paper's motivating example, run under both LSN schemes."""

    def _run_scenario(self, instance_cls):
        complex_ = SDComplex(n_data_pages=128)
        s1 = complex_.add_instance(1, instance_cls=instance_cls,
                                   lock_granularity="page")
        s2 = complex_.add_instance(2, instance_cls=instance_cls,
                                   lock_granularity="page")
        # Shared page created and forced to disk.
        page_id, slot = committed_row(s2, b"original")
        s2.pool.write_page(page_id)
        # S2's log is long (its LSNs are large under the naive scheme).
        s2.write_filler(50)
        # T2 in S2 updates P1 and commits; page goes to disk + transfer.
        t2 = s2.begin()
        s2.update(t2, page_id, slot, b"t2-update")
        s2.commit(t2)
        # T1 in S1 updates P1 (migrates the page, disk write included),
        # and commits; S1 crashes before the page is written again.
        t1 = s1.begin()
        s1.update(t1, page_id, slot, b"t1-committed")
        s1.commit(t1)
        complex_.crash_instance(1)
        complex_.restart_instance(1)
        return complex_.disk.read_page(page_id).read_record(slot)

    def test_naive_scheme_loses_committed_update(self):
        """LSN = local log address: T1's committed update vanishes."""
        assert self._run_scenario(NaiveDbmsInstance) == b"t2-update"

    def test_usn_scheme_preserves_committed_update(self):
        from repro.sd.instance import DbmsInstance
        assert self._run_scenario(DbmsInstance) == b"t1-committed"


class TestPerPageMonotonicity:
    def test_lsns_increase_across_systems(self, sd3):
        """Invariant I1 on a concrete ping-pong history."""
        instances = [sd3.instances[i] for i in (1, 2, 3)]
        page_id, slot = committed_row(instances[0])
        for round_ in range(9):
            instance = instances[round_ % 3]
            txn = instance.begin()
            instance.update(txn, page_id, slot, b"r%d" % round_)
            instance.commit(txn)
        lsns = []
        for instance in instances:
            for _, record in instance.log.scan():
                if record.page_id == page_id:
                    lsns.append(record.lsn)
        assert len(lsns) == len(set(lsns))
        # Disk version carries the global maximum for this page.
        sd3.instances[1].pool.flush_all()
        sd3.instances[2].pool.flush_all()
        sd3.instances[3].pool.flush_all()
        assert sd3.disk.page_lsn_on_disk(page_id) == max(lsns)


class TestReallocation:
    def test_allocate_avoids_disk_read(self, sd):
        s1 = sd.instances[1]
        txn = s1.begin()
        avoided_before = sd.stats.get(PAGE_READS_AVOIDED)
        s1.allocate_page(txn)
        s1.commit(txn)
        assert sd.stats.get(PAGE_READS_AVOIDED) == avoided_before + 1

    def test_cross_system_realloc_lsn_exceeds_old(self, sd):
        """Invariant I7, the Section 3.4 scenario: dealloc in S1,
        realloc in S2 (whose Local_Max_LSN lags), without reading the
        page — yet the new LSN must exceed the disk version's."""
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1, b"old-life")
        # Push the page's LSN high in S1.
        for i in range(20):
            txn = s1.begin()
            s1.update(txn, page_id, slot, b"v%02d" % i)
            s1.commit(txn)
        txn = s1.begin()
        s1.delete(txn, page_id, slot)
        s1.deallocate_page(txn, page_id)
        s1.commit(txn)
        s1.pool.flush_all()
        old_disk_lsn = sd.disk.page_lsn_on_disk(page_id)
        reads_before = sd.stats.get("disk.page_reads")
        txn2 = s2.begin()
        new_page = s2.allocate_page(txn2, page_id=page_id)
        s2.commit(txn2)
        assert new_page == page_id
        new_lsn = s2.pool.bcb(page_id).page.page_lsn
        assert new_lsn > old_disk_lsn
        # The dead page itself was never read (only its SMP was, and the
        # SMP travels through coherency, not a data-page read here).
        data_page_reads = sd.stats.get("disk.page_reads") - reads_before
        # Allow SMP transfer reads but no read of the dead data page:
        # verify by checking the page image S2 holds was formatted fresh.
        assert s2.pool.bcb(page_id).page.record_count() == 0

    def test_realloc_then_crash_recovers_formatted_page(self, sd):
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1, b"x")
        txn = s1.begin()
        s1.delete(txn, page_id, slot)
        s1.deallocate_page(txn, page_id)
        s1.commit(txn)
        s1.pool.flush_all()
        txn2 = s2.begin()
        s2.allocate_page(txn2, page_id=page_id)
        new_slot = s2.insert(txn2, page_id, b"new-life")
        s2.commit(txn2)
        sd.crash_instance(2)
        sd.restart_instance(2)
        page = sd.disk.read_page(page_id)
        assert page.read_record(new_slot) == b"new-life"

    def test_allocate_specific_already_allocated_raises(self, sd):
        s1 = sd.instances[1]
        page_id, _ = committed_row(s1)
        txn = s1.begin()
        with pytest.raises(ReproError):
            s1.allocate_page(txn, page_id=page_id)
        s1.rollback(txn)

    def test_deallocate_nonempty_raises(self, sd):
        s1 = sd.instances[1]
        page_id, _ = committed_row(s1)
        txn = s1.begin()
        with pytest.raises(ReproError):
            s1.deallocate_page(txn, page_id)
        s1.rollback(txn)


class TestMassDelete:
    def test_smp_only_logging(self, sd):
        s1 = sd.instances[1]
        txn = s1.begin()
        pages = [s1.allocate_page(txn) for _ in range(10)]
        s1.commit(txn)
        s1.pool.flush_all()
        reads_before = sd.stats.get("disk.page_reads")
        txn = s1.begin()
        n_records = s1.mass_delete(txn, pages)
        s1.commit(txn)
        assert n_records == 1          # one contiguous run, one SMP
        assert sd.stats.get("disk.page_reads") == reads_before
        for page_id in pages:
            assert not s1.is_allocated(page_id)

    def test_mass_delete_undo(self, sd):
        s1 = sd.instances[1]
        txn = s1.begin()
        pages = [s1.allocate_page(txn) for _ in range(5)]
        s1.commit(txn)
        txn = s1.begin()
        s1.mass_delete(txn, pages)
        s1.rollback(txn)
        for page_id in pages:
            assert s1.is_allocated(page_id)

    def test_mass_delete_survives_crash(self, sd):
        s1 = sd.instances[1]
        txn = s1.begin()
        pages = [s1.allocate_page(txn) for _ in range(5)]
        s1.commit(txn)
        txn = s1.begin()
        s1.mass_delete(txn, pages)
        s1.commit(txn)
        sd.crash_instance(1)
        sd.restart_instance(1)
        s2 = sd.instances[2]
        for page_id in pages:
            assert not s2.is_allocated(page_id)


class TestLockValueBlocks:
    def test_lock_release_carries_max_lsn(self, sd):
        """Lamport causality through the lock hierarchy: after taking a
        lock another system released, our LSNs exceed what that lock
        protected."""
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1)
        s1.write_filler(100)   # s1's Local_Max_LSN races ahead
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"by-s1")
        s1.commit(txn)
        s1_max = s1.log.local_max_lsn
        txn2 = s2.begin()
        s2.update(txn2, page_id, slot, b"by-s2")  # same record lock
        s2.commit(txn2)
        assert s2.log.local_max_lsn > s1_max - 110  # absorbed via value block
        # Stronger: the update's LSN exceeded the page's prior LSN.
        lsns = [r.lsn for _, r in s2.log.scan() if r.page_id == page_id]
        assert lsns and lsns[-1] > 0


class TestLocking:
    def test_conflicting_update_blocks(self, sd):
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1)
        t1 = s1.begin()
        s1.update(t1, page_id, slot, b"held")
        t2 = s2.begin()
        with pytest.raises(LockWouldBlock):
            s2.update(t2, page_id, slot, b"want")
        s1.commit(t1)
        s2.update(t2, page_id, slot, b"want")   # granted after release
        s2.commit(t2)

    def test_record_locking_allows_different_slots(self, sd):
        s1, s2 = sd.instances[1], sd.instances[2]
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        a = s1.insert(txn, page_id, b"a")
        b = s1.insert(txn, page_id, b"b")
        s1.commit(txn)
        t1 = s1.begin()
        s1.update(t1, page_id, a, b"a1")
        t2 = s2.begin()
        s2.update(t2, page_id, b, b"b1")   # different record: no conflict
        s1.commit(t1)
        s2.commit(t2)

    def test_retained_locks_block_until_recovery(self, sd):
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1)
        s1.pool.write_page(page_id)
        t1 = s1.begin()
        s1.update(t1, page_id, slot, b"uncommitted")
        s1.pool.write_page(page_id)  # steal
        sd.crash_instance(1)
        t2 = s2.begin()
        # The record lock is retained by the dead txn.
        with pytest.raises((LockWouldBlock, ProtocolError)):
            s2.update(t2, page_id, slot, b"blocked")
        sd.restart_instance(1)
        s2.update(t2, page_id, slot, b"now-ok")
        s2.commit(t2)


class TestComplexFailure:
    def test_all_instances_crash_and_recover(self, sd3):
        instances = [sd3.instances[i] for i in (1, 2, 3)]
        rows = [committed_row(inst, b"sys%d" % inst.system_id)
                for inst in instances]
        sd3.crash_complex()
        summaries = sd3.restart_complex()
        assert set(summaries) == {1, 2, 3}
        for (page_id, slot), inst in zip(rows, instances):
            value = sd3.disk.read_page(page_id).read_record(slot)
            assert value == b"sys%d" % inst.system_id

    def test_commit_lsn_read_avoids_lock(self, sd):
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1)
        sd.broadcast_max_lsns()
        from repro.common.stats import COMMIT_LSN_HITS
        txn = s2.begin()
        value = s2.read(txn, page_id, slot, use_commit_lsn=True)
        s2.commit(txn)
        assert value == b"v0"
        assert sd.stats.get(COMMIT_LSN_HITS) == 1


class TestReallocStaleCopies:
    def test_other_systems_stale_copy_purged_on_realloc(self, sd3):
        """Regression: a page deallocated and reallocated read-free by
        one system must not be served from another system's cached copy
        of its previous life."""
        s1, s2, s3 = (sd3.instances[i] for i in (1, 2, 3))
        page_id, slot = committed_row(s1, b"old-life")
        # S3 caches a clean copy of the old life.
        s1.pool.write_page(page_id)
        txn = s3.begin()
        assert s3.read(txn, page_id, slot) == b"old-life"
        s3.commit(txn)
        # S1 empties + deallocates; S2 reallocates read-free.
        txn = s1.begin()
        s1.delete(txn, page_id, slot)
        s1.deallocate_page(txn, page_id)
        s1.commit(txn)
        txn = s2.begin()
        s2.allocate_page(txn, page_id=page_id)
        new_slot = s2.insert(txn, page_id, b"new-life")
        s2.commit(txn)
        # S3 must see the new life, not its stale copy.
        txn = s3.begin()
        assert s3.read(txn, page_id, new_slot) == b"new-life"
        s3.commit(txn)

    def test_deallocators_own_dirty_copy_purged_on_remote_realloc(self, sd):
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1)
        txn = s1.begin()
        s1.delete(txn, page_id, slot)
        s1.deallocate_page(txn, page_id)
        s1.commit(txn)
        assert s1.pool.contains(page_id)   # dead copy still cached
        txn = s2.begin()
        s2.allocate_page(txn, page_id=page_id)
        s2.commit(txn)
        assert not s1.pool.contains(page_id)


class TestPostRestartCoherency:
    def test_no_stale_reads_after_restart(self, sd):
        """Regression: a restarted instance must never serve stale
        copies left over from recovery.  The engine guarantees this by
        restarting with a cold cache (recovery's working copies are
        dropped after the final flush)."""
        s1, s2 = sd.instances[1], sd.instances[2]
        page_id, slot = committed_row(s1, b"v1")
        sd.crash_instance(1)
        sd.restart_instance(1)
        assert len(s1.pool) == 0           # cold cache
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"v2")
        s2.commit(txn)
        txn = s1.begin()
        assert s1.read(txn, page_id, slot) == b"v2"
        s1.commit(txn)


class TestRestartUndoUsesCurrentVersion:
    def test_complex_failure_with_migrated_uncommitted_page(self, sd):
        """Regression (found by hypothesis): S1 updates slot B
        (uncommitted), the page migrates to S2 which commits an update
        to slot A, then the whole complex fails.  S1's restart undo
        must not compensate against the stale disk version — its CLR's
        LSN could collide with S2's committed record and make redo skip
        it (a lost update)."""
        s1, s2 = sd.instances[1], sd.instances[2]
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        slot_a = s1.insert(txn, page_id, b"init")
        s1.commit(txn)
        loser = s1.begin()
        slot_b = s1.insert(loser, page_id, b"uncommitted")
        winner = s2.begin()
        s2.update(winner, page_id, slot_a, b"committed-by-s2")
        s2.commit(winner)
        sd.crash_complex()
        sd.restart_complex()
        page = sd.disk.read_page(page_id)
        assert page.read_record(slot_a) == b"committed-by-s2"
        assert page.read_record(slot_b) is None

    def test_single_failure_with_page_at_live_system(self, sd):
        """The live-owner variant: undo must fetch the current version
        from S2's pool, not the stale disk image."""
        s1, s2 = sd.instances[1], sd.instances[2]
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        slot_a = s1.insert(txn, page_id, b"init")
        s1.commit(txn)
        loser = s1.begin()
        slot_b = s1.insert(loser, page_id, b"uncommitted")
        winner = s2.begin()
        s2.update(winner, page_id, slot_a, b"by-s2")
        s2.commit(winner)                 # page now dirty at S2
        s1.log.force()
        sd.crash_instance(1)
        sd.restart_instance(1)
        s2.pool.flush_all()
        page = sd.disk.read_page(page_id)
        assert page.read_record(slot_a) == b"by-s2"
        assert page.read_record(slot_b) is None
