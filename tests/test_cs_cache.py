"""Tests for the bounded client page cache (LRU, dirty write-back)."""

import pytest

from repro import CsSystem


def system_with_bounded_client(capacity=3):
    cs = CsSystem(n_data_pages=256)
    client = cs.add_client(1, cache_capacity=capacity)
    return cs, client


def make_rows(client, n_pages):
    txn = client.begin()
    handles = []
    for _ in range(n_pages):
        page_id = client.allocate_page(txn)
        slot = client.insert(txn, page_id, b"row")
        handles.append((page_id, slot))
    client.commit(txn)
    return handles


class TestEviction:
    def test_cache_respects_capacity(self):
        cs, client = system_with_bounded_client(capacity=3)
        make_rows(client, 6)
        assert len(client.cache) <= 3

    def test_dirty_victim_shipped_to_server(self):
        cs, client = system_with_bounded_client(capacity=2)
        handles = make_rows(client, 5)
        # Evicted dirty pages must have reached the server pool/disk.
        for page_id, slot in handles:
            if page_id not in client.cache:
                page = cs.server.pool.fix(page_id)
                try:
                    assert page.read_record(slot) == b"row"
                finally:
                    cs.server.pool.unfix(page_id)

    def test_evicted_page_refetchable(self):
        cs, client = system_with_bounded_client(capacity=2)
        handles = make_rows(client, 5)
        txn = client.begin()
        for page_id, slot in handles:
            assert client.read(txn, page_id, slot) == b"row"
        client.commit(txn)

    def test_lru_order(self):
        cs, client = system_with_bounded_client(capacity=0)
        handles = make_rows(client, 3)
        client.cache_capacity = 4  # SMP page + 3 data pages
        txn = client.begin()
        client.read(txn, handles[0][0], handles[0][1])  # touch page 0
        client.commit(txn)
        # Force an eviction by fetching something new.
        txn = client.begin()
        new_page = client.allocate_page(txn)
        client.commit(txn)
        assert handles[0][0] in client.cache, "recently-used page kept"

    def test_unbounded_by_default(self):
        cs = CsSystem(n_data_pages=256)
        client = cs.add_client(1)
        make_rows(client, 10)
        assert len(client.cache) > 10  # data pages + SMP

    def test_negative_capacity_rejected(self):
        cs = CsSystem(n_data_pages=128)
        with pytest.raises(ValueError):
            cs.add_client(1, cache_capacity=-1)

    def test_crash_recovery_with_bounded_cache(self):
        cs, client = system_with_bounded_client(capacity=2)
        handles = make_rows(client, 5)
        txn = client.begin()
        client.update(txn, handles[0][0], handles[0][1], b"newer")
        client.commit(txn)
        cs.crash_client(1)
        cs.recover_client(1)
        cs.quiesce()
        assert cs.server.disk.read_page(handles[0][0]) \
            .read_record(handles[0][1]) == b"newer"

    def test_send_back_releases_server_registration(self):
        cs, client = system_with_bounded_client(capacity=0)
        handles = make_rows(client, 1)
        page_id = handles[0][0]
        assert cs.server._writer.get(page_id) == 1
        client.send_page_back(page_id)
        assert cs.server._writer.get(page_id) is None
