"""Tests for the experiment harness utilities."""

import pytest

from repro.harness.experiment import (
    ExperimentResult,
    Table,
    format_factor,
    print_banner,
)


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("a-much-longer-name", 12345)
        lines = table.render().splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1, "all lines padded to equal width"

    def test_float_formatting(self):
        table = Table(["x"])
        table.add_row(0.123456)
        assert "0.123" in table.render()

    def test_cell_count_enforced(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_table_renders_header(self):
        table = Table(["only", "header"])
        lines = table.render().splitlines()
        assert lines[0].split() == ["only", "header"]

    def test_show_prints(self, capsys):
        table = Table(["h"])
        table.add_row("v")
        table.show()
        out = capsys.readouterr().out
        assert "h" in out and "v" in out


class TestHelpers:
    def test_format_factor(self):
        assert format_factor(10, 4) == "2.5x"
        assert format_factor(1, 0) == "inf"

    def test_print_banner(self, capsys):
        print_banner("E1", "anomaly")
        assert "=== E1: anomaly ===" in capsys.readouterr().out


class TestExperimentResult:
    def test_record_and_conclude(self):
        result = ExperimentResult("E1", "claim text")
        result.record("metric", 42)
        result.conclude(True)
        assert result.measurements == {"metric": 42}
        assert result.summary_line() == "[E1] HOLDS: claim text"

    def test_fails_verdict(self):
        result = ExperimentResult("E2", "claim").conclude(False)
        assert "FAILS" in result.summary_line()

    def test_unconcluded(self):
        assert "N/A" in ExperimentResult("E3", "claim").summary_line()
