"""Tests for the span layer: emission, trees, profiling, diffing.

The flagship assertions mirror the acceptance criteria: a traced E1
commit and a traced E7 restart each yield a span tree whose root
inclusive cost equals the sum of the critical path's step costs, span
emission is deterministic down to span ids and parent links (two runs
produce byte-identical JSONL), and the extended invariant checker
flags broken cluster-redo coverage and broken span brackets.
"""

import pytest

from repro.obs import (
    NULL_TRACER,
    TraceEvent,
    Tracer,
    build_span_forest,
    check_trace,
    critical_path,
    diff_traces,
    path_cost,
    render_diff,
    render_span_tree,
    select_root,
    self_costs,
    spans_by_name,
)
from repro.obs import events as ev
from repro.obs.capture import capture_e1, capture_e7
from repro.obs.invariants import first_violation
from repro.obs.profile import render_critical_path, render_self_costs
from repro.obs.tracer import NULL_SPAN


# ----------------------------------------------------------------------
# span emission
# ----------------------------------------------------------------------
class TestSpanEmission:
    def test_null_tracer_span_is_free(self):
        with NULL_TRACER.span("commit", system=1, txn=7) as handle:
            pass
        assert handle is NULL_SPAN
        assert handle.span_id == -1
        assert NULL_TRACER.events() == []

    def test_span_emits_paired_events(self):
        tracer = Tracer()
        with tracer.span("commit", system=1, txn=7):
            tracer.emit("log.append", system=1, lsn=5)
        kinds = [e.kind for e in tracer.events()]
        assert kinds == [ev.SPAN_BEGIN, "log.append", ev.SPAN_END]
        begin, _, end = tracer.events()
        assert begin.fields["name"] == "commit"
        assert begin.fields["txn"] == 7
        assert begin.fields["parent"] == -1
        assert end.fields["span"] == begin.fields["span"]

    def test_nested_spans_link_parents(self):
        tracer = Tracer()
        with tracer.span("restart", system=1) as outer:
            with tracer.span("redo", system=1) as inner:
                pass
        begins = [e for e in tracer.events() if e.kind == ev.SPAN_BEGIN]
        assert begins[0].fields["span"] == outer.span_id
        assert begins[1].fields["parent"] == outer.span_id
        assert inner.span_id != outer.span_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("a", system=1) as a:
            with tracer.span("b", system=1, parent=-1):
                pass
        begins = [e for e in tracer.events() if e.kind == ev.SPAN_BEGIN]
        assert begins[1].fields["parent"] == -1
        assert a.span_id == begins[0].fields["span"]

    def test_exception_closes_span_with_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("commit", system=1):
                raise RuntimeError("boom")
        end = tracer.events()[-1]
        assert end.kind == ev.SPAN_END
        assert end.fields["error"] == "RuntimeError"

    def test_double_close_is_idempotent(self):
        tracer = Tracer()
        handle = tracer.span_begin("commit", system=1)
        tracer.span_end(handle)
        tracer.span_end(handle)  # second close must not emit again
        ends = [e for e in tracer.events() if e.kind == ev.SPAN_END]
        assert len(ends) == 1


# ----------------------------------------------------------------------
# forest reconstruction
# ----------------------------------------------------------------------
def _traced_tree():
    tracer = Tracer()
    with tracer.span("restart", system=1, target="instance"):
        with tracer.span("recovery", system=1, mode="restart"):
            with tracer.span("analysis", system=1):
                tracer.emit("x", system=1)
            with tracer.span("redo", system=1):
                tracer.emit("x", system=1)
                tracer.emit("x", system=1)
    return tracer.events()


class TestSpanForest:
    def test_tree_shape(self):
        forest = build_span_forest(_traced_tree())
        assert len(forest) == 1
        root = forest[0]
        assert root.name == "restart"
        assert [c.name for c in root.children] == ["recovery"]
        recovery = root.children[0]
        assert [c.name for c in recovery.children] == ["analysis", "redo"]

    def test_costs_nest(self):
        root = build_span_forest(_traced_tree())[0]
        recovery = root.children[0]
        analysis, redo = recovery.children
        assert analysis.inclusive == 2  # begin, x, end
        assert redo.inclusive == 3
        assert recovery.exclusive == recovery.inclusive - 5
        assert root.exclusive >= 0

    def test_unclosed_span_tolerated(self):
        tracer = Tracer()
        tracer.span_begin("restart", system=1)
        forest = build_span_forest(tracer.events())
        assert forest[0].closed is False
        assert forest[0].inclusive == 0
        assert "[unclosed]" in render_span_tree(forest)

    def test_dangling_parent_promoted_to_root(self):
        events = [
            TraceEvent(seq=1, system=1, kind=ev.SPAN_BEGIN,
                       fields={"span": 5, "name": "redo", "parent": 99}),
            TraceEvent(seq=2, system=1, kind=ev.SPAN_END,
                       fields={"span": 5, "name": "redo"}),
        ]
        forest = build_span_forest(events)
        assert len(forest) == 1 and forest[0].name == "redo"

    def test_spans_by_name(self):
        forest = build_span_forest(_traced_tree())
        assert [n.name for n in spans_by_name(forest, "redo")] == ["redo"]
        assert spans_by_name(forest, "nope") == []

    def test_render_depth_prunes(self):
        forest = build_span_forest(_traced_tree())
        shallow = render_span_tree(forest, max_depth=1)
        assert "restart" in shallow and "analysis" not in shallow
        assert render_span_tree([]) == "(no spans)"


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_telescoping_identity_synthetic(self):
        root = build_span_forest(_traced_tree())[0]
        steps = critical_path(root)
        assert [s.node.name for s in steps] == ["restart", "recovery", "redo"]
        assert path_cost(steps) == root.inclusive

    def test_leaf_charged_full_inclusive(self):
        root = build_span_forest(_traced_tree())[0]
        steps = critical_path(root)
        assert steps[-1].cost == steps[-1].node.inclusive

    def test_self_costs_sum_to_total_inclusive(self):
        forest = build_span_forest(_traced_tree())
        rows = self_costs(forest)
        assert sum(ticks for _, _, ticks in rows) == forest[0].inclusive
        assert rows == sorted(rows, key=lambda r: (-r[2], r[0]))

    def test_select_root_filters(self):
        tracer = Tracer()
        with tracer.span("commit", system=1, txn=7):
            tracer.emit("x", system=1)
        with tracer.span("commit", system=1, txn=8):
            tracer.emit("x", system=1)
            tracer.emit("x", system=1)
        forest = build_span_forest(tracer.events())
        assert select_root(forest).attrs["txn"] == 8  # costlier wins
        assert select_root(forest, txn=7).attrs["txn"] == 7
        assert select_root(forest, name="restart") is None

    def test_renderers_are_total(self):
        root = build_span_forest(_traced_tree())[0]
        out = render_critical_path(critical_path(root))
        assert out.startswith(f"critical path: {root.inclusive} ticks")
        assert "(no spans)" == render_critical_path([])
        assert "(no spans)" == render_self_costs([])


# ----------------------------------------------------------------------
# acceptance: captures, identity, determinism
# ----------------------------------------------------------------------
class TestCaptureAcceptance:
    def test_e1_commit_critical_path_identity(self):
        tracer, _ = capture_e1("usn")
        forest = build_span_forest(tracer.events())
        root = select_root(forest, name="commit")
        assert root is not None and root.inclusive > 0
        assert path_cost(critical_path(root)) == root.inclusive

    def test_e7_restart_critical_path_identity(self):
        tracer, summary = capture_e7()
        assert summary["loser_rolled_back"] is True
        assert summary["records_redone"] > 0
        forest = build_span_forest(tracer.events())
        root = select_root(forest, name="restart")
        assert root is not None and root.inclusive > 0
        assert path_cost(critical_path(root)) == root.inclusive
        names = {n.name for n in root.walk()}
        assert {"restart", "recovery", "analysis", "redo", "undo"} <= names

    def test_e7_trace_is_invariant_clean(self):
        tracer, _ = capture_e7()
        assert check_trace(tracer.events()) == []

    def test_span_emission_is_deterministic(self):
        first, _ = capture_e7()
        second, _ = capture_e7()
        assert first.dump_jsonl() == second.dump_jsonl()

    def test_e1_span_emission_is_deterministic(self):
        first, _ = capture_e1("usn")
        second, _ = capture_e1("usn")
        assert first.dump_jsonl() == second.dump_jsonl()


# ----------------------------------------------------------------------
# trace diff
# ----------------------------------------------------------------------
class TestDiff:
    def test_identical_traces_diff_empty(self):
        tracer, _ = capture_e7()
        deltas = diff_traces(tracer.events(), tracer.events())
        assert all(d.delta == 0 for d in deltas)
        assert render_diff(deltas) == "(no span differences)"

    def test_differing_traces_rank_by_delta(self):
        a, _ = capture_e7(n_txns=2)
        b, _ = capture_e7(n_txns=6)
        deltas = diff_traces(a.events(), b.events())
        changed = [d for d in deltas if d.delta]
        assert changed, "more txns must cost more ticks somewhere"
        magnitudes = [abs(d.delta) for d in changed]
        assert magnitudes == sorted(magnitudes, reverse=True)
        out = render_diff(deltas, top=3)
        assert "span path" in out

    def test_path_aggregation_joins_names(self):
        forest_events = _traced_tree()
        deltas = diff_traces([], forest_events)
        paths = {d.path for d in deltas}
        assert "restart/recovery/redo" in paths


# ----------------------------------------------------------------------
# invariant checker extensions (I5 cluster-redo, I6/I7 spans)
# ----------------------------------------------------------------------
def _ev(seq, system, kind, /, **fields):
    return TraceEvent(seq=seq, system=system, kind=kind, fields=fields)


class TestClusterRedoInvariant:
    def _window(self, parts, promised=2):
        events = [
            _ev(1, 1, ev.RECOVERY_BEGIN, mode="restart"),
            _ev(2, 1, ev.CLUSTER_REDO_PLAN, partitions=promised,
                parallelism=2, records=10),
        ]
        seq = 3
        for p in parts:
            events.append(_ev(seq, 1, ev.CLUSTER_REDO_PART, partition=p))
            seq += 1
        events.append(_ev(seq, 1, ev.RECOVERY_END, redone=10))
        return events

    def test_exact_coverage_clean(self):
        assert check_trace(self._window([0, 1])) == []

    def test_missing_partition_flagged(self):
        v = first_violation(check_trace(self._window([0])), "cluster-redo")
        assert v is not None and "promised 2" in v.message

    def test_duplicate_partition_flagged(self):
        violations = check_trace(self._window([0, 0]))
        assert first_violation(violations, "cluster-redo") is not None

    def test_part_outside_window_flagged(self):
        events = [_ev(1, 1, ev.CLUSTER_REDO_PART, partition=0)]
        v = first_violation(check_trace(events), "cluster-redo")
        assert v is not None and "outside" in v.message

    def test_cluster_capture_is_clean(self):
        tracer, _ = capture_e7(redo_parallelism=4)
        assert check_trace(tracer.events()) == []


class TestSpanInvariants:
    def test_unclosed_span_flagged(self):
        events = [_ev(1, 1, ev.SPAN_BEGIN, span=1, name="commit",
                      parent=-1)]
        v = first_violation(check_trace(events), "span-pairing")
        assert v is not None and "never closed" in v.message

    def test_orphan_end_flagged(self):
        events = [_ev(1, 1, ev.SPAN_END, span=9, name="commit")]
        v = first_violation(check_trace(events), "span-pairing")
        assert v is not None and "without an open" in v.message

    def test_duplicate_begin_flagged(self):
        events = [
            _ev(1, 1, ev.SPAN_BEGIN, span=1, name="a", parent=-1),
            _ev(2, 1, ev.SPAN_BEGIN, span=1, name="b", parent=-1),
        ]
        v = first_violation(check_trace(events), "span-pairing")
        assert v is not None and "duplicate" in v.message

    def test_cross_system_close_flagged(self):
        events = [
            _ev(1, 1, ev.SPAN_BEGIN, span=1, name="a", parent=-1),
            _ev(2, 2, ev.SPAN_END, span=1, name="a"),
        ]
        v = first_violation(check_trace(events), "span-pairing")
        assert v is not None and "began on system 1" in v.message

    def test_non_lifo_close_flagged(self):
        events = [
            _ev(1, 1, ev.SPAN_BEGIN, span=1, name="outer", parent=-1),
            _ev(2, 1, ev.SPAN_BEGIN, span=2, name="inner", parent=1),
            _ev(3, 1, ev.SPAN_END, span=1, name="outer"),
            _ev(4, 1, ev.SPAN_END, span=2, name="inner"),
        ]
        v = first_violation(check_trace(events), "span-nesting")
        assert v is not None and "LIFO" in v.message

    def test_properly_nested_clean(self):
        events = [
            _ev(1, 1, ev.SPAN_BEGIN, span=1, name="outer", parent=-1),
            _ev(2, 1, ev.SPAN_BEGIN, span=2, name="inner", parent=1),
            _ev(3, 1, ev.SPAN_END, span=2, name="inner"),
            _ev(4, 1, ev.SPAN_END, span=1, name="outer"),
        ]
        assert check_trace(events) == []
