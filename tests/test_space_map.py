"""Tests for the DB2-style and Lomet-style space maps."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import PAGE_DATA_SIZE
from repro.storage.page import Page, PageType
from repro.storage.space_map import (
    LometSpaceMap,
    SpaceMap,
    lomet_entries_per_page,
    smp_entries_per_page,
)


def smp_page(page_type=PageType.SPACE_MAP):
    page = Page()
    page.format(1, page_type)
    return page


class TestGeometry:
    def test_entries_per_page(self):
        assert smp_entries_per_page() == PAGE_DATA_SIZE * 8

    def test_slot_mapping(self):
        sm = SpaceMap(smp_start=1, data_start=100, n_data_pages=100_000)
        slot = sm.slot_for(100)
        assert slot.smp_page_id == 1
        assert slot.index == 0
        epp = smp_entries_per_page()
        slot = sm.slot_for(100 + epp)
        assert slot.smp_page_id == 2
        assert slot.index == 0

    def test_n_smp_pages_ceiling(self):
        epp = smp_entries_per_page()
        sm = SpaceMap(smp_start=1, data_start=100, n_data_pages=epp + 1)
        assert sm.n_smp_pages == 2

    def test_out_of_range_page(self):
        sm = SpaceMap(smp_start=1, data_start=100, n_data_pages=10)
        with pytest.raises(ValueError):
            sm.slot_for(99)
        with pytest.raises(ValueError):
            sm.slot_for(110)

    def test_smp_page_ids(self):
        sm = SpaceMap(smp_start=5, data_start=100, n_data_pages=10)
        assert list(sm.smp_page_ids()) == [5]


class TestBitmap:
    def test_bits_default_clear(self):
        page = smp_page()
        assert not SpaceMap.read_allocated(page, 0)
        assert not SpaceMap.read_allocated(page, 12345)

    def test_set_and_clear_bit(self):
        page = smp_page()
        SpaceMap.write_allocated(page, 9, True)
        assert SpaceMap.read_allocated(page, 9)
        assert not SpaceMap.read_allocated(page, 8)
        assert not SpaceMap.read_allocated(page, 10)
        SpaceMap.write_allocated(page, 9, False)
        assert not SpaceMap.read_allocated(page, 9)

    def test_entry_update_codec(self):
        payload = SpaceMap.encode_entry_update(777, True)
        assert SpaceMap.decode_entry_update(payload) == (777, True)

    def test_apply_entry_update(self):
        page = smp_page()
        SpaceMap.apply_entry_update(page, SpaceMap.encode_entry_update(5, True))
        assert SpaceMap.read_allocated(page, 5)

    def test_range_update(self):
        page = smp_page()
        SpaceMap.write_range(page, 10, 20, True)
        assert all(SpaceMap.read_allocated(page, i) for i in range(10, 30))
        assert not SpaceMap.read_allocated(page, 9)
        assert not SpaceMap.read_allocated(page, 30)

    def test_range_codec_roundtrip(self):
        payload = SpaceMap.encode_range_update(100, 50, False)
        assert SpaceMap.decode_range_update(payload) == (100, 50, False)

    def test_apply_range_update(self):
        page = smp_page()
        SpaceMap.write_range(page, 0, 40, True)
        SpaceMap.apply_range_update(
            page, SpaceMap.encode_range_update(10, 5, False)
        )
        assert not SpaceMap.read_allocated(page, 12)
        assert SpaceMap.read_allocated(page, 15)

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(0, 2000), max_size=50))
    def test_property_bitmap_matches_set_model(self, indices):
        page = smp_page()
        for index in indices:
            SpaceMap.write_allocated(page, index, True)
        for index in range(2001):
            assert SpaceMap.read_allocated(page, index) == (index in indices)


class TestLomet:
    def test_entries_per_page(self):
        assert lomet_entries_per_page(8) == PAGE_DATA_SIZE // 8
        assert lomet_entries_per_page(6) == PAGE_DATA_SIZE // 6

    def test_invalid_lsn_bytes(self):
        with pytest.raises(ValueError):
            lomet_entries_per_page(4)

    def test_fresh_entry_reads_deallocated_lsn_zero(self):
        sm = LometSpaceMap(smp_start=1, data_start=10, n_data_pages=100)
        page = smp_page(PageType.LOMET_SPACE_MAP)
        allocated, lsn = sm.read_entry(page, 0)
        assert not allocated
        assert lsn == 0

    def test_allocate_then_deallocate_with_lsn(self):
        sm = LometSpaceMap(smp_start=1, data_start=10, n_data_pages=100)
        page = smp_page(PageType.LOMET_SPACE_MAP)
        sm.write_allocated(page, 3)
        assert sm.read_entry(page, 3) == (True, 0)
        sm.write_deallocated(page, 3, 987654)
        assert sm.read_entry(page, 3) == (False, 987654)

    def test_lsn_width_enforced(self):
        sm = LometSpaceMap(smp_start=1, data_start=10, n_data_pages=100,
                           lsn_bytes=6)
        page = smp_page(PageType.LOMET_SPACE_MAP)
        with pytest.raises(ValueError):
            sm.write_deallocated(page, 0, 1 << 48)

    def test_overhead_factor_matches_paper(self):
        """Section 4.2: 47-63x more space than DB2's single bit."""
        six = LometSpaceMap(smp_start=1, data_start=10, n_data_pages=10,
                            lsn_bytes=6)
        eight = LometSpaceMap(smp_start=1, data_start=10, n_data_pages=10,
                              lsn_bytes=8)
        assert six.overhead_factor() == 48.0    # paper: "47-63 times" MORE
        assert eight.overhead_factor() == 64.0

    def test_coverage_ratio(self):
        """One bitmap SMP covers ~64x more pages than a Lomet SMP."""
        ratio = smp_entries_per_page() / lomet_entries_per_page(8)
        assert ratio == pytest.approx(64.0, abs=0.2)

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(st.integers(0, 400),
                           st.integers(0, 2**48 - 1), max_size=30))
    def test_property_entries_independent(self, entries):
        sm = LometSpaceMap(smp_start=1, data_start=10, n_data_pages=500)
        page = smp_page(PageType.LOMET_SPACE_MAP)
        for index, lsn in entries.items():
            sm.write_deallocated(page, index, lsn)
        for index, lsn in entries.items():
            assert sm.read_entry(page, index) == (False, lsn)
