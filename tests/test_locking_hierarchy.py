"""Tests for hierarchical locking, isolation levels, lock escalation."""

import pytest

from repro import SDComplex
from repro.common.errors import LockWouldBlock
from repro.locking.lock_manager import (
    LockManager,
    LockMode,
    LockStatus,
    page_lock,
    record_lock,
)


def fresh(**kwargs):
    sd = SDComplex(n_data_pages=256)
    s1 = sd.add_instance(1, **kwargs)
    s2 = sd.add_instance(2, **kwargs)
    return sd, s1, s2


def wide_row(instance, n_records=3):
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    slots = [instance.insert(txn, page_id, b"r%d" % i)
             for i in range(n_records)]
    instance.commit(txn)
    return page_id, slots


class TestTryAcquire:
    def test_grant_on_free(self):
        lm = LockManager()
        assert lm.try_acquire(1, page_lock(5), LockMode.X) \
            is LockStatus.GRANTED

    def test_would_block_leaves_no_queue(self):
        lm = LockManager()
        lm.acquire(1, page_lock(5), LockMode.X)
        assert lm.try_acquire(2, page_lock(5), LockMode.S) \
            is LockStatus.WOULD_BLOCK
        assert lm.waiters(page_lock(5)) == []

    def test_conversion(self):
        lm = LockManager()
        lm.acquire(1, page_lock(5), LockMode.IX)
        assert lm.try_acquire(1, page_lock(5), LockMode.X) \
            is LockStatus.GRANTED
        assert lm.holds(1, page_lock(5), LockMode.X)

    def test_conversion_blocked_by_sharer(self):
        lm = LockManager()
        lm.acquire(1, page_lock(5), LockMode.IX)
        lm.acquire(2, page_lock(5), LockMode.IS)
        assert lm.try_acquire(1, page_lock(5), LockMode.X) \
            is LockStatus.WOULD_BLOCK
        assert lm.holds(1, page_lock(5), LockMode.IX)  # unchanged


class TestIntentionLocks:
    def test_writers_take_page_ix(self):
        sd, s1, _ = fresh()
        page_id, slots = wide_row(s1)
        txn = s1.begin()
        s1.update(txn, page_id, slots[0], b"x")
        assert sd.glm.holds(txn.txn_id, page_lock(page_id), LockMode.IX)
        assert sd.glm.holds(txn.txn_id, record_lock(page_id, slots[0]),
                            LockMode.X)
        s1.commit(txn)

    def test_record_writer_blocks_page_mode_writer(self):
        """The hierarchy makes record- and page-granularity instances
        interoperate: IX on the page conflicts with a page X."""
        sd = SDComplex(n_data_pages=256)
        s1 = sd.add_instance(1, lock_granularity="record")
        s2 = sd.add_instance(2, lock_granularity="page")
        page_id, slots = wide_row(s1)
        t1 = s1.begin()
        s1.update(t1, page_id, slots[0], b"x")
        t2 = s2.begin()
        with pytest.raises(LockWouldBlock):
            s2.update(t2, page_id, slots[1], b"y")
        s1.commit(t1)
        s2.update(t2, page_id, slots[1], b"y")
        s2.commit(t2)


class TestIsolationLevels:
    def test_cursor_stability_releases_read_lock(self):
        sd, s1, s2 = fresh(isolation="cursor_stability")
        page_id, slots = wide_row(s1)
        reader = s1.begin()
        s1.read(reader, page_id, slots[0])
        writer = s2.begin()
        s2.update(writer, page_id, slots[0], b"new")   # not blocked
        s2.commit(writer)
        s1.commit(reader)

    def test_repeatable_read_holds_read_lock(self):
        sd, s1, s2 = fresh(isolation="repeatable_read")
        page_id, slots = wide_row(s1)
        reader = s1.begin()
        first = s1.read(reader, page_id, slots[0])
        writer = s2.begin()
        with pytest.raises(LockWouldBlock):
            s2.update(writer, page_id, slots[0], b"new")
        # Repeatable: the second read sees the same value.
        assert s1.read(reader, page_id, slots[0]) == first
        s1.commit(reader)
        s2.update(writer, page_id, slots[0], b"new")
        s2.commit(writer)

    def test_read_does_not_release_callers_write_lock(self):
        """Regression: a cursor-stability read of a record this txn has
        already X-locked must not drop the X lock."""
        sd, s1, s2 = fresh()
        page_id, slots = wide_row(s1)
        txn = s1.begin()
        s1.update(txn, page_id, slots[0], b"mine")
        assert s1.read(txn, page_id, slots[0]) == b"mine"
        other = s2.begin()
        with pytest.raises(LockWouldBlock):
            s2.update(other, page_id, slots[0], b"steal")
        s1.commit(txn)
        s2.update(other, page_id, slots[0], b"steal")
        s2.commit(other)

    def test_invalid_isolation_rejected(self):
        sd = SDComplex(n_data_pages=128)
        with pytest.raises(ValueError):
            sd.add_instance(1, isolation="chaos")


class TestEscalation:
    def test_escalates_after_threshold(self):
        sd, s1, _ = fresh(escalation_threshold=3)
        page_id, slots = wide_row(s1, n_records=6)
        escalations_before = sd.stats.get("lock.escalations")
        txn = s1.begin()
        for slot in slots[:3]:
            s1.update(txn, page_id, slot, b"x")
        assert page_id in txn.escalated_pages
        assert sd.glm.holds(txn.txn_id, page_lock(page_id), LockMode.X)
        assert sd.stats.get("lock.escalations") == escalations_before + 1
        # Further updates on the page take no new record locks.
        locks_before = sd.stats.get("lock.requests")
        s1.update(txn, page_id, slots[3], b"x")
        assert sd.stats.get("lock.requests") == locks_before
        s1.commit(txn)

    def test_escalated_lock_blocks_other_systems(self):
        sd, s1, s2 = fresh(escalation_threshold=2)
        page_id, slots = wide_row(s1, n_records=4)
        txn = s1.begin()
        s1.update(txn, page_id, slots[0], b"x")
        s1.update(txn, page_id, slots[1], b"x")
        assert page_id in txn.escalated_pages
        other = s2.begin()
        with pytest.raises(LockWouldBlock):
            s2.update(other, page_id, slots[3], b"y")  # untouched record!
        s1.commit(txn)
        s2.update(other, page_id, slots[3], b"y")
        s2.commit(other)

    def test_escalation_defeated_by_concurrent_reader(self):
        """Opportunistic: a reader's IS lock blocks the X conversion;
        the writer simply continues with record locks."""
        sd, s1, s2 = fresh(escalation_threshold=2)
        page_id, slots = wide_row(s1, n_records=4)
        reader = s2.begin()
        s2.read(reader, page_id, slots[3])  # leaves an IS on the page
        txn = s1.begin()
        s1.update(txn, page_id, slots[0], b"x")
        s1.update(txn, page_id, slots[1], b"x")
        assert page_id not in txn.escalated_pages
        s1.update(txn, page_id, slots[2], b"x")  # still record-locked
        s1.commit(txn)
        s2.commit(reader)

    def test_disabled_by_default(self):
        sd, s1, _ = fresh()
        page_id, slots = wide_row(s1, n_records=3)
        txn = s1.begin()
        for slot in slots:
            s1.update(txn, page_id, slot, b"x")
        assert not txn.escalated_pages
        s1.commit(txn)

    def test_threshold_validation(self):
        sd = SDComplex(n_data_pages=128)
        with pytest.raises(ValueError):
            sd.add_instance(1, escalation_threshold=1)

    def test_escalated_txn_recovers_after_crash(self):
        sd, s1, _ = fresh(escalation_threshold=2)
        page_id, slots = wide_row(s1, n_records=4)
        txn = s1.begin()
        s1.update(txn, page_id, slots[0], b"BAD")
        s1.update(txn, page_id, slots[1], b"BAD")
        s1.pool.write_page(page_id)
        s1.log.force()
        sd.crash_instance(1)
        sd.restart_instance(1)
        page = sd.disk.read_page(page_id)
        assert page.read_record(slots[0]) == b"r0"
        assert page.read_record(slots[1]) == b"r1"
