"""Tests for repro.faults: the injector DSL, retry/degradation
policies, torn-write media repair, and the crash-point torture
campaign (``python -m repro.chaos``).

The campaign tests run the real seeded chaos workload end to end —
kill, media sweep, restart recovery, verifier, invariant checker — so
they double as integration coverage for every fault seam in the stack.
"""

import textwrap

import pytest

from repro.common.clock import SkewedClock
from repro.common.errors import (
    DegradedModeError,
    FaultInjectedError,
    LockTimeoutError,
    LockWouldBlock,
    MediaError,
    RetryExhaustedError,
    TornPageError,
)
from repro.common.stats import (
    DEGRADED_ENTRIES,
    DEGRADED_REJECTIONS,
    FAULTS_INJECTED,
    NET_DELAYED,
    NET_DROPS_INJECTED,
    NET_DUP_DROPPED,
    NET_RETRANSMITS,
    RETRY_EXHAUSTED,
    StatsRegistry,
)
from repro.cs.system import CsSystem
from repro.faults import points as fp
from repro.faults import scenarios
from repro.faults.campaign import (
    CrashSpec,
    enumerate_drill_specs,
    enumerate_specs,
    run_campaign,
    run_drill_spec,
    run_drill_survey,
    run_failover_drill,
    run_restart_drill,
    run_spec,
    run_survey,
    sabotage_redo_screening,
)
from repro.faults.injector import (
    CRASH,
    CRASH_COMPLEX,
    TORN,
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
)
from repro.faults.policy import (
    RetryPolicy,
    run_with_lock_retry,
    run_with_retry,
)
from repro.lint import lint_source
from repro.lint.rules import RULES_BY_ID
from repro.obs import events as ev
from repro.obs.capture import capture_e1
from repro.obs.tracer import Tracer
from repro.recovery import aries
from repro.recovery.media import recover_page_from_media
from repro.sd.complex import SDComplex
from repro.harness.verifier import verify_sd_complex


def committed_row(engine, payload=b"v1"):
    txn = engine.begin()
    page_id = engine.allocate_page(txn)
    slot = engine.insert(txn, page_id, payload)
    engine.commit(txn)
    return page_id, slot


def arm_next_hit(injector, point):
    """A site builder for the *next* crossing of ``point``."""
    return injector.plan.at(point).on_hit(injector.hit_count(point) + 1)


# ----------------------------------------------------------------------
# plan DSL / injector semantics
# ----------------------------------------------------------------------
class TestFaultPlanDsl:
    def test_nth_rule_fires_exactly_once(self):
        plan = FaultPlan(seed=0)
        plan.at("p").on_hit(3).crash()
        injector = FaultInjector(plan)
        injector.fire("p")
        injector.fire("p")
        with pytest.raises(FaultInjectedError) as excinfo:
            injector.fire("p", system=7)
        assert excinfo.value.point == "p"
        assert excinfo.value.action == CRASH
        assert excinfo.value.hit == 3
        assert excinfo.value.system == 7
        injector.fire("p")  # nth is one-shot: hit 4 passes
        assert injector.hit_count("p") == 4
        assert injector.fired() == [("p", 3, CRASH)]

    def test_every_kth_hit_fires_periodically(self):
        plan = FaultPlan(seed=0)
        plan.at("p").every_hit(2).fail()
        injector = FaultInjector(plan)
        outcomes = []
        for _ in range(6):
            try:
                injector.fire("p")
                outcomes.append("ok")
            except FaultInjectedError:
                outcomes.append("boom")
        assert outcomes == ["ok", "boom", "ok", "boom", "ok", "boom"]

    def test_probability_rule_is_seed_deterministic(self):
        def pattern(seed):
            plan = FaultPlan(seed=seed)
            plan.at("p").with_probability(0.5).fail()
            injector = FaultInjector(plan)
            fired = []
            for _ in range(64):
                try:
                    injector.fire("p")
                    fired.append(False)
                except FaultInjectedError:
                    fired.append(True)
            return fired

        first = pattern(seed=42)
        assert first == pattern(seed=42)
        assert any(first) and not all(first)
        assert pattern(seed=43) != first

    def test_empty_plan_counts_hits_without_firing(self):
        injector = FaultInjector(FaultPlan(seed=0))
        for _ in range(5):
            injector.fire("p", system=1)
        assert injector.hit_count("p") == 5
        assert injector.fired() == []

    def test_null_injector_is_disabled_and_inert(self):
        assert not NULL_INJECTOR.enabled
        assert NULL_INJECTOR.fire("p") is None
        assert NULL_INJECTOR.hit_count("p") == 0

    def test_torn_action_raises_torn_page_error(self):
        plan = FaultPlan(seed=0)
        plan.at(fp.DISK_WRITE).on_hit(1).torn()
        injector = FaultInjector(plan)
        with pytest.raises(TornPageError):
            injector.fire(fp.DISK_WRITE)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(max_attempts=6, base_ticks=2,
                             max_backoff_ticks=9)
        assert [policy.backoff_ticks(a) for a in range(1, 6)] == [
            2, 4, 8, 9, 9]

    def test_transient_block_is_retried_to_success(self):
        clock = SkewedClock()
        policy = RetryPolicy(max_attempts=4, base_ticks=1, clock=clock)
        state = {"failures": 2, "attempts": 0}

        def attempt():
            state["attempts"] += 1
            if state["failures"]:
                state["failures"] -= 1
                raise LockWouldBlock("t1", "row-9")
            return "granted"

        assert run_with_lock_retry(policy, attempt) == "granted"
        assert state["attempts"] == 3
        assert clock.ticks > 0  # backoff consumed simulated time

    def test_persistent_block_times_out(self):
        policy = RetryPolicy(max_attempts=3, base_ticks=1,
                             clock=SkewedClock())
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            raise LockWouldBlock("t1", "row-9")

        with pytest.raises(LockTimeoutError):
            run_with_lock_retry(policy, attempt)
        assert calls["n"] == 3

    def test_no_jitter_seed_keeps_historical_schedule(self):
        plain = RetryPolicy(max_attempts=6, base_ticks=2,
                            max_backoff_ticks=9)
        assert all(plain.jitter_ticks(a) == 0 for a in range(1, 6))
        assert [plain.backoff_ticks(a) for a in range(1, 6)] == [
            2, 4, 8, 9, 9]

    def test_jitter_is_deterministic_per_seed(self):
        one = RetryPolicy(base_ticks=4, max_backoff_ticks=64,
                          jitter_seed=7)
        two = RetryPolicy(base_ticks=4, max_backoff_ticks=64,
                          jitter_seed=7)
        other = RetryPolicy(base_ticks=4, max_backoff_ticks=64,
                            jitter_seed=8)
        schedule = [one.backoff_ticks(a) for a in range(1, 8)]
        assert schedule == [two.backoff_ticks(a) for a in range(1, 8)]
        assert schedule != [other.backoff_ticks(a) for a in range(1, 8)]

    def test_jitter_bounded_by_capped_backoff(self):
        policy = RetryPolicy(base_ticks=2, max_backoff_ticks=16,
                             jitter_seed=123)
        for attempt in range(1, 10):
            base = min(2 << (attempt - 1), 16)
            jitter = policy.jitter_ticks(attempt)
            assert 0 <= jitter < base
            assert policy.backoff_ticks(attempt) == base + jitter

    def test_attempts_are_one_based(self):
        policy = RetryPolicy(jitter_seed=1)
        with pytest.raises(ValueError):
            policy.jitter_ticks(0)
        with pytest.raises(ValueError):
            policy.backoff_ticks(0)


class TestRunWithRetry:
    def test_retries_transient_then_succeeds(self):
        clock = SkewedClock()
        policy = RetryPolicy(max_attempts=4, base_ticks=1, clock=clock)
        plan = FaultPlan(seed=0)
        plan.at(fp.NET_MSG).on_hit(1).fail()
        plan.at(fp.NET_MSG).on_hit(2).fail()
        injector = FaultInjector(plan)
        state = {"attempts": 0}

        def attempt():
            state["attempts"] += 1
            injector.fire(fp.NET_MSG, system=1)
            return "delivered"

        assert run_with_retry(policy, attempt,
                              retryable=FaultInjectedError) == "delivered"
        assert state["attempts"] == 3
        assert clock.ticks > 0

    def test_exhaustion_counts_and_raises_typed_error(self):
        policy = RetryPolicy(max_attempts=3, base_ticks=1,
                             clock=SkewedClock())
        stats = StatsRegistry()
        calls = {"n": 0}
        retries = []

        plan = FaultPlan(seed=0)
        plan.at(fp.REPL_SHIP).every_hit(1).fail()
        injector = FaultInjector(plan)

        def attempt():
            calls["n"] += 1
            injector.fire(fp.REPL_SHIP, system=9)

        with pytest.raises(RetryExhaustedError) as excinfo:
            run_with_retry(policy, attempt, retryable=FaultInjectedError,
                           stats=stats, on_retry=retries.append,
                           label="repl.ship->9")
        assert calls["n"] == 3
        assert retries == [1, 2]
        assert stats.get(RETRY_EXHAUSTED) == 1
        assert excinfo.value.attempts == 3
        assert excinfo.value.operation == "repl.ship->9"
        assert isinstance(excinfo.value.__cause__, FaultInjectedError)

    def test_should_retry_veto_propagates_immediately(self):
        """A crash-flavoured fault must not be retried away."""
        policy = RetryPolicy(max_attempts=5, clock=SkewedClock())
        stats = StatsRegistry()
        calls = {"n": 0}

        plan = FaultPlan(seed=0)
        plan.at(fp.DISK_WRITE).every_hit(1).crash()
        injector = FaultInjector(plan)

        def attempt():
            calls["n"] += 1
            injector.fire(fp.DISK_WRITE, system=1)

        with pytest.raises(FaultInjectedError):
            run_with_retry(
                policy, attempt, retryable=FaultInjectedError, stats=stats,
                should_retry=lambda exc: exc.action != CRASH)
        assert calls["n"] == 1
        assert stats.get(RETRY_EXHAUSTED) == 0

    def test_non_retryable_exception_propagates(self):
        policy = RetryPolicy(max_attempts=5, clock=SkewedClock())

        def attempt():
            raise ValueError("not a repro error")

        with pytest.raises(ValueError):
            run_with_retry(policy, attempt, retryable=FaultInjectedError)


# ----------------------------------------------------------------------
# degraded mode (log-device failure -> read-only)
# ----------------------------------------------------------------------
class TestDegradedModeSd:
    def test_log_force_failure_degrades_instance(self):
        injector = FaultInjector(FaultPlan(seed=0))
        tracer = Tracer()
        sd = SDComplex(n_data_pages=64, tracer=tracer, injector=injector)
        s1 = sd.add_instance(1)
        page_a, slot_a = committed_row(s1, b"safe")
        page_b, slot_b = committed_row(s1, b"other")
        arm_next_hit(injector, fp.LOG_FORCE).fail()

        txn = s1.begin()
        s1.update(txn, page_a, slot_a, b"doomed")
        with pytest.raises(DegradedModeError):
            s1.commit(txn)
        assert s1.degraded
        assert sd.stats.get(DEGRADED_ENTRIES) == 1
        assert any(e.kind == ev.DEGRADED_ENTER for e in tracer.events())

        # Writes are rejected, reads still served.
        reader = s1.begin()
        with pytest.raises(DegradedModeError):
            s1.insert(reader, page_b, b"nope")
        assert sd.stats.get(DEGRADED_REJECTIONS) == 1
        assert s1.read(reader, page_b, slot_b) == b"other"

        # A restart repairs the log device: the unacknowledged commit
        # rolls back (its COMMIT record never reached stable storage).
        sd.crash_instance(1)
        assert not s1.degraded
        assert any(e.kind == ev.DEGRADED_EXIT for e in tracer.events())
        sd.restart_instance(1)
        verdict = s1.begin()
        assert s1.read(verdict, page_a, slot_a) == b"safe"


class TestDegradedModeCs:
    def test_log_force_failure_degrades_server(self):
        injector = FaultInjector(FaultPlan(seed=0))
        cs = CsSystem(n_data_pages=64, injector=injector)
        c1 = cs.add_client(1)
        page_a, slot_a = committed_row(c1, b"safe")
        arm_next_hit(injector, fp.LOG_FORCE).fail()

        txn = c1.begin()
        c1.update(txn, page_a, slot_a, b"doomed")
        with pytest.raises(DegradedModeError):
            c1.commit(txn)
        assert cs.server.degraded
        assert cs.stats.get(DEGRADED_ENTRIES) == 1

        # The next commit is rejected at the server's door.
        txn2 = c1.begin()
        with pytest.raises(DegradedModeError):
            c1.commit(txn2)
        assert cs.stats.get(DEGRADED_REJECTIONS) >= 1

        # Server restart clears the mode and undoes the doomed update.
        cs.crash_server()
        assert not cs.server.degraded
        cs.restart_server()
        verdict = c1.begin()
        assert c1.read(verdict, page_a, slot_a) == b"safe"
        committed_row(c1, b"post-repair")  # log device works again


# ----------------------------------------------------------------------
# torn writes + media repair
# ----------------------------------------------------------------------
class TestTornWrite:
    def test_torn_write_detected_on_read_and_rebuilt(self):
        injector = FaultInjector(FaultPlan(seed=0))
        sd = SDComplex(n_data_pages=64, injector=injector)
        s1 = sd.add_instance(1)
        page_id, slot = committed_row(s1, b"precious")
        arm_next_hit(injector, fp.DISK_WRITE).torn()

        with pytest.raises(TornPageError):
            s1.pool.write_page(page_id)
        with pytest.raises(MediaError):
            sd.disk.read_page(page_id)

        recover_page_from_media(page_id, None, sd.local_logs(),
                                disk=sd.disk)
        assert sd.disk.read_page(page_id).read_record(slot) == b"precious"


# ----------------------------------------------------------------------
# network faults ride the retry/dedup machinery transparently
# ----------------------------------------------------------------------
class TestNetworkFaults:
    def _run(self, arm):
        injector = FaultInjector(FaultPlan(seed=0))
        arm(injector.plan)
        sd, tracer = scenarios.build_sd(injector, seed=0)
        scenarios.run_sd_workload(sd, 0)
        return sd

    def test_drops_are_retransmitted(self):
        sd = self._run(lambda plan: plan.at(fp.NET_MSG).every_hit(5).drop())
        assert sd.stats.get(NET_DROPS_INJECTED) > 0
        assert sd.stats.get(NET_RETRANSMITS) > 0
        assert verify_sd_complex(sd).ok

    def test_duplicates_are_deduplicated(self):
        sd = self._run(
            lambda plan: plan.at(fp.NET_MSG).every_hit(3).duplicate())
        assert sd.stats.get(NET_DUP_DROPPED) > 0
        assert verify_sd_complex(sd).ok

    def test_delays_are_parked_then_flushed(self):
        sd = self._run(lambda plan: plan.at(fp.NET_MSG).every_hit(7).delay())
        assert sd.stats.get(NET_DELAYED) > 0
        assert verify_sd_complex(sd).ok


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def surveys():
    return {arch: run_survey(arch, seed=0) for arch in ("sd", "cs")}


MATRIX_POINTS = {
    "sd": (fp.LOG_FORCE, fp.INSTANCE_UPDATE, fp.DISK_WRITE),
    "cs": (fp.LOG_FORCE, fp.INSTANCE_UPDATE, fp.CS_SHIP),
}


class TestCampaignMatrix:
    @pytest.mark.parametrize("arch", ["sd", "cs"])
    @pytest.mark.parametrize("kind", [0, 1, 2])
    @pytest.mark.parametrize("action", [CRASH, CRASH_COMPLEX])
    def test_kill_and_recover(self, surveys, arch, kind, action):
        point = MATRIX_POINTS[arch][kind]
        survey = surveys[arch]
        first, last = survey.workload_hits(point)
        assert last, f"{point} never hit in the {arch} workload"
        spec = CrashSpec(arch, point, first + (last - first) // 2, action)
        result = run_spec(spec, seed=0)
        assert result.fired, result.to_dict()
        assert result.ok, result.to_dict()

    @pytest.mark.parametrize("arch", ["sd", "cs"])
    def test_torn_spec_repairs_media(self, surveys, arch):
        torn = [s for s in enumerate_specs(surveys[arch]) if s.action == TORN]
        assert torn, "full campaign must include a torn-write spec"
        result = run_spec(torn[0], seed=0)
        assert result.ok, result.to_dict()
        assert result.repaired_pages

    def test_smoke_campaign_stays_small_and_green(self):
        reports = [run_campaign(arch, seed=0, smoke=True)
                   for arch in ("sd", "cs")]
        assert sum(len(r.results) for r in reports) <= 10
        for report in reports:
            assert report.ok, report.table()
            assert report.survey.total_hits.get(fp.DISK_WRITE, 0) > 0

    def test_same_seed_same_campaign(self):
        first = run_campaign("sd", seed=11, smoke=True)
        again = run_campaign("sd", seed=11, smoke=True)
        assert first.to_dict() == again.to_dict()


class TestFailoverDrill:
    def test_smoke_drill_is_green(self):
        report = run_failover_drill(seed=0, smoke=True)
        assert report.results, "smoke drill produced no rehearsals"
        assert report.ok, report.table()
        acks = {result.spec.ack for result in report.results}
        assert acks == {"local", "quorum", "all"}

    def test_acked_commits_never_lost_under_quorum_and_all(self):
        report = run_failover_drill(seed=0, smoke=True)
        for result in report.results:
            if result.spec.ack in ("quorum", "all"):
                assert result.lost_commits == 0, result.to_dict()
            else:
                assert result.lost_commits <= \
                    scenarios.REPL_WINDOW_RECORDS, result.to_dict()

    def test_single_rehearsal_kills_and_promotes(self):
        survey = run_drill_survey("quorum", seed=0)
        specs = enumerate_drill_specs(survey, "quorum", smoke=True)
        assert specs
        result = run_drill_spec(specs[0], seed=0)
        assert result.fired, result.to_dict()
        assert result.ok, result.to_dict()
        assert result.promoted_system >= scenarios.STANDBY_BASE_ID
        assert result.image_match and result.writable

    def test_same_seed_same_drill(self):
        first = run_failover_drill(seed=5, smoke=True)
        again = run_failover_drill(seed=5, smoke=True)
        assert first.to_dict() == again.to_dict()

    def test_drill_cli_exit_code(self, capsys):
        from repro.chaos import main

        assert main(["--drill", "failover", "--smoke"]) == 0
        assert "DRILL: OK" in capsys.readouterr().out


class TestRestartDrill:
    def test_smoke_drill_is_green(self):
        report = run_restart_drill(seed=0, smoke=True)
        assert report.results, "smoke drill produced no rehearsals"
        assert report.ok, report.table()
        assert all(result.image_match for result in report.results)
        # At least one rehearsal must actually defer redo work, or the
        # drill would be comparing two eager restarts.
        assert any(result.lazy_pages > 0 for result in report.results)

    def test_same_seed_same_drill(self):
        first = run_restart_drill(seed=0, smoke=True)
        again = run_restart_drill(seed=0, smoke=True)
        assert first.to_dict() == again.to_dict()

    def test_drill_cli_exit_code(self, capsys):
        from repro.chaos import main

        assert main(["--drill", "restart", "--smoke"]) == 0
        assert "DRILL: OK" in capsys.readouterr().out

    def test_unknown_drill_lists_drills_and_exits_2(self, capsys):
        from repro.chaos import main

        assert main(["--drill", "bogus"]) == 2
        out = capsys.readouterr().out
        assert "failover" in out and "restart" in out


class TestSabotage:
    def test_broken_redo_screening_turns_campaign_red(self):
        with sabotage_redo_screening():
            report = run_campaign("sd", seed=0, smoke=True)
        assert not aries._SABOTAGE_DISABLE_REDO_SCREENING
        assert not report.ok
        assert any("redo-screening" in violation
                   for result in report.failed
                   for violation in result.invariant_violations)

    def test_cli_exit_codes(self, capsys):
        from repro.chaos import main

        assert main(["--smoke", "--arch", "sd"]) == 0
        assert main(["--smoke", "--arch", "sd",
                     "--sabotage", "redo-screening"]) == 1
        assert main(["--list", "--arch", "cs"]) == 0
        out = capsys.readouterr().out
        assert "CHAOS: OK" in out and "CHAOS: FAIL" in out


# ----------------------------------------------------------------------
# zero-cost-off: an enabled-but-empty injector must be invisible, and
# the default null injector doubly so
# ----------------------------------------------------------------------
class TestDisabledInjectorIdentity:
    def test_e1_trace_is_byte_identical(self):
        baseline_tracer, baseline_summary = capture_e1()
        injected_tracer, injected_summary = capture_e1(
            injector=FaultInjector(FaultPlan(seed=0)))
        assert injected_summary == baseline_summary
        assert injected_tracer.dump_jsonl() == baseline_tracer.dump_jsonl()

    def test_chaos_workload_identical_under_empty_plan(self):
        null_sd, null_tracer = scenarios.build_sd(NULL_INJECTOR, seed=0)
        scenarios.run_sd_workload(null_sd, 0)
        injector = FaultInjector(FaultPlan(seed=0))
        live_sd, live_tracer = scenarios.build_sd(injector, seed=0)
        scenarios.run_sd_workload(live_sd, 0)
        assert live_tracer.dump_jsonl() == null_tracer.dump_jsonl()
        # The injector's own counter is the only divergence allowed,
        # and it lives outside the stats registry until a rule fires.
        assert live_sd.stats.get(FAULTS_INJECTED) == 0
        assert null_sd.stats.snapshot() == live_sd.stats.snapshot()


# ----------------------------------------------------------------------
# R007: injected fault types may only be raised by the injector
# ----------------------------------------------------------------------
class TestFaultDisciplineRule:
    def _findings(self, source, path):
        return lint_source(textwrap.dedent(source), path=path,
                           rules=[RULES_BY_ID["R007"]])

    def test_forging_an_injected_fault_is_flagged(self):
        found = self._findings(
            """
            from repro.common.errors import FaultInjectedError

            def sneaky():
                raise FaultInjectedError("disk.write", "crash")
            """,
            path="src/repro/sd/fake.py",
        )
        assert [f.rule_id for f in found] == ["R007"]

    def test_torn_page_error_is_also_guarded(self):
        found = self._findings(
            """
            from repro.common.errors import TornPageError

            def sneaky():
                raise TornPageError("disk.write", "torn")
            """,
            path="src/repro/storage/fake.py",
        )
        assert [f.rule_id for f in found] == ["R007"]

    def test_injector_package_may_raise(self):
        found = self._findings(
            """
            from repro.common.errors import FaultInjectedError

            def fire():
                raise FaultInjectedError("disk.write", "crash")
            """,
            path="src/repro/faults/injector.py",
        )
        assert found == []

    def test_propagating_a_caught_fault_is_allowed(self):
        found = self._findings(
            """
            from repro.common.errors import TornPageError

            def seam(write):
                try:
                    write()
                except TornPageError as exc:
                    cleanup = exc
                    raise
            """,
            path="src/repro/storage/fake.py",
        )
        assert found == []
