"""Tests for the parallel bench-suite runner (``python -m repro.bench``).

Real benches are slow, so these tests build a toy bench directory:
one standalone bench (the ``build_result``/``--json`` contract) and
one pytest bench, plus broken variants for the failure paths.  The
compare logic is exercised purely in memory.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    compare,
    discover,
    load_suite,
    main,
    run_suite,
    write_suite,
)

STANDALONE_BENCH = '''\
"""Fake standalone bench following the bench_main contract."""
import json
import sys


def build_result():
    return {"holds": True}


def main():
    out = None
    argv = sys.argv[1:]
    if argv and argv[0] == "--json":
        out = argv[1]
    if out:
        with open(out, "w") as handle:
            json.dump({"experiment_id": "FAKE", "holds": True,
                       "counters": {"log.forces": 3, "note": "skip-me"}},
                      handle)
    print("fake bench ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
'''

PYTEST_BENCH = '''\
def test_always_passes():
    assert 1 + 1 == 2


def test_also_passes():
    assert True
'''

FAILING_PYTEST_BENCH = '''\
def test_always_fails():
    assert False, "injected failure"
'''


@pytest.fixture
def bench_dir(tmp_path):
    root = tmp_path / "benchmarks"
    root.mkdir()
    (root / "bench_fake_standalone.py").write_text(STANDALONE_BENCH)
    (root / "bench_fake_pytest.py").write_text(PYTEST_BENCH)
    (root / "helper.py").write_text("# not a bench\n")
    return root


class TestDiscovery:
    def test_finds_only_bench_modules(self, bench_dir):
        names = [p.stem for p in discover(bench_dir)]
        assert names == ["bench_fake_pytest", "bench_fake_standalone"]

    def test_only_filter_preserves_order(self, bench_dir):
        names = [p.stem for p in discover(
            bench_dir, ["bench_fake_standalone", "bench_fake_pytest"])]
        assert names == ["bench_fake_standalone", "bench_fake_pytest"]

    def test_unknown_name_raises(self, bench_dir):
        with pytest.raises(FileNotFoundError):
            discover(bench_dir, ["bench_missing"])


class TestRunSuite:
    def test_standalone_and_pytest_modes(self, bench_dir):
        suite = run_suite(discover(bench_dir), jobs=2)
        assert suite["schema"] == SCHEMA_VERSION
        benches = suite["benches"]
        sa = benches["bench_fake_standalone"]
        assert sa["mode"] == "standalone"
        assert sa["ok"] is True
        assert sa["holds"] is True
        assert sa["counters"] == {"log.forces": 3}  # non-ints dropped
        py = benches["bench_fake_pytest"]
        assert py["mode"] == "pytest"
        assert py["ok"] is True
        assert py["counters"].get("passed") == 2
        assert all(b["seconds"] >= 0 for b in benches.values())

    def test_failing_bench_reported_not_raised(self, bench_dir):
        (bench_dir / "bench_fake_failing.py").write_text(
            FAILING_PYTEST_BENCH)
        suite = run_suite(discover(bench_dir), jobs=1)
        failing = suite["benches"]["bench_fake_failing"]
        assert failing["ok"] is False
        assert "injected failure" in failing["detail"]

    def test_json_roundtrip(self, bench_dir, tmp_path):
        suite = run_suite(discover(bench_dir), jobs=1)
        out = tmp_path / "BENCH_SUITE.json"
        write_suite(suite, str(out))
        assert load_suite(str(out)) == suite

    def test_load_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a suite"}')
        with pytest.raises(ValueError):
            load_suite(str(bad))
        bad.write_text(json.dumps(
            {"schema": 99, "jobs": 1, "benches": {}}))
        with pytest.raises(ValueError):
            load_suite(str(bad))


def _suite(**benches):
    return {"schema": SCHEMA_VERSION, "jobs": 1,
            "total_seconds": sum(b["seconds"] for b in benches.values()),
            "benches": benches}


def _bench(seconds=1.0, ok=True, holds=None, mode="pytest"):
    entry = {"seconds": seconds, "ok": ok, "mode": mode, "counters": {}}
    if holds is not None:
        entry["holds"] = holds
    return entry


class TestCompare:
    def test_identical_suites_are_clean(self):
        suite = _suite(a=_bench(), b=_bench(seconds=2.0))
        assert compare(suite, suite) == []

    def test_slower_bench_flagged(self):
        base = _suite(a=_bench(seconds=1.0))
        cur = _suite(a=_bench(seconds=2.0))
        problems = compare(base, cur, tolerance=0.5, abs_slack=0.25)
        assert len(problems) == 1 and "2.000s" in problems[0]

    def test_tolerance_plus_slack_allows_noise(self):
        base = _suite(a=_bench(seconds=1.0))
        cur = _suite(a=_bench(seconds=1.7))
        assert compare(base, cur, tolerance=0.5, abs_slack=0.25) == []

    def test_missing_bench_flagged(self):
        base = _suite(a=_bench(), b=_bench())
        cur = _suite(a=_bench())
        problems = compare(base, cur)
        assert any("missing" in p for p in problems)

    def test_new_failure_flagged(self):
        base = _suite(a=_bench(ok=True))
        cur = _suite(a=_bench(ok=False, seconds=0.1))
        assert any("fails now" in p for p in compare(base, cur))

    def test_claim_regression_flagged(self):
        base = _suite(a=_bench(holds=True))
        cur = _suite(a=_bench(holds=False))
        assert any("claim" in p for p in compare(base, cur))

    def test_extra_bench_ignored(self):
        base = _suite(a=_bench())
        cur = _suite(a=_bench(), b=_bench())
        assert compare(base, cur) == []


class TestCli:
    def test_run_writes_suite_and_exits_zero(self, bench_dir, tmp_path,
                                             capsys):
        out = tmp_path / "SUITE.json"
        rc = main(["--root", str(bench_dir), "-o", str(out), "--jobs", "2"])
        assert rc == 0
        suite = load_suite(str(out))
        assert set(suite["benches"]) == {
            "bench_fake_standalone", "bench_fake_pytest"}
        assert "bench suite:" in capsys.readouterr().out

    def test_compare_against_baseline_regression(self, bench_dir,
                                                 tmp_path, capsys):
        out = tmp_path / "SUITE.json"
        assert main(["--root", str(bench_dir), "-o", str(out)]) == 0
        baseline = load_suite(str(out))
        baseline["benches"]["bench_injected"] = _bench()
        base_path = tmp_path / "BASELINE.json"
        write_suite(baseline, str(base_path))
        rc = main(["--root", str(bench_dir), "-o", str(out),
                   "--compare", str(base_path)])
        assert rc == 1
        assert "bench_injected" in capsys.readouterr().out

    def test_compare_only_paths(self, tmp_path, capsys):
        clean = _suite(a=_bench(seconds=1.0))
        slower = _suite(a=_bench(seconds=9.0))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_suite(clean, str(a))
        write_suite(slower, str(b))
        assert main(["--compare-only", str(a), str(a)]) == 0
        assert main(["--compare-only", str(a), str(b)]) == 1
        assert main(["--compare-only", str(b), str(a)]) == 0  # faster: fine

    def test_failing_bench_fails_run(self, bench_dir, tmp_path):
        (bench_dir / "bench_fake_failing.py").write_text(
            FAILING_PYTEST_BENCH)
        rc = main(["--root", str(bench_dir),
                   "-o", str(tmp_path / "S.json"), "--jobs", "1"])
        assert rc == 1

    def test_module_entry_point(self, bench_dir, tmp_path):
        src = Path(__file__).resolve().parents[1] / "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench",
             "--root", str(bench_dir),
             "-o", str(tmp_path / "S.json")],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "S.json").exists()
