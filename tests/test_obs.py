"""Tests for repro.obs: tracer, timeline, invariant checker, CLI.

The flagship assertions mirror the acceptance criteria: the E1
(Section 1.5) scenario traced under naive LSNs must trip the
page-lsn-monotonic invariant, the same scenario under USN must check
clean, and tracing must not perturb the simulation (same stats
counters with and without a recording tracer).
"""

import json

import pytest

from repro.harness.experiment import ExperimentResult, Table
from repro.obs import (
    NULL_TRACER,
    TraceEvent,
    Tracer,
    check_trace,
    load_trace,
    render_timeline,
    summarize_trace,
)
from repro.obs import events as ev
from repro.obs.capture import capture_e1
from repro.obs.cli import main as trace_cli
from repro.obs.invariants import first_violation, render_violations
from repro.obs.tracer import _jsonable


# ----------------------------------------------------------------------
# tracer core
# ----------------------------------------------------------------------
class TestTracer:
    def test_null_tracer_swallows_everything(self):
        NULL_TRACER.emit("x.y", system=1, a=1)
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.enabled is False

    def test_emit_assigns_monotonic_seq(self):
        tracer = Tracer()
        tracer.emit("a.b", system=1)
        tracer.emit("c.d", system=2, x=1)
        seqs = [e.seq for e in tracer.events()]
        assert seqs == [1, 2]

    def test_kind_field_does_not_collide_with_event_kind(self):
        tracer = Tracer()
        tracer.emit(ev.PAGE_UPDATE, system=1, kind="UPDATE", page=5)
        event = tracer.events()[0]
        assert event.kind == ev.PAGE_UPDATE
        assert event.fields["kind"] == "UPDATE"

    def test_clock_registration_stamps_readings(self):
        from repro.common.clock import SkewedClock

        tracer = Tracer()
        tracer.register_clock(1, SkewedClock(offset=10.0, rate=2.0))
        tracer.emit("a", system=1)
        tracer.emit("b", system=2)  # no clock registered
        with_clock, without = tracer.events()
        assert with_clock.clock is not None
        assert with_clock.ticks == 1
        assert without.clock is None

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.emit("a.b", system=1, page=5, data=b"\x01\x02",
                    res=("record", 5, 0))
        path = tmp_path / "t.jsonl"
        assert tracer.write(str(path)) == 1
        events = load_trace(str(path))
        assert len(events) == 1
        assert events[0].kind == "a.b"
        assert events[0].fields["data"] == "0x0102"
        assert events[0].fields["res"] == ["record", 5, 0]

    def test_canonical_json_is_sorted_and_compact(self):
        event = TraceEvent(seq=1, system=2, kind="k", fields={"b": 1, "a": 2})
        line = event.to_json()
        assert " " not in line
        data = json.loads(line)
        assert list(data) == sorted(data)

    def test_jsonable_coercions(self):
        assert _jsonable(b"\xff") == "0xff"
        assert _jsonable((1, 2)) == [1, 2]
        assert _jsonable({1: b"a"}) == {"1": "0x61"}
        assert _jsonable(True) is True
        assert _jsonable(None) is None


# ----------------------------------------------------------------------
# timeline rendering
# ----------------------------------------------------------------------
class TestTimeline:
    def _trace(self):
        tracer = Tracer()
        tracer.emit(ev.LOG_APPEND, system=1, lsn=5, page=64)
        tracer.emit(ev.NET_MSG, system=2, src=2, dst=1, kind="x", nbytes=100)
        tracer.emit(ev.PAGE_UPDATE, system=1, page=64, lsn=6,
                    page_lsn_prev=5, kind="UPDATE", txn=7)
        return tracer.events()

    def test_render_has_column_per_system(self):
        out = render_timeline(self._trace())
        header = out.splitlines()[0]
        assert "sys1" in header and "sys2" in header

    def test_render_truncates(self):
        out = render_timeline(self._trace(), max_rows=2)
        assert "(1 more events)" in out

    def test_empty_trace(self):
        assert render_timeline([]) == "(empty trace)"

    def test_single_system_trace(self):
        tracer = Tracer()
        tracer.emit(ev.LOG_APPEND, system=3, lsn=1)
        tracer.emit(ev.LOG_FORCE, system=3, up_to=1)
        out = render_timeline(tracer.events())
        header = out.splitlines()[0]
        assert "sys3" in header and "sys1" not in header
        assert len(out.splitlines()) == 4  # header, rule, two events

    def test_width_clamps_labels_with_ellipsis(self):
        out = render_timeline(self._trace(), column_width=12)
        body = out.splitlines()[2:]
        labels = [line.split("  ")[-1].strip() for line in body]
        assert any(label.endswith("…") for label in labels)
        assert all(len(label) <= 12 for label in labels)

    def test_max_rows_zero_means_unlimited(self):
        out = render_timeline(self._trace(), max_rows=0)
        assert "more events" not in out
        assert len(out.splitlines()) == 2 + len(self._trace())

    def test_summary_tables(self):
        tables, metrics = summarize_trace(self._trace())
        titles = [t for t, _ in tables]
        assert "events by kind / system" in titles
        assert "page_LSN stamp history" in titles
        assert "message size distribution" in titles
        assert metrics.get_labeled("trace.events", kind=ev.LOG_APPEND) == 1
        hist = metrics.histograms()["trace.message_bytes"]
        assert hist.total == 1


# ----------------------------------------------------------------------
# invariant checker on synthetic traces
# ----------------------------------------------------------------------
def _ev(seq, system, kind, /, **fields):
    return TraceEvent(seq=seq, system=system, kind=kind, fields=fields)


class TestInvariants:
    def test_clean_trace_passes(self):
        events = [
            _ev(1, 0, ev.LOCK_GRANT, owner=7, resource=["page", 64]),
            _ev(2, 1, ev.PAGE_UPDATE, page=64, lsn=6, page_lsn_prev=5,
                kind="UPDATE", txn=7),
            _ev(3, 0, ev.LOCK_RELEASE_ALL, owner=7),
        ]
        assert check_trace(events) == []

    def test_page_lsn_regression_flagged(self):
        events = [
            _ev(1, 1, ev.PAGE_UPDATE, page=64, lsn=3, page_lsn_prev=10,
                kind="CLR", txn=None),
        ]
        found = check_trace(events)
        assert first_violation(found, "page-lsn-monotonic") is not None

    def test_redo_below_page_lsn_flagged(self):
        events = [
            _ev(1, 1, ev.RECOVERY_REDO, page=64, lsn=3, page_lsn_prev=10),
        ]
        found = check_trace(events)
        invs = {v.invariant for v in found}
        assert "redo-screening" in invs

    def test_wrong_skip_flagged(self):
        events = [_ev(1, 1, ev.RECOVERY_SKIP, page=64, lsn=9, page_lsn=3)]
        found = check_trace(events)
        assert first_violation(found, "redo-screening") is not None

    def test_correct_redo_and_skip_clean(self):
        events = [
            _ev(1, 1, ev.RECOVERY_REDO, page=64, lsn=11, page_lsn_prev=10),
            _ev(2, 1, ev.RECOVERY_SKIP, page=64, lsn=9, page_lsn=11),
        ]
        assert check_trace(events) == []

    def test_update_without_lock_flagged(self):
        events = [
            _ev(1, 1, ev.PAGE_UPDATE, page=64, lsn=6, page_lsn_prev=5,
                kind="UPDATE", txn=7),
        ]
        found = check_trace(events)
        assert first_violation(found, "update-under-lock") is not None

    def test_update_under_record_lock_clean(self):
        events = [
            _ev(1, 0, ev.LOCK_GRANT, owner=7, resource=["record", 64, 0]),
            _ev(2, 1, ev.PAGE_UPDATE, page=64, lsn=6, page_lsn_prev=5,
                kind="UPDATE", txn=7),
        ]
        assert check_trace(events) == []

    def test_released_lock_no_longer_covers(self):
        events = [
            _ev(1, 0, ev.LOCK_GRANT, owner=7, resource=["page", 64]),
            _ev(2, 0, ev.LOCK_RELEASE, owner=7, resource=["page", 64]),
            _ev(3, 1, ev.PAGE_UPDATE, page=64, lsn=6, page_lsn_prev=5,
                kind="UPDATE", txn=7),
        ]
        found = check_trace(events)
        assert first_violation(found, "update-under-lock") is not None

    def test_smp_and_clr_stamps_exempt_from_lock_check(self):
        events = [
            _ev(1, 1, ev.PAGE_UPDATE, page=1, lsn=6, page_lsn_prev=5,
                kind="SMP_UPDATE", txn=7),
            _ev(2, 1, ev.PAGE_UPDATE, page=2, lsn=8, page_lsn_prev=7,
                kind="CLR", txn=7),
        ]
        assert check_trace(events) == []

    def test_lamport_merge_backwards_flagged(self):
        events = [
            _ev(1, 1, ev.LSN_OBSERVE, remote=10, before=5, after=5),
        ]
        found = check_trace(events)
        assert first_violation(found, "lamport") is not None

    def test_lamport_merge_correct_clean(self):
        events = [
            _ev(1, 1, ev.LSN_OBSERVE, remote=10, before=5, after=10),
            _ev(2, 1, ev.LSN_OBSERVE, remote=3, before=10, after=10),
        ]
        assert check_trace(events) == []

    def test_render_violations_all_clear(self):
        assert "OK" in render_violations([])

    def test_render_violations_lists_each(self):
        found = check_trace(
            [_ev(1, 1, ev.PAGE_UPDATE, page=64, lsn=3, page_lsn_prev=10,
                 kind="CLR")]
        )
        text = render_violations(found)
        assert "1 violation(s)" in text
        assert "seq=1" in text


# ----------------------------------------------------------------------
# the flagship integration: E1 traced under naive vs USN LSNs
# ----------------------------------------------------------------------
class TestE1Capture:
    def test_naive_run_trips_page_lsn_monotonicity(self):
        tracer, summary = capture_e1("naive")
        assert summary["committed_update_survived"] is False
        violations = check_trace(tracer.events())
        hit = first_violation(violations, "page-lsn-monotonic")
        assert hit is not None, "naive LSNs must regress page_LSN on E1"
        assert "Section 1.5" in hit.message

    def test_usn_run_is_invariant_clean(self):
        tracer, summary = capture_e1("usn")
        assert summary["committed_update_survived"] is True
        assert check_trace(tracer.events()) == []

    def test_usn_trace_shows_lamport_exchanges(self):
        tracer, _ = capture_e1("usn")
        kinds = {e.kind for e in tracer.events()}
        assert ev.LSN_OBSERVE in kinds
        assert ev.PAGE_TRANSFER in kinds
        assert ev.RECOVERY_REDO in kinds

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            capture_e1("bogus")

    def test_tracing_does_not_perturb_the_run(self):
        """Tracing must be a pure observer: the traced and untraced
        runs of one scenario produce identical stats counters and the
        same survivor — the null tracer mints no counters of its own."""
        from repro.sd.complex import SDComplex

        def run(tracer):
            complex_ = SDComplex(n_data_pages=128, tracer=tracer)
            s1 = complex_.add_instance(1, lock_granularity="page")
            s2 = complex_.add_instance(2, lock_granularity="page")
            txn = s2.begin()
            page_id = s2.allocate_page(txn)
            slot = s2.insert(txn, page_id, b"original")
            s2.commit(txn)
            t1 = s1.begin()
            s1.update(t1, page_id, slot, b"t1")
            s1.commit(t1)
            complex_.crash_instance(1)
            complex_.restart_instance(1)
            survivor = complex_.disk.read_page(page_id).read_record(slot)
            return complex_.stats.snapshot(), survivor

        untraced_counters, untraced_survivor = run(None)
        traced_counters, traced_survivor = run(Tracer())
        assert traced_counters == untraced_counters
        assert traced_survivor == untraced_survivor


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_capture_and_render(self, tmp_path, capsys):
        out = tmp_path / "e1.jsonl"
        assert trace_cli(["--capture", "e1-usn", "-o", str(out)]) == 0
        capsys.readouterr()
        assert trace_cli([str(out), "--check"]) == 0
        rendered = capsys.readouterr().out
        assert "sys1" in rendered
        assert "invariants: OK" in rendered

    def test_check_exits_one_on_violation(self, tmp_path, capsys):
        out = tmp_path / "e1_naive.jsonl"
        assert trace_cli(["--capture", "e1-naive", "-o", str(out)]) == 0
        capsys.readouterr()
        assert trace_cli([str(out), "--check"]) == 1
        assert "page-lsn-monotonic" in capsys.readouterr().out

    def test_no_args_is_usage_error(self, capsys):
        assert trace_cli([]) == 2

    def test_bench_render(self, tmp_path, capsys):
        result = ExperimentResult("EX", "claim text")
        result.record("m", 1)
        table = Table(["a", "b"])
        table.add_row(1, 2)
        result.add_table("demo", table)
        result.conclude(True)
        path = tmp_path / "BENCH_EX.json"
        path.write_text(json.dumps(result.to_dict()))
        assert trace_cli(["--bench", str(path)]) == 0
        out = capsys.readouterr().out
        assert "[EX] HOLDS: claim text" in out
        assert "demo" in out

    def test_missing_trace_file_is_one_line_exit_2(self, capsys):
        assert trace_cli(["/nonexistent/trace.jsonl"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "no such trace file" in err

    def test_empty_trace_file_is_one_line_exit_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert trace_cli(["summary", str(empty)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "empty" in err

    def _captured(self, tmp_path, capsys, scenario="e7-restart"):
        out = tmp_path / f"{scenario}.jsonl"
        assert trace_cli(["--capture", scenario, "-o", str(out)]) == 0
        capsys.readouterr()
        return str(out)

    def test_summary_json(self, tmp_path, capsys):
        path = self._captured(tmp_path, capsys)
        assert trace_cli(["summary", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["systems"] == [0, 1]
        assert payload["events"] > 0
        counters = payload["metrics"]["counters"]
        assert counters["trace.events{kind=span.begin}"] == \
            counters["trace.events{kind=span.end}"]

    def test_summary_json_check_reports_violations(self, tmp_path, capsys):
        path = self._captured(tmp_path, capsys, scenario="e1-naive")
        assert trace_cli(["summary", path, "--json", "--check"]) == 1
        payload = json.loads(capsys.readouterr().out)
        invariants = {v["invariant"] for v in payload["violations"]}
        assert "page-lsn-monotonic" in invariants

    def test_spans_subcommand(self, tmp_path, capsys):
        path = self._captured(tmp_path, capsys)
        assert trace_cli(["spans", path]) == 0
        out = capsys.readouterr().out
        assert "restart" in out and "incl=" in out

    def test_critical_path_subcommand(self, tmp_path, capsys):
        path = self._captured(tmp_path, capsys)
        assert trace_cli(["critical-path", path, "--root", "restart"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("critical path:")
        assert "self-ticks" in out

    def test_critical_path_no_match_exits_one(self, tmp_path, capsys):
        path = self._captured(tmp_path, capsys)
        assert trace_cli(["critical-path", path, "--root", "nope"]) == 1
        assert "no matching root span" in capsys.readouterr().err

    def test_export_perfetto_subcommand(self, tmp_path, capsys):
        from repro.obs.export import validate_perfetto

        path = self._captured(tmp_path, capsys)
        out_file = tmp_path / "trace.perfetto.json"
        assert trace_cli(
            ["export", path, "--perfetto", "-o", str(out_file)]) == 0
        validate_perfetto(json.loads(out_file.read_text()))

    def test_export_prom_subcommand(self, tmp_path, capsys):
        path = self._captured(tmp_path, capsys)
        assert trace_cli(["export", path, "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE trace_events counter" in out

    def test_diff_subcommand(self, tmp_path, capsys):
        path = self._captured(tmp_path, capsys)
        assert trace_cli(["diff", path, path]) == 0
        assert "(no span differences)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# ExperimentResult round trip
# ----------------------------------------------------------------------
class TestExperimentResult:
    def test_round_trip_preserves_tables_and_counters(self):
        result = ExperimentResult("E9", "media recovery works")
        result.record("pages", 7)
        result.counters = {"log.records_written": 12}
        table = Table(["x"])
        table.add_row(3.14159)
        result.add_table("t", table)
        result.conclude(True)
        clone = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone.render() == result.render()
        assert clone.counters == result.counters
        assert clone.holds is True

    def test_attach_stats_snapshots_counters_and_histograms(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        metrics.incr("a.b", 3)
        metrics.observe("h", 5)
        result = ExperimentResult("EX", "c")
        result.attach_stats(metrics)
        assert result.counters == {"a.b": 3}
        assert result.histograms["h"]["total"] == 1

    def test_table_from_dict_validates_width(self):
        with pytest.raises(ValueError):
            Table.from_dict({"columns": ["a"], "rows": [["1", "2"]]})
