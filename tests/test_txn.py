"""Tests for transactions and the transaction manager."""

import pytest

from repro.common.config import NULL_LSN
from repro.txn.manager import TransactionManager, _SYSTEM_STRIDE
from repro.txn.transaction import Transaction, TxnState


class TestTransaction:
    def test_note_logged_sets_first_and_last(self):
        txn = Transaction(txn_id=1, system_id=1)
        txn.note_logged(10, 0, undoable=True)
        txn.note_logged(15, 64, undoable=True)
        assert txn.first_lsn == 10
        assert txn.last_lsn == 15

    def test_undo_entries_track_undoable_only(self):
        txn = Transaction(txn_id=1, system_id=1)
        txn.note_logged(10, 0, undoable=True)
        txn.note_logged(11, 64, undoable=False)  # e.g. a CLR
        assert [e.lsn for e in txn.undo_entries] == [10]

    def test_is_update_transaction(self):
        txn = Transaction(txn_id=1, system_id=1)
        assert not txn.is_update_transaction()
        txn.note_logged(5, 0, undoable=False)
        assert txn.is_update_transaction()

    def test_savepoint_slicing(self):
        txn = Transaction(txn_id=1, system_id=1)
        txn.note_logged(1, 0, undoable=True)
        txn.set_savepoint("sp")
        txn.note_logged(2, 64, undoable=True)
        txn.note_logged(3, 128, undoable=True)
        since = txn.entries_since_savepoint("sp")
        assert [e.lsn for e in since] == [3, 2]  # newest first

    def test_truncate_to_savepoint(self):
        txn = Transaction(txn_id=1, system_id=1)
        txn.note_logged(1, 0, undoable=True)
        txn.set_savepoint("sp")
        txn.note_logged(2, 64, undoable=True)
        txn.truncate_to_savepoint("sp")
        assert [e.lsn for e in txn.undo_entries] == [1]

    def test_truncate_drops_later_savepoints(self):
        txn = Transaction(txn_id=1, system_id=1)
        txn.set_savepoint("a")
        txn.note_logged(1, 0, undoable=True)
        txn.set_savepoint("b")
        txn.truncate_to_savepoint("a")
        assert "b" not in txn.savepoints
        assert "a" in txn.savepoints

    def test_unknown_savepoint_raises(self):
        txn = Transaction(txn_id=1, system_id=1)
        with pytest.raises(KeyError):
            txn.entries_since_savepoint("nope")


class TestTransactionManager:
    def test_ids_embed_system(self):
        tm = TransactionManager(3)
        txn = tm.begin()
        assert txn.txn_id // _SYSTEM_STRIDE == 3

    def test_ids_unique_and_increasing(self):
        tm = TransactionManager(1)
        ids = [tm.begin().txn_id for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_active_iteration(self):
        tm = TransactionManager(1)
        a = tm.begin()
        b = tm.begin()
        tm.end(a)
        assert [t.txn_id for t in tm.active()] == [b.txn_id]

    def test_end_removes(self):
        tm = TransactionManager(1)
        txn = tm.begin()
        tm.end(txn)
        assert txn.state == TxnState.ENDED
        with pytest.raises(KeyError):
            tm.get(txn.txn_id)

    def test_oldest_active_first_lsn(self):
        tm = TransactionManager(1)
        a = tm.begin()
        b = tm.begin()
        a.note_logged(50, 0, undoable=True)
        b.note_logged(20, 0, undoable=True)
        assert tm.oldest_active_first_lsn() == 20

    def test_oldest_ignores_read_only(self):
        tm = TransactionManager(1)
        tm.begin()  # never logs
        a = tm.begin()
        a.note_logged(30, 0, undoable=True)
        assert tm.oldest_active_first_lsn() == 30

    def test_oldest_none_when_no_updates(self):
        tm = TransactionManager(1)
        tm.begin()
        assert tm.oldest_active_first_lsn() is None

    def test_crash_clears(self):
        tm = TransactionManager(1)
        tm.begin()
        tm.crash()
        assert tm.active_count() == 0
