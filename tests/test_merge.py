"""Tests for log merging: LSN-only (USN) vs (page, LSN) (Lomet)."""

from hypothesis import given, settings, strategies as st

from repro.common.stats import MERGE_COMPARISONS, StatsRegistry
from repro.wal.log_manager import LogManager
from repro.wal.merge import lomet_merge, merge_local_logs, merged_records_for_page
from repro.wal.records import make_update
from repro.baselines.lomet import LometLogManager


def usn_logs(assignments):
    """Build logs from {system_id: [(page_id, hint), ...]}."""
    logs = []
    for system_id, updates in assignments.items():
        log = LogManager(system_id)
        for page_id, hint in updates:
            log.append(make_update(1, system_id, page_id, 0, b"r", b"u"),
                       page_lsn=hint)
        logs.append(log)
    return logs


class TestUsnMerge:
    def test_merged_stream_sorted_by_lsn(self):
        logs = usn_logs({
            1: [(10, 0), (11, 5), (10, 20)],
            2: [(12, 3), (10, 9)],
        })
        merged = [r.lsn for _, r in merge_local_logs(logs)]
        assert merged == sorted(merged)

    def test_all_records_present(self):
        logs = usn_logs({1: [(10, 0)] * 5, 2: [(11, 0)] * 7})
        assert len(list(merge_local_logs(logs))) == 12

    def test_equal_lsns_allowed_for_different_pages(self):
        """Two local logs may assign the same LSN — necessarily to
        different pages — and the merge may order them either way."""
        a = LogManager(1)
        a.append(make_update(1, 1, 10, 0, b"r", b"u"))       # LSN 1
        b = LogManager(2)
        b.append(make_update(2, 2, 11, 0, b"r", b"u"))       # LSN 1
        merged = list(merge_local_logs([a, b]))
        assert {r.page_id for _, r in merged} == {10, 11}
        assert [r.lsn for _, r in merged] == [1, 1]

    def test_from_offsets_shortens_scan(self):
        log = LogManager(1)
        log.append(make_update(1, 1, 10, 0, b"r", b"u"))
        cut = log.end_offset
        log.append(make_update(1, 1, 11, 0, b"r", b"u"))
        merged = list(merge_local_logs([log], from_offsets={1: cut}))
        assert [r.page_id for _, r in merged] == [11]

    def test_comparison_counting(self):
        stats = StatsRegistry()
        logs = usn_logs({1: [(10, 0)] * 50, 2: [(11, 0)] * 50})
        list(merge_local_logs(logs, stats=stats))
        assert stats.get(MERGE_COMPARISONS) > 0

    def test_per_page_filter(self):
        logs = usn_logs({1: [(10, 0), (11, 0), (10, 50)], 2: [(10, 5)]})
        entries = merged_records_for_page(logs, 10)
        lsns = [r.lsn for _, r in entries]
        assert all(r.page_id == 10 for _, r in entries)
        assert lsns == sorted(lsns)
        assert len(lsns) == 3


def lomet_logs(assignments):
    """Build Lomet logs from {system_id: [(page_id, before_lsn), ...]}."""
    logs = []
    for system_id, updates in assignments.items():
        log = LometLogManager(system_id)
        for page_id, before in updates:
            log.append(make_update(1, system_id, page_id, 0, b"r", b"u"),
                       page_lsn=before)
        logs.append(log)
    return logs


class TestLometMerge:
    def test_lomet_local_log_not_lsn_sorted(self):
        """The premise of Section 4.2: per-page sequences make a local
        log's LSNs jump around."""
        log = lomet_logs({1: [(10, 100), (11, 2), (10, 101)]})[0]
        lsns = [r.lsn for _, r in log.scan()]
        assert lsns == [101, 3, 102]
        assert lsns != sorted(lsns)

    def test_per_page_order_preserved(self):
        logs = lomet_logs({
            1: [(10, 0), (11, 5), (10, 1)],
            2: [(10, 2), (11, 6)],
        })
        merged = list(lomet_merge(logs))
        by_page = {}
        for _, record in merged:
            by_page.setdefault(record.page_id, []).append(record.lsn)
        for lsns in by_page.values():
            assert lsns == sorted(lsns)

    def test_all_records_present(self):
        logs = lomet_logs({1: [(10, i) for i in range(5)],
                           2: [(11, i) for i in range(7)]})
        assert len(list(lomet_merge(logs))) == 12

    def test_lomet_needs_more_comparisons_than_usn(self):
        """The E3 claim, in miniature: same logical workload, the
        (page, LSN) merge pays more comparisons than the LSN-only one."""
        updates = {1: [(10 + (i % 4), i) for i in range(100)],
                   2: [(20 + (i % 4), i) for i in range(100)]}
        usn_stats = StatsRegistry()
        list(merge_local_logs(usn_logs(
            {s: [(p, 0) for p, _ in ups] for s, ups in updates.items()}
        ), stats=usn_stats))
        lomet_stats = StatsRegistry()
        list(lomet_merge(lomet_logs(updates), stats=lomet_stats))
        assert (lomet_stats.get(MERGE_COMPARISONS)
                > usn_stats.get(MERGE_COMPARISONS))


@settings(max_examples=40, deadline=None)
@given(
    per_log=st.lists(
        st.lists(st.tuples(st.integers(10, 20), st.integers(0, 50)),
                 max_size=30),
        min_size=1, max_size=4,
    )
)
def test_property_usn_merge_is_sorted_and_complete(per_log):
    logs = usn_logs({i + 1: ups for i, ups in enumerate(per_log)})
    merged = list(merge_local_logs(logs))
    lsns = [r.lsn for _, r in merged]
    assert lsns == sorted(lsns)
    assert len(merged) == sum(len(ups) for ups in per_log)


@settings(max_examples=40, deadline=None)
@given(
    per_log=st.lists(
        st.lists(st.integers(10, 14), max_size=30),
        min_size=1, max_size=4,
    )
)
def test_property_lomet_merge_preserves_per_page_runs(per_log):
    """Each (log, page) run must appear in its original order."""
    logs = []
    expected_runs = {}
    for i, pages in enumerate(per_log):
        system_id = i + 1
        log = LometLogManager(system_id)
        page_versions = {}
        for page_id in pages:
            before = page_versions.get(page_id, 0)
            record = make_update(1, system_id, page_id, 0, b"r", b"u")
            log.append(record, page_lsn=before)
            page_versions[page_id] = record.lsn
            expected_runs.setdefault((system_id, page_id), []).append(record.lsn)
        logs.append(log)
    merged = list(lomet_merge(logs))
    seen_runs = {}
    for addr, record in merged:
        seen_runs.setdefault((addr.system_id, record.page_id),
                             []).append(record.lsn)
    assert seen_runs == expected_runs
