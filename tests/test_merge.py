"""Tests for log merging: LSN-only (USN) vs (page, LSN) (Lomet)."""

from hypothesis import given, settings, strategies as st

from repro.common.stats import MERGE_COMPARISONS, StatsRegistry
from repro.wal.log_manager import LogManager
from repro.wal.merge import lomet_merge, merge_local_logs, merged_records_for_page
from repro.wal.records import make_update
from repro.baselines.lomet import LometLogManager


def usn_logs(assignments):
    """Build logs from {system_id: [(page_id, hint), ...]}."""
    logs = []
    for system_id, updates in assignments.items():
        log = LogManager(system_id)
        for page_id, hint in updates:
            log.append(make_update(1, system_id, page_id, 0, b"r", b"u"),
                       page_lsn=hint)
        logs.append(log)
    return logs


class TestUsnMerge:
    def test_merged_stream_sorted_by_lsn(self):
        logs = usn_logs({
            1: [(10, 0), (11, 5), (10, 20)],
            2: [(12, 3), (10, 9)],
        })
        merged = [r.lsn for _, r in merge_local_logs(logs)]
        assert merged == sorted(merged)

    def test_all_records_present(self):
        logs = usn_logs({1: [(10, 0)] * 5, 2: [(11, 0)] * 7})
        assert len(list(merge_local_logs(logs))) == 12

    def test_equal_lsns_allowed_for_different_pages(self):
        """Two local logs may assign the same LSN — necessarily to
        different pages — and the merge may order them either way."""
        a = LogManager(1)
        a.append(make_update(1, 1, 10, 0, b"r", b"u"))       # LSN 1
        b = LogManager(2)
        b.append(make_update(2, 2, 11, 0, b"r", b"u"))       # LSN 1
        merged = list(merge_local_logs([a, b]))
        assert {r.page_id for _, r in merged} == {10, 11}
        assert [r.lsn for _, r in merged] == [1, 1]

    def test_from_offsets_shortens_scan(self):
        log = LogManager(1)
        log.append(make_update(1, 1, 10, 0, b"r", b"u"))
        cut = log.end_offset
        log.append(make_update(1, 1, 11, 0, b"r", b"u"))
        merged = list(merge_local_logs([log], from_offsets={1: cut}))
        assert [r.page_id for _, r in merged] == [11]

    def test_comparison_counting(self):
        stats = StatsRegistry()
        logs = usn_logs({1: [(10, 0)] * 50, 2: [(11, 0)] * 50})
        list(merge_local_logs(logs, stats=stats))
        assert stats.get(MERGE_COMPARISONS) > 0

    def test_per_page_filter(self):
        logs = usn_logs({1: [(10, 0), (11, 0), (10, 50)], 2: [(10, 5)]})
        entries = merged_records_for_page(logs, 10)
        lsns = [r.lsn for _, r in entries]
        assert all(r.page_id == 10 for _, r in entries)
        assert lsns == sorted(lsns)
        assert len(lsns) == 3


def lomet_logs(assignments):
    """Build Lomet logs from {system_id: [(page_id, before_lsn), ...]}."""
    logs = []
    for system_id, updates in assignments.items():
        log = LometLogManager(system_id)
        for page_id, before in updates:
            log.append(make_update(1, system_id, page_id, 0, b"r", b"u"),
                       page_lsn=before)
        logs.append(log)
    return logs


class TestLometMerge:
    def test_lomet_local_log_not_lsn_sorted(self):
        """The premise of Section 4.2: per-page sequences make a local
        log's LSNs jump around."""
        log = lomet_logs({1: [(10, 100), (11, 2), (10, 101)]})[0]
        lsns = [r.lsn for _, r in log.scan()]
        assert lsns == [101, 3, 102]
        assert lsns != sorted(lsns)

    def test_per_page_order_preserved(self):
        logs = lomet_logs({
            1: [(10, 0), (11, 5), (10, 1)],
            2: [(10, 2), (11, 6)],
        })
        merged = list(lomet_merge(logs))
        by_page = {}
        for _, record in merged:
            by_page.setdefault(record.page_id, []).append(record.lsn)
        for lsns in by_page.values():
            assert lsns == sorted(lsns)

    def test_all_records_present(self):
        logs = lomet_logs({1: [(10, i) for i in range(5)],
                           2: [(11, i) for i in range(7)]})
        assert len(list(lomet_merge(logs))) == 12

    def test_lomet_needs_more_comparisons_than_usn(self):
        """The E3 claim, in miniature: same logical workload, the
        (page, LSN) merge pays more comparisons than the LSN-only one."""
        updates = {1: [(10 + (i % 4), i) for i in range(100)],
                   2: [(20 + (i % 4), i) for i in range(100)]}
        usn_stats = StatsRegistry()
        list(merge_local_logs(usn_logs(
            {s: [(p, 0) for p, _ in ups] for s, ups in updates.items()}
        ), stats=usn_stats))
        lomet_stats = StatsRegistry()
        list(lomet_merge(lomet_logs(updates), stats=lomet_stats))
        assert (lomet_stats.get(MERGE_COMPARISONS)
                > usn_stats.get(MERGE_COMPARISONS))


@settings(max_examples=40, deadline=None)
@given(
    per_log=st.lists(
        st.lists(st.tuples(st.integers(10, 20), st.integers(0, 50)),
                 max_size=30),
        min_size=1, max_size=4,
    )
)
def test_property_usn_merge_is_sorted_and_complete(per_log):
    logs = usn_logs({i + 1: ups for i, ups in enumerate(per_log)})
    merged = list(merge_local_logs(logs))
    lsns = [r.lsn for _, r in merged]
    assert lsns == sorted(lsns)
    assert len(merged) == sum(len(ups) for ups in per_log)


@settings(max_examples=40, deadline=None)
@given(
    per_log=st.lists(
        st.lists(st.integers(10, 14), max_size=30),
        min_size=1, max_size=4,
    )
)
def test_property_lomet_merge_preserves_per_page_runs(per_log):
    """Each (log, page) run must appear in its original order."""
    logs = []
    expected_runs = {}
    for i, pages in enumerate(per_log):
        system_id = i + 1
        log = LometLogManager(system_id)
        page_versions = {}
        for page_id in pages:
            before = page_versions.get(page_id, 0)
            record = make_update(1, system_id, page_id, 0, b"r", b"u")
            log.append(record, page_lsn=before)
            page_versions[page_id] = record.lsn
            expected_runs.setdefault((system_id, page_id), []).append(record.lsn)
        logs.append(log)
    merged = list(lomet_merge(logs))
    seen_runs = {}
    for addr, record in merged:
        seen_runs.setdefault((addr.system_id, record.page_id),
                             []).append(record.lsn)
    assert seen_runs == expected_runs


class TestIncrementalMerge:
    """Generator-driven consumption: the merge is the log shipper's
    steady-state input, so it must stream lazily, resume from byte
    cursors, and honour the stable (forced) boundary."""

    def test_merge_is_lazy(self):
        """Consuming one entry must not exhaust the source scans."""
        logs = usn_logs({1: [(10, 0)] * 100, 2: [(11, 0)] * 100})
        stats = StatsRegistry()
        stream = merge_local_logs(logs, stats=stats)
        next(stream)
        partial = stats.get(MERGE_COMPARISONS)
        list(stream)
        assert partial < stats.get(MERGE_COMPARISONS)

    def test_cursor_resume_covers_later_appends(self):
        """The shipper pattern: merge, remember end offsets, append
        more, merge again from the cursors — the two passes together
        see every record exactly once."""
        logs = usn_logs({1: [(10, 0)] * 3, 2: [(11, 0)] * 2})
        first_pass = list(merge_local_logs(logs))
        cursors = {log.system_id: log.end_offset for log in logs}
        logs[0].append(make_update(1, 1, 12, 0, b"r", b"u"))
        logs[1].append(make_update(2, 2, 13, 0, b"r", b"u"))
        second_pass = list(merge_local_logs(logs, from_offsets=cursors))
        assert len(first_pass) == 5
        # System 2's new record carries the lower LSN (3 vs 4), so the
        # resumed merge yields page 13 first.
        assert [r.page_id for _, r in second_pass] == [13, 12]
        seen = [(a.system_id, a.offset) for a, _ in first_pass + second_pass]
        assert len(seen) == len(set(seen))

    def test_cursor_resume_with_empty_source_joining_mid_stream(self):
        """A log that joins the fleet between passes — empty on its
        first resume, populated by the next — must neither break the
        heap seed nor duplicate records once it has some."""
        logs = usn_logs({1: [(10, 0)] * 2})
        first_pass = list(merge_local_logs(logs))
        cursors = {log.system_id: log.end_offset for log in logs}
        newcomer = LogManager(3)  # joins mid-stream, nothing logged yet
        logs.append(newcomer)
        cursors[3] = 0
        logs[0].append(make_update(1, 1, 11, 0, b"r", b"u"))
        second_pass = list(merge_local_logs(logs, from_offsets=cursors))
        # The empty newcomer contributes nothing and breaks nothing.
        assert [r.page_id for _, r in second_pass] == [11]
        cursors = {log.system_id: log.end_offset for log in logs}
        newcomer.append(make_update(3, 3, 12, 0, b"r", b"u"))
        third_pass = list(merge_local_logs(logs, from_offsets=cursors))
        # Now only the newcomer has new records; the exhausted sources
        # (cursor == end offset) yield empty remainders.
        assert [(a.system_id, r.page_id) for a, r in third_pass] \
            == [(3, 12)]
        seen = [(a.system_id, a.offset)
                for a, _ in first_pass + second_pass + third_pass]
        assert len(seen) == len(set(seen))

    def test_stable_only_stops_at_flushed_boundary(self):
        log = LogManager(1)
        log.append(make_update(1, 1, 10, 0, b"r", b"u"))
        log.force()
        log.append(make_update(1, 1, 11, 0, b"r", b"u"))  # volatile tail
        stable = [r.page_id for _, r in
                  merge_local_logs([log], stable_only=True)]
        everything = [r.page_id for _, r in merge_local_logs([log])]
        assert stable == [10]
        assert everything == [10, 11]
        log.force()
        assert [r.page_id for _, r in
                merge_local_logs([log], stable_only=True)] == [10, 11]

    def test_equal_lsn_tie_emits_both_exactly_once(self):
        """Ties across logs (same LSN, necessarily different pages) are
        both emitted, in non-decreasing LSN order, whatever tiebreak
        the heap picks."""
        a = LogManager(1)
        b = LogManager(2)
        for _ in range(3):
            a.append(make_update(1, 1, 10, 0, b"r", b"u"))
            b.append(make_update(2, 2, 11, 0, b"r", b"u"))
        merged = list(merge_local_logs([a, b]))
        lsns = [r.lsn for _, r in merged]
        assert lsns == sorted(lsns) == [1, 1, 2, 2, 3, 3]
        by_page = {}
        for _, record in merged:
            by_page.setdefault(record.page_id, []).append(record.lsn)
        assert by_page == {10: [1, 2, 3], 11: [1, 2, 3]}

    def test_equal_lsn_tie_stable_per_source_order(self):
        """Within one source the merge must preserve log order even
        through ties (the heap's tiebreak index guarantees it)."""
        a = LogManager(1)
        b = LogManager(2)
        a.append(make_update(1, 1, 10, 0, b"r", b"u"))    # LSN 1
        b.append(make_update(2, 2, 11, 0, b"r", b"u"))    # LSN 1
        b.append(make_update(2, 2, 12, 0, b"r", b"u"))    # LSN 2
        a.append(make_update(1, 1, 13, 0, b"r", b"u"))    # LSN 2
        merged = [(addr.system_id, record.lsn)
                  for addr, record in merge_local_logs([a, b])]
        for system_id in (1, 2):
            own = [lsn for sid, lsn in merged if sid == system_id]
            assert own == sorted(own)
