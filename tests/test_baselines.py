"""Tests for the three baseline schemes the paper compares against."""

import pytest

from repro import SDComplex
from repro.baselines.global_log import GlobalLogComplex
from repro.baselines.lomet import (
    LometComplex,
    LometLogManager,
    bsi_of,
    lomet_recover_page,
)
from repro.baselines.naive import NaiveDbmsInstance, NaiveLogManager
from repro.common.stats import GLOBAL_LOG_LOCKS, MERGE_COMPARISONS, StatsRegistry
from repro.storage.image_copy import ImageCopy
from repro.wal.records import make_update


class TestNaiveLogManager:
    def test_lsn_equals_address_plus_one(self):
        log = NaiveLogManager(1)
        first = make_update(1, 1, 10, 0, b"r", b"u")
        log.append(first)
        assert first.lsn == 1
        second = make_update(1, 1, 10, 0, b"r", b"u")
        log.append(second, page_lsn=10_000)   # hint ignored
        assert second.lsn == first.serialized_size() + 1

    def test_remote_max_ignored(self):
        log = NaiveLogManager(1)
        log.observe_remote_max(99999)
        record = make_update(1, 1, 10, 0, b"r", b"u")
        log.append(record)
        assert record.lsn == 1

    def test_monotonic_within_log(self):
        log = NaiveLogManager(1)
        previous = 0
        for _ in range(10):
            record = make_update(1, 1, 10, 0, b"r", b"u")
            log.append(record)
            assert record.lsn > previous
            previous = record.lsn


class TestNaiveInstance:
    def test_instance_recovers_fine_in_isolation(self):
        """Single system: naive LSNs are perfectly sound (the paper's
        point is that only *multi*-system sharing breaks them)."""
        complex_ = SDComplex(n_data_pages=128)
        s1 = complex_.add_instance(1, instance_cls=NaiveDbmsInstance)
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        slot = s1.insert(txn, page_id, b"solo")
        s1.commit(txn)
        complex_.crash_instance(1)
        complex_.restart_instance(1)
        assert complex_.disk.read_page(page_id).read_record(slot) == b"solo"

    # The cross-system anomaly itself is covered in
    # tests/test_sd_complex.py::TestSection15Anomaly.


class TestLometScheme:
    def test_per_page_lsn_sequence(self):
        log = LometLogManager(1)
        record = make_update(1, 1, 10, 0, b"r", b"u")
        log.append(record, page_lsn=5)
        assert record.lsn == 6
        assert bsi_of(record) == 5

    def test_update_and_recover_correctly(self):
        """Lomet recovers correctly — the comparison is about cost."""
        complex_ = LometComplex(n_data_pages=128)
        s1 = complex_.add_system(1)
        s2 = complex_.add_system(2)
        page_id = s1.allocate_page()
        slot = s1.insert(page_id, b"v0")
        s1.flush()
        dump = ImageCopy.take(complex_.disk)
        s1.update(page_id, slot, b"v1")
        s1.flush()
        s2.update(page_id, slot, b"v2")
        s2.flush()
        page = lomet_recover_page(page_id, dump, complex_.local_logs())
        assert page.read_record(slot) == b"v2"

    def test_redo_is_exact_match_not_greater_than(self):
        """Applying the merged stream twice must be idempotent under
        the equality test."""
        complex_ = LometComplex(n_data_pages=128)
        s1 = complex_.add_system(1)
        page_id = s1.allocate_page()
        slot = s1.insert(page_id, b"a")
        s1.update(page_id, slot, b"b")
        s1.flush()
        page = lomet_recover_page(page_id, None, complex_.local_logs())
        lsn_after = page.page_lsn
        # Re-run recovery starting from the recovered page: no record
        # matches page_lsn == BSI anymore.
        page2 = lomet_recover_page(page_id, None, complex_.local_logs())
        assert page2.page_lsn == lsn_after

    def test_dealloc_records_exact_lsn_in_smp(self):
        complex_ = LometComplex(n_data_pages=128)
        s1 = complex_.add_system(1)
        page_id = s1.allocate_page()
        slot = s1.insert(page_id, b"x")
        page = s1.pool.fix(page_id)
        lsn_before_dealloc = page.page_lsn
        page.delete_record(slot)
        s1.pool.unfix(page_id)
        s1.deallocate_page(page_id)
        geometry = complex_.space_map
        smp_slot = geometry.slot_for(page_id)
        smp_page = s1.pool.fix(smp_slot.smp_page_id)
        allocated, stored = geometry.read_entry(smp_page, smp_slot.index)
        s1.pool.unfix(smp_slot.smp_page_id)
        assert not allocated
        assert stored == lsn_before_dealloc

    def test_realloc_continues_page_sequence(self):
        complex_ = LometComplex(n_data_pages=128)
        s1 = complex_.add_system(1)
        page_id = s1.allocate_page()
        slot = s1.insert(page_id, b"x")
        page = s1.pool.fix(page_id)
        page.delete_record(slot)
        old_lsn = page.page_lsn
        s1.pool.unfix(page_id)
        s1.deallocate_page(page_id)
        new_page_id = s1.allocate_page(page_id=page_id)
        assert new_page_id == page_id
        new_lsn = s1.pool.bcb(page_id).page.page_lsn
        assert new_lsn == old_lsn + 1   # the sequence continues exactly

    def test_mass_delete_reads_every_page(self):
        complex_ = LometComplex(n_data_pages=128)
        s1 = complex_.add_system(1)
        pages = [s1.allocate_page() for _ in range(8)]
        s1.flush()
        # Drop them from the pool so the reads are real.
        for page_id in pages:
            if s1.pool.contains(page_id):
                s1.pool.drop_page(page_id)
        reads_before = complex_.stats.get("disk.page_reads")
        page_reads, log_records = s1.mass_delete(pages)
        assert page_reads == 8
        assert log_records == 8          # one SMP record per page
        assert complex_.stats.get("disk.page_reads") - reads_before >= 8

    def test_merge_cost_exceeds_usn(self):
        """E3 shape check at unit scale."""
        complex_ = LometComplex(n_data_pages=128)
        s1 = complex_.add_system(1)
        s2 = complex_.add_system(2)
        page_a = s1.allocate_page()
        slot = s1.insert(page_a, b"x")
        s1.flush()
        for i in range(30):
            system = (s1, s2)[i % 2]
            system.update(page_a, slot, b"v%02d" % i)
            # Hand the page over medium-transfer style: force to disk
            # and drop, so the other system reads the fresh version.
            system.pool.write_page(page_a)
            system.pool.drop_page(page_a)
        lomet_stats = StatsRegistry()
        from repro.wal.merge import lomet_merge
        list(lomet_merge(complex_.local_logs(), stats=lomet_stats))
        assert lomet_stats.get(MERGE_COMPARISONS) > 0


class TestGlobalLogBaseline:
    def build(self, n_systems=2):
        complex_ = GlobalLogComplex(n_data_pages=64)
        systems = [complex_.add_system(i + 1) for i in range(n_systems)]
        for page_id in range(complex_.data_start,
                             complex_.data_start + 4):
            complex_.format_page(page_id)
        return complex_, systems

    def test_commit_takes_one_global_lock(self):
        complex_, (s1, _) = self.build()
        page = complex_.data_start
        slot = s1.insert(txn_id=1, page_id=page, payload=b"a")
        before = complex_.stats.get(GLOBAL_LOG_LOCKS)
        s1.commit(1)
        assert complex_.stats.get(GLOBAL_LOG_LOCKS) == before + 1

    def test_force_before_commit_writes_pages(self):
        complex_, (s1, _) = self.build()
        page = complex_.data_start
        s1.insert(txn_id=1, page_id=page, payload=b"a")
        writes_before = complex_.stats.get("disk.page_writes")
        s1.commit(1)
        assert complex_.stats.get("disk.page_writes") == writes_before + 1
        assert complex_.disk.read_page(page).read_record(0) == b"a"

    def test_lock_cost_scales_with_commits(self):
        complex_, (s1, s2) = self.build()
        page = complex_.data_start
        for txn in range(1, 11):
            system = (s1, s2)[txn % 2]
            system.insert(txn_id=txn, page_id=page + txn % 4,
                          payload=b"p")
            system.commit(txn)
        assert complex_.stats.get(GLOBAL_LOG_LOCKS) == 10

    def test_usn_scheme_needs_zero_global_log_locks(self):
        """The E10 contrast: private local logs never take the global
        log lock."""
        sd = SDComplex(n_data_pages=128)
        s1 = sd.add_instance(1)
        txn = s1.begin()
        page_id = s1.allocate_page(txn)
        s1.insert(txn, page_id, b"x")
        s1.commit(txn)
        assert sd.stats.get(GLOBAL_LOG_LOCKS) == 0

    def test_global_log_records_in_transfer_order(self):
        complex_, (s1, s2) = self.build()
        page = complex_.data_start
        s1.insert(txn_id=1, page_id=page, payload=b"a")
        s2.insert(txn_id=2, page_id=page + 1, payload=b"b")
        s2.commit(2)
        s1.commit(1)
        log = complex_.global_log.log
        txn_order = [r.txn_id for _, r in log.scan() if r.txn_id]
        # s2's records land first although s1 updated first: the cache
        # transfer order, not the update order, rules — exactly the
        # reordering the paper says ARIES-style logging cannot accept.
        assert txn_order[0] == 2
