"""Tests for the standard-format exporters (Perfetto JSON, Prometheus).

The schema check in the acceptance criteria lives here: the Perfetto
export of a real captured trace must validate against the trace-event
subset :func:`repro.obs.export.validate_perfetto` enforces, round-trip
through ``json``, and serialize deterministically.
"""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    dump_perfetto_json,
    summarize_trace,
    to_perfetto,
    to_prometheus,
    validate_perfetto,
)
from repro.obs.capture import capture_e1, capture_e7
from repro.common.stats import StatsRegistry


# ----------------------------------------------------------------------
# Perfetto / Chrome trace-event JSON
# ----------------------------------------------------------------------
class TestPerfetto:
    def test_capture_exports_validate(self):
        for tracer, _ in (capture_e1("usn"), capture_e7()):
            doc = to_perfetto(tracer.events())
            validate_perfetto(doc)  # raises on schema breakage
            reloaded = json.loads(dump_perfetto_json(doc))
            validate_perfetto(reloaded)

    def test_spans_become_complete_events(self):
        tracer = Tracer()
        with tracer.span("commit", system=1, txn=7):
            tracer.emit("log.append", system=1, lsn=5)
        doc = to_perfetto(tracer.events())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 1
        span = complete[0]
        assert span["name"] == "commit"
        assert span["dur"] == 2
        assert span["tid"] == 1
        assert span["args"]["txn"] == 7

    def test_other_events_become_instants(self):
        tracer = Tracer()
        tracer.emit("log.append", system=2, lsn=5)
        doc = to_perfetto(tracer.events())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "log.append"
        assert instants[0]["tid"] == 2

    def test_thread_metadata_per_system(self):
        tracer = Tracer()
        tracer.emit("a", system=1)
        tracer.emit("b", system=3)
        doc = to_perfetto(tracer.events())
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {1: "system 1", 3: "system 3"}

    def test_unclosed_span_marked(self):
        tracer = Tracer()
        tracer.span_begin("restart", system=1)
        doc = to_perfetto(tracer.events())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["dur"] == 0
        assert complete[0]["args"]["unclosed"] is True

    def test_error_span_carries_error_arg(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("commit", system=1):
                raise ValueError("no")
        doc = to_perfetto(tracer.events())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["args"]["error"] == "ValueError"

    def test_dump_is_deterministic(self):
        a, _ = capture_e7()
        b, _ = capture_e7()
        assert dump_perfetto_json(to_perfetto(a.events())) == \
            dump_perfetto_json(to_perfetto(b.events()))

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_perfetto([])
        with pytest.raises(ValueError):
            validate_perfetto({"traceEvents": [{"ph": "Z", "name": "x",
                                               "pid": 0, "tid": 0}]})
        with pytest.raises(ValueError):
            validate_perfetto({"traceEvents": [{"ph": "X", "name": "x",
                                               "pid": 0, "tid": 0,
                                               "ts": 1, "dur": -1}]})


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_plain_counters(self):
        stats = StatsRegistry()
        stats.incr("log.forces", 3)
        out = to_prometheus(stats)
        assert "# TYPE log_forces counter" in out
        assert "log_forces 3" in out

    def test_labeled_counters(self):
        metrics = MetricsRegistry()
        metrics.incr_labeled("trace.events", kind="log.append")
        out = to_prometheus(metrics)
        assert 'trace_events{kind="log.append"} 1' in out

    def test_histogram_buckets_cumulative(self):
        metrics = MetricsRegistry()
        metrics.observe("msg.bytes", 10, edges=(16, 64))
        metrics.observe("msg.bytes", 100, edges=(16, 64))
        out = to_prometheus(metrics)
        assert '# TYPE msg_bytes histogram' in out
        assert 'msg_bytes_bucket{le="16"} 1' in out
        assert 'msg_bytes_bucket{le="64"} 1' in out
        assert 'msg_bytes_bucket{le="+Inf"} 2' in out
        assert "msg_bytes_sum 110" in out
        assert "msg_bytes_count 2" in out

    def test_capture_summary_exports(self):
        tracer, _ = capture_e7()
        _, metrics = summarize_trace(tracer.events())
        out = to_prometheus(metrics)
        assert out.endswith("\n")
        assert 'trace_events{kind="span.begin"}' in out
        # Deterministic: same trace renders to the same text.
        assert out == to_prometheus(metrics)
