"""The zero-copy slab storage spine.

Three claims, each load-bearing for the TPS headline:

* **streaming checksum** — the streamed two-window CRC32 is *the same
  function* as the old slice-concat form, byte for byte;
* **zero copies on the hot path** — the slab write/flush lane feeds the
  CRC nothing but the cached memoryview windows and never materialises
  a page image (spy-buffer regression tests, in the style of
  ``TestZeroCopyParsing`` in ``tests/test_records.py``);
* **flavour equivalence** — slab and classic spines leave SHA-256
  identical disk images and byte-identical traces under the E1 anomaly,
  an E7-style whole-complex restart, parallel partitioned redo at
  P in {1, 2, 4}, and the seeded chaos workload — and torn writes and
  media corruption are still *detected* (and repaired) under the slab.
"""

import hashlib
import zlib

import pytest

import repro.storage.disk as disk_mod
from repro.cluster import ClusterConfig, build_cluster
from repro.common.clock import SkewedClock
from repro.common.config import PAGE_SIZE
from repro.common.errors import MediaError, TornPageError
from repro.faults import points as fp
from repro.faults import scenarios
from repro.faults.injector import NULL_INJECTOR, FaultInjector, FaultPlan
from repro.obs.tracer import Tracer
from repro.recovery.media import recover_page_from_media
from repro.sd.complex import SDComplex
from repro.storage.disk import SharedDisk, _compute_checksum
from repro.storage.page import Page, PageType
from repro.workload.scaleout import ScaleoutConfig, run_scaleout


def arm_next_hit(injector, point):
    """A site builder for the *next* crossing of ``point``."""
    return injector.plan.at(point).on_hit(injector.hit_count(point) + 1)


def committed_row(engine, payload=b"v1"):
    txn = engine.begin()
    page_id = engine.allocate_page(txn)
    slot = engine.insert(txn, page_id, payload)
    engine.commit(txn)
    return page_id, slot


def formatted_page(page_id=7, n_records=5):
    page = Page()
    page.format(page_id, PageType.DATA)
    for i in range(n_records):
        page.insert_record(b"row %02d" % i)
    return page


def disk_sha(disk):
    """SHA-256 over every materialised disk page, in page-id order."""
    digest = hashlib.sha256()
    for page_id in sorted(disk._pages):
        digest.update(page_id.to_bytes(8, "big"))
        digest.update(disk.raw_image(page_id))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# streaming checksum == the old slice-concat form
# ----------------------------------------------------------------------
class TestStreamingChecksum:
    def _old_concat_form(self, image):
        """The pre-slab checksum, verbatim: concatenate the two slices
        into a fresh page-sized ``bytes``, then one crc32 call."""
        flat = bytes(image)
        return zlib.crc32(flat[:17] + flat[21:])

    def test_streamed_crc_equals_concat_crc(self):
        images = [
            bytes(PAGE_SIZE),
            formatted_page().to_bytes(),
            bytes(range(256)) * (PAGE_SIZE // 256),
        ]
        for image in images:
            assert _compute_checksum(image) == self._old_concat_form(image)
            # ...and over a zero-copy window, not just owned bytes.
            assert _compute_checksum(memoryview(image)) == \
                self._old_concat_form(image)

    def test_slab_and_classic_stamp_identical_checksums(self):
        page = formatted_page()
        slab, classic = SharedDisk(slab=True), SharedDisk(slab=False)
        slab.write_page(page)
        classic.write_page(page)
        assert slab.raw_image(page.page_id) == classic.raw_image(page.page_id)
        assert slab.read_page(page.page_id).checksum == \
            classic.read_page(page.page_id).checksum


# ----------------------------------------------------------------------
# copy-on-write page views
# ----------------------------------------------------------------------
class TestPageCopyOnWrite:
    def test_view_is_borrowed_until_first_mutation(self):
        original = formatted_page().to_bytes()
        page = Page.view(original)
        assert page.is_borrowed
        assert page.read_record(0) == b"row 00"  # reads go through

        page.update_record(0, b"mutated")
        assert not page.is_borrowed  # detached onto a private copy
        assert page.read_record(0) == b"mutated"
        assert Page.view(original).read_record(0) == b"row 00"

    def test_read_page_view_cannot_write_through_to_disk(self):
        disk = SharedDisk(slab=True)
        page = formatted_page()
        disk.write_page(page)
        before = disk.raw_image(page.page_id)

        view = disk.read_page_view(page.page_id)
        assert view.is_borrowed
        view.update_record(0, b"scribble")
        assert disk.raw_image(page.page_id) == before
        # ...and the slab still verifies: the stored checksum was not
        # invalidated behind the disk's back.
        assert disk.read_page(page.page_id).read_record(0) == b"row 00"

    def test_read_page_returns_private_image(self):
        for slab in (True, False):
            disk = SharedDisk(slab=slab)
            page = formatted_page()
            disk.write_page(page)
            owned = disk.read_page(page.page_id)
            assert not owned.is_borrowed
            owned.update_record(0, b"private")
            assert disk.read_page(page.page_id).read_record(0) == b"row 00"

    def test_borrowed_view_aliases_live_slab_storage(self):
        """read_page_view is genuinely zero-copy: its buffer is a
        window straight onto a slab extent."""
        disk = SharedDisk(slab=True)
        page = formatted_page()
        disk.write_page(page)
        view = disk.read_page_view(page.page_id)
        buf = view.raw_buffer()
        assert isinstance(buf, memoryview)
        assert buf.readonly
        assert any(buf.obj is extent for extent in disk._extents)


# ----------------------------------------------------------------------
# spy-buffer regression tests: zero copies on the hot path
# ----------------------------------------------------------------------
class TestZeroCopyHotPath:
    def _spy_crc(self, monkeypatch):
        """Record the buffer type of every crc32 call made by the disk
        layer (same spy style as TestZeroCopyParsing)."""
        calls = []
        real = zlib.crc32

        def spy(data, value=0):
            calls.append(type(data))
            return real(data, value)

        monkeypatch.setattr(disk_mod.zlib, "crc32", spy)
        return calls

    def test_slab_write_many_feeds_crc_only_memoryviews(self, monkeypatch):
        disk = SharedDisk(slab=True)
        pages = [formatted_page(page_id=i) for i in range(8)]
        disk.write_many(pages)  # allocate windows outside the spy

        calls = self._spy_crc(monkeypatch)
        disk.write_many(pages)
        assert len(calls) == 2 * len(pages)  # head + tail per page
        assert all(t is memoryview for t in calls)

    def test_slab_read_page_feeds_crc_only_memoryviews(self, monkeypatch):
        disk = SharedDisk(slab=True)
        page = formatted_page()
        disk.write_page(page)

        calls = self._spy_crc(monkeypatch)
        disk.read_page(page.page_id)
        assert calls == [memoryview, memoryview]

    def test_flush_lane_never_materialises_a_page_image(self, monkeypatch):
        """The buffer-pool flush hot path (flush_pages -> write_many on
        the slab) must not call Page.to_bytes or build a stamped copy —
        the whole point of the spine is that those copies are gone."""
        sd = SDComplex(n_data_pages=64)
        engine = sd.add_instance(1)
        rows = [committed_row(engine) for _ in range(6)]

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("full-page copy on the slab flush lane")

        monkeypatch.setattr(Page, "to_bytes", boom)
        monkeypatch.setattr(SharedDisk, "_stamped_image", boom)
        flushed = engine.pool.flush_pages(
            sorted({page_id for page_id, _ in rows}))
        assert flushed == len({page_id for page_id, _ in rows})

    def test_classic_flush_lane_still_copies(self):
        """Contrast case: the classic spine stores one immutable bytes
        image per page, so its stored values are real ``bytes``."""
        sd = SDComplex(n_data_pages=64, slab=False)
        engine = sd.add_instance(1)
        page_id, _ = committed_row(engine)
        engine.pool.flush_all()
        assert type(sd.disk._pages[page_id]) is bytes


# ----------------------------------------------------------------------
# slab-vs-classic equivalence: SHA-256 disk images + byte-equal traces
# ----------------------------------------------------------------------
def run_e1_anomaly(slab):
    """The Section 1.5 lost-update scenario (capture_e1's script) over
    the chosen spine; returns (sd, tracer, survivor payload)."""
    tracer = Tracer()
    sd = SDComplex(n_data_pages=128, tracer=tracer, slab=slab)
    instances = {}
    for system_id, (offset, rate) in ((1, (37.0, 1.13)), (2, (74.0, 1.26))):
        instances[system_id] = sd.add_instance(
            system_id, lock_granularity="page",
            clock=SkewedClock(offset=offset, rate=rate))
    s1, s2 = instances[1], instances[2]
    txn = s2.begin()
    page_id = s2.allocate_page(txn)
    slot = s2.insert(txn, page_id, b"original")
    s2.commit(txn)
    s2.pool.write_page(page_id)
    s2.write_filler(50)
    t2 = s2.begin()
    s2.update(t2, page_id, slot, b"t2-update")
    s2.commit(t2)
    t1 = s1.begin()
    s1.update(t1, page_id, slot, b"t1-committed")
    s1.commit(t1)
    sd.crash_instance(1)
    sd.restart_instance(1)
    return sd, tracer, sd.disk.read_page(page_id).read_record(slot)


class TestSlabClassicEquality:
    def test_e1_anomaly_disk_and_trace_identical(self):
        slab_sd, slab_tracer, slab_survivor = run_e1_anomaly(slab=True)
        classic_sd, classic_tracer, survivor = run_e1_anomaly(slab=False)
        assert slab_survivor == survivor == b"t1-committed"
        assert disk_sha(slab_sd.disk) == disk_sha(classic_sd.disk)
        assert slab_tracer.dump_jsonl() == classic_tracer.dump_jsonl()
        assert slab_sd.stats.snapshot() == classic_sd.stats.snapshot()

    def _restart_run(self, slab):
        """E7-style: the seeded chaos workload, then a whole-complex
        crash and restart (real redo/undo over both spines)."""
        sd, tracer = scenarios.build_sd(NULL_INJECTOR, seed=3, slab=slab)
        scenarios.run_sd_workload(sd, 3)
        sd.crash_complex()
        sd.restart_complex()
        return sd, tracer

    def test_e7_restart_disk_and_trace_identical(self):
        slab_sd, slab_tracer = self._restart_run(slab=True)
        classic_sd, classic_tracer = self._restart_run(slab=False)
        assert disk_sha(slab_sd.disk) == disk_sha(classic_sd.disk)
        assert slab_tracer.dump_jsonl() == classic_tracer.dump_jsonl()
        assert slab_sd.stats.snapshot() == classic_sd.stats.snapshot()

    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_parallel_redo_disk_identical(self, parallelism):
        def recovered(slab):
            sd = build_cluster(ClusterConfig(
                n_instances=2, lock_shards=1,
                redo_parallelism=parallelism, n_data_pages=256, slab=slab))
            result = run_scaleout(sd, ScaleoutConfig(
                n_transactions=12, sharing_ratio=0.2, seed=11))
            assert result.committed > 0
            sd.crash_complex()
            sd.restart_complex()
            return sd

        slab_sd, classic_sd = recovered(True), recovered(False)
        assert disk_sha(slab_sd.disk) == disk_sha(classic_sd.disk)
        assert set(slab_sd.disk.written_page_ids()) == \
            set(classic_sd.disk.written_page_ids())

    def test_chaos_smoke_disk_identical(self):
        """The chaos scenario workload itself (no crash) — the smoke
        geometry the fault campaign tortures."""
        runs = {}
        for slab in (True, False):
            sd, tracer = scenarios.build_sd(NULL_INJECTOR, seed=0, slab=slab)
            scenarios.run_sd_workload(sd, 0)
            runs[slab] = (disk_sha(sd.disk), tracer.dump_jsonl())
        assert runs[True] == runs[False]


# ----------------------------------------------------------------------
# faults are still detected under the slab
# ----------------------------------------------------------------------
class TestSlabFaultDetection:
    @pytest.mark.parametrize("slab", [True, False])
    def test_torn_write_detected_and_rebuilt(self, slab):
        injector = FaultInjector(FaultPlan(seed=0))
        sd = SDComplex(n_data_pages=64, injector=injector, slab=slab)
        s1 = sd.add_instance(1)
        page_id, slot = committed_row(s1, b"precious")
        arm_next_hit(injector, fp.DISK_WRITE).torn()

        with pytest.raises(TornPageError):
            s1.pool.write_page(page_id)
        with pytest.raises(MediaError):
            sd.disk.read_page(page_id)

        recover_page_from_media(page_id, None, sd.local_logs(),
                                disk=sd.disk)
        assert sd.disk.read_page(page_id).read_record(slot) == b"precious"

    @pytest.mark.parametrize("slab", [True, False])
    def test_corruption_detected_by_checksum(self, slab):
        disk = SharedDisk(slab=slab)
        page = formatted_page()
        disk.write_page(page)
        disk.corrupt_page(page.page_id, byte_offset=100)
        with pytest.raises(MediaError):
            disk.read_page(page.page_id)

    @pytest.mark.parametrize("slab", [True, False])
    def test_lost_page_detected(self, slab):
        disk = SharedDisk(slab=slab)
        page = formatted_page()
        disk.write_page(page)
        disk.lose_page(page.page_id)
        with pytest.raises(MediaError):
            disk.read_page(page.page_id)
        assert not disk.page_exists(page.page_id)
