"""Determinism regression tests for tracing (the R002 promise, proven).

Two runs of the same scenario must produce byte-identical JSONL — that
is what lets a saved trace serve as a golden regression artifact.
Changing only the per-system clock skews must leave the *event order*
(seq, system, kind, fields) untouched and change only the clock
readings: the clocks are observers, never inputs.
"""

from repro.obs.capture import capture_e1
from repro.obs.tracer import load_trace


def _strip_clock(event):
    return (event.seq, event.system, event.kind,
            tuple(sorted(event.fields.items(), key=lambda kv: kv[0])))


class TestByteDeterminism:
    def test_same_scenario_twice_is_byte_identical(self):
        first, _ = capture_e1("usn")
        second, _ = capture_e1("usn")
        assert first.dump_jsonl() == second.dump_jsonl()

    def test_naive_scenario_is_deterministic_too(self):
        first, _ = capture_e1("naive")
        second, _ = capture_e1("naive")
        assert first.dump_jsonl() == second.dump_jsonl()

    def test_round_trip_through_jsonl_is_lossless(self, tmp_path):
        tracer, _ = capture_e1("usn")
        path = tmp_path / "golden.jsonl"
        tracer.write(str(path))
        reloaded = load_trace(str(path))
        assert [e.to_json() for e in reloaded] == [
            e.to_json() for e in tracer.events()
        ]


class TestClockIndependence:
    def test_skew_changes_readings_not_order(self):
        base, _ = capture_e1("usn")
        skewed, _ = capture_e1(
            "usn", skews={1: (1000.0, 3.0), 2: (5.0, 0.5)}
        )
        base_events = base.events()
        skewed_events = skewed.events()
        assert len(base_events) == len(skewed_events)
        # Event order and payloads are identical...
        assert [_strip_clock(e) for e in base_events] == [
            _strip_clock(e) for e in skewed_events
        ]
        # ... but the clock readings differ wherever a clock is attached.
        clocked = [
            (a.clock, b.clock)
            for a, b in zip(base_events, skewed_events)
            if a.clock is not None
        ]
        assert clocked, "expected clocked events in the trace"
        assert any(a != b for a, b in clocked)

    def test_tick_counts_are_skew_independent(self):
        base, _ = capture_e1("usn")
        skewed, _ = capture_e1(
            "usn", skews={1: (1000.0, 3.0), 2: (5.0, 0.5)}
        )
        assert [e.ticks for e in base.events()] == [
            e.ticks for e in skewed.events()
        ]
