"""Tests for the message fabric and Local_Max_LSN piggybacking."""

from repro.common.stats import MESSAGES_SENT, MESSAGE_BYTES, StatsRegistry
from repro.net.network import Network
from repro.wal.log_manager import LogManager
from repro.wal.records import make_update


def rec():
    return make_update(1, 0, 10, 0, b"r", b"u")


def setup(piggyback=True):
    stats = StatsRegistry()
    net = Network(stats=stats, piggyback_enabled=piggyback)
    a = LogManager(1, stats=stats)
    b = LogManager(2, stats=stats)
    net.register(1, a)
    net.register(2, b)
    return net, a, b, stats


class TestPiggyback:
    def test_message_carries_senders_max(self):
        net, a, b, _ = setup()
        for _ in range(7):
            a.append(rec())
        net.message(1, 2, "page_transfer")
        assert b.local_max_lsn == 7

    def test_receiver_keeps_higher_max(self):
        net, a, b, _ = setup()
        a.append(rec())
        for _ in range(9):
            b.append(rec())
        net.message(1, 2, "lock_grant")
        assert b.local_max_lsn == 9

    def test_piggyback_disabled(self):
        net, a, b, _ = setup(piggyback=False)
        for _ in range(7):
            a.append(rec())
        net.message(1, 2, "page_transfer")
        assert b.local_max_lsn == 0

    def test_self_message_is_free(self):
        net, a, _, stats = setup()
        net.message(1, 1, "noop")
        assert stats.get(MESSAGES_SENT) == 0


class TestBroadcast:
    def test_broadcast_converges_all(self):
        net, a, b, _ = setup()
        c = LogManager(3)
        net.register(3, c)
        for _ in range(5):
            a.append(rec())
        net.broadcast_max_lsns()
        assert b.local_max_lsn == 5
        assert c.local_max_lsn == 5

    def test_broadcast_counts_n_squared_messages(self):
        net, a, b, stats = setup()
        before = stats.get(MESSAGES_SENT)
        net.broadcast_max_lsns()
        assert stats.get(MESSAGES_SENT) == before + 2  # 2 systems -> 2 msgs

    def test_broadcast_uses_pre_exchange_snapshot(self):
        """All systems exchange the maxima they had at broadcast start."""
        net, a, b, _ = setup()
        for _ in range(3):
            a.append(rec())
        for _ in range(5):
            b.append(rec())
        net.broadcast_max_lsns()
        assert a.local_max_lsn == 5
        assert b.local_max_lsn == 5


class TestCounters:
    def test_message_counters(self):
        net, _, _, stats = setup()
        net.message(1, 2, "page_transfer", nbytes=4096)
        net.message(2, 1, "ack", nbytes=32)
        assert stats.get(MESSAGES_SENT) == 2
        assert stats.get(MESSAGE_BYTES) == 4128
        assert stats.get("net.messages.page_transfer") == 1
        assert stats.get("net.messages.ack") == 1

    def test_deregister(self):
        net, a, b, _ = setup()
        net.deregister(2)
        a.append(rec())
        net.message(1, 2, "x")  # counted but no piggyback target
        assert b.local_max_lsn == 0


class TestParkedMessages:
    """Quiesce/shutdown hygiene for injected-DELAY parking (the park
    bench must be empty after either drain or fail — no in-flight
    state may leak into a later run)."""

    def parked_setup(self):
        from repro.common.stats import NET_PARKED_DRAINED, NET_PARKED_FAILED
        from repro.faults import points as fp
        from repro.faults.injector import FaultInjector, FaultPlan

        stats = StatsRegistry()
        plan = FaultPlan(seed=0)
        plan.at(fp.NET_MSG).on_hit(1).delay()
        net = Network(stats=stats, injector=FaultInjector(plan))
        a = LogManager(1, stats=stats)
        b = LogManager(2, stats=stats)
        net.register(1, a)
        net.register(2, b)
        a.append(rec())
        net.message(1, 2, "page_transfer")  # parked by the delay rule
        assert net.parked_count() == 1
        return net, a, b, stats, NET_PARKED_DRAINED, NET_PARKED_FAILED

    def test_drain_delivers_and_counts(self):
        net, a, b, stats, DRAINED, FAILED = self.parked_setup()
        assert net.drain_parked() == 1
        assert net.parked_count() == 0
        assert b.local_max_lsn == a.local_max_lsn  # piggyback arrived
        assert stats.get(DRAINED) == 1
        assert stats.get(FAILED) == 0
        assert stats.get(MESSAGES_SENT) == 1

    def test_fail_discards_and_counts(self):
        net, a, b, stats, DRAINED, FAILED = self.parked_setup()
        assert net.fail_parked() == 1
        assert net.parked_count() == 0
        assert b.local_max_lsn == 0  # the message really died
        assert stats.get(FAILED) == 1
        assert stats.get(DRAINED) == 0
        assert stats.get(MESSAGES_SENT) == 0

    def test_empty_park_bench_is_free(self):
        net, _, _, stats = setup()
        assert net.drain_parked() == 0
        assert net.fail_parked() == 0
        from repro.common.stats import NET_PARKED_DRAINED, NET_PARKED_FAILED

        assert stats.get(NET_PARKED_DRAINED) == 0
        assert stats.get(NET_PARKED_FAILED) == 0

    def test_failed_message_never_resurfaces(self):
        """After fail_parked, later traffic must not deliver the dead
        message (regression: _flush_delayed on the next message used to
        be the only drain path)."""
        net, a, b, stats, _, _ = self.parked_setup()
        net.fail_parked()
        a.append(rec())
        net.message(1, 2, "page_transfer")
        assert stats.get(MESSAGES_SENT) == 1  # only the new message
