"""Tests for the partitioned global lock manager (repro.cluster.glm)."""

import zlib

import pytest

from repro.cluster import ClusterConfig, PartitionedLockManager, shard_of
from repro.common.errors import DeadlockError, FaultInjectedError
from repro.common.stats import (
    CLUSTER_CROSS_SHARD_CHECKS,
    StatsRegistry,
    glm_shard_counter,
)
from repro.faults import points as fpoints
from repro.faults.injector import FaultInjector, FaultPlan
from repro.locking.lock_manager import (
    LockManager,
    LockMode,
    LockStatus,
    page_lock,
    record_lock,
)


def resources_on_distinct_shards(n_shards, count=2):
    """Deterministically pick ``count`` record locks on distinct shards."""
    picked = {}
    for slot in range(1000):
        resource = record_lock(10, slot)
        index = shard_of(resource, n_shards)
        if index not in picked:
            picked[index] = resource
        if len(picked) == count:
            return [picked[i] for i in sorted(picked)][:count]
    raise AssertionError("could not find resources on distinct shards")


class TestRouting:
    def test_routing_is_crc32_of_repr(self):
        """The routing function is pinned to CRC-32 over repr — any
        drift (e.g. to the salted builtin hash) silently breaks
        cross-run determinism of shard counters and traces."""
        for resource in (record_lock(3, 1), page_lock(7), ("custom", 42)):
            expected = zlib.crc32(repr(resource).encode("utf-8")) % 4
            assert shard_of(resource, 4) == expected

    def test_routing_is_stable_across_managers(self):
        glm_a = PartitionedLockManager(4)
        glm_b = PartitionedLockManager(4)
        for slot in range(64):
            resource = record_lock(5, slot)
            assert glm_a.shard_index(resource) == glm_b.shard_index(resource)

    def test_single_shard_short_circuits(self):
        for resource in (record_lock(1, 1), page_lock(9)):
            assert shard_of(resource, 1) == 0

    def test_routing_spreads_over_all_shards(self):
        hits = {shard_of(record_lock(p, s), 4)
                for p in range(8) for s in range(8)}
        assert hits == {0, 1, 2, 3}

    def test_shard_request_counters(self):
        stats = StatsRegistry()
        glm = PartitionedLockManager(4, stats=stats)
        resources = [record_lock(11, s) for s in range(32)]
        for resource in resources:
            glm.acquire("t1", resource, LockMode.S)
        per_shard = [stats.get(glm_shard_counter(i)) for i in range(4)]
        assert sum(per_shard) == len(resources)
        expected = [0, 0, 0, 0]
        for resource in resources:
            expected[shard_of(resource, 4)] += 1
        assert per_shard == expected


class TestFacadeProtocol:
    """The facade must be a drop-in for the monolithic LockManager."""

    def test_acquire_release_round_trip(self):
        glm = PartitionedLockManager(4)
        r = record_lock(2, 3)
        assert glm.acquire("t1", r, LockMode.X) is LockStatus.GRANTED
        assert glm.holds("t1", r, LockMode.X)
        assert glm.holders(r) == {"t1": LockMode.X}
        assert glm.acquire("t2", r, LockMode.S) is LockStatus.WAITING
        assert glm.waiters(r) == ["t2"]
        promoted = glm.release("t1", r)
        assert promoted == ["t2"]
        assert glm.holds("t2", r, LockMode.S)

    def test_release_all_sweeps_every_shard(self):
        glm = PartitionedLockManager(4)
        resources = [record_lock(13, s) for s in range(16)]
        assert {shard_of(r, 4) for r in resources} == {0, 1, 2, 3}
        for resource in resources:
            glm.acquire("t1", resource, LockMode.X)
        assert set(glm.locks_of("t1")) == set(resources)
        glm.release_all("t1")
        assert glm.locks_of("t1") == {}
        assert glm.owners() == set()

    def test_owners_and_resources_merge_shards(self):
        glm = PartitionedLockManager(4)
        a, b = resources_on_distinct_shards(4)
        glm.acquire("t1", a, LockMode.S)
        glm.acquire("t2", b, LockMode.S)
        assert glm.owners() == {"t1", "t2"}
        assert set(glm.resources()) == {a, b}

    def test_matches_monolithic_on_scripted_sequence(self):
        """Same grant/wait decisions as the monolithic manager for a
        scripted contention sequence."""
        mono = LockManager()
        glm = PartitionedLockManager(4)
        script = [
            ("t1", record_lock(4, 0), LockMode.S),
            ("t2", record_lock(4, 0), LockMode.S),
            ("t2", record_lock(4, 1), LockMode.X),
            ("t1", record_lock(4, 1), LockMode.S),
            ("t3", record_lock(4, 2), LockMode.X),
        ]
        for owner, resource, mode in script:
            assert (glm.acquire(owner, resource, mode)
                    is mono.acquire(owner, resource, mode))


class TestCrossShardDeadlock:
    def test_cycle_spanning_two_shards_detected(self):
        glm = PartitionedLockManager(4)
        r0, r1 = resources_on_distinct_shards(4)
        glm.acquire("t1", r0, LockMode.X)
        glm.acquire("t2", r1, LockMode.X)
        assert glm.acquire("t1", r1, LockMode.X) is LockStatus.WAITING
        with pytest.raises(DeadlockError):
            glm.acquire("t2", r0, LockMode.X)

    def test_cross_shard_checks_counted(self):
        stats = StatsRegistry()
        glm = PartitionedLockManager(4, stats=stats)
        r0, r1 = resources_on_distinct_shards(4)
        glm.acquire("t1", r0, LockMode.X)
        glm.acquire("t2", r1, LockMode.X)
        glm.acquire("t1", r1, LockMode.X)
        with pytest.raises(DeadlockError):
            glm.acquire("t2", r0, LockMode.X)
        assert stats.get(CLUSTER_CROSS_SHARD_CHECKS) > 0

    def test_no_false_positive_on_cross_shard_chain(self):
        glm = PartitionedLockManager(4)
        r0, r1 = resources_on_distinct_shards(4)
        glm.acquire("t1", r0, LockMode.X)
        glm.acquire("t2", r1, LockMode.X)
        assert glm.acquire("t3", r0, LockMode.X) is LockStatus.WAITING
        assert glm.acquire("t3", r1, LockMode.X) is LockStatus.WAITING


class TestFaultPoint:
    def test_glm_acquire_point_fires(self):
        plan = FaultPlan(seed=0).at(fpoints.GLM_ACQUIRE).on_hit(2).fail()
        injector = FaultInjector(plan)
        glm = PartitionedLockManager(4, injector=injector)
        glm.acquire("t1", record_lock(1, 0), LockMode.S)
        with pytest.raises(FaultInjectedError):
            glm.acquire("t1", record_lock(1, 1), LockMode.S)
        assert injector.hit_count(fpoints.GLM_ACQUIRE) == 2

    def test_null_injector_never_consulted(self):
        glm = PartitionedLockManager(4)
        assert glm.acquire(
            "t1", record_lock(1, 0), LockMode.S) is LockStatus.GRANTED


class TestConfigValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            PartitionedLockManager(0)
        with pytest.raises(ValueError):
            ClusterConfig(lock_shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(n_instances=0)
        with pytest.raises(ValueError):
            ClusterConfig(redo_parallelism=0)
