"""Unit tests for physiological operation application (redo/undo)."""

import pytest

from repro.recovery.apply import apply_op, apply_redo, apply_undo
from repro.storage.page import Page, PageType
from repro.storage.space_map import SpaceMap
from repro.wal.records import PageOp, encode_op, make_clr, make_update


def data_page():
    page = Page()
    page.format(9, PageType.DATA)
    return page


class TestApplyOp:
    def test_insert(self):
        page = data_page()
        apply_op(page, 2, PageOp.INSERT, b"payload")
        assert page.read_record(2) == b"payload"

    def test_delete(self):
        page = data_page()
        slot = page.insert_record(b"x")
        apply_op(page, slot, PageOp.DELETE, b"")
        assert page.read_record(slot) is None

    def test_set(self):
        page = data_page()
        slot = page.insert_record(b"old")
        apply_op(page, slot, PageOp.SET, b"new")
        assert page.read_record(slot) == b"new"

    def test_format(self):
        page = data_page()
        page.insert_record(b"junk")
        apply_op(page, 0, PageOp.FORMAT, bytes([int(PageType.INDEX)]))
        assert page.page_type == PageType.INDEX
        assert page.slot_count == 0
        assert page.page_id == 9   # identity preserved

    def test_smp_set(self):
        page = Page()
        page.format(1, PageType.SPACE_MAP)
        apply_op(page, 0, PageOp.SMP_SET,
                 SpaceMap.encode_entry_update(7, True))
        assert SpaceMap.read_allocated(page, 7)

    def test_smp_range(self):
        page = Page()
        page.format(1, PageType.SPACE_MAP)
        apply_op(page, 0, PageOp.SMP_SET_RANGE,
                 SpaceMap.encode_range_update(4, 3, True))
        assert all(SpaceMap.read_allocated(page, i) for i in (4, 5, 6))

    def test_noop(self):
        page = data_page()
        before = page.to_bytes()
        apply_op(page, 0, PageOp.NOOP, b"ignored")
        assert page.to_bytes() == before


class TestRedoUndo:
    def test_apply_redo_stamps_lsn(self):
        page = data_page()
        record = make_update(1, 1, 9, 0,
                             redo=encode_op(PageOp.INSERT, b"row"),
                             undo=encode_op(PageOp.DELETE))
        record.lsn = 77
        apply_redo(page, record)
        assert page.read_record(0) == b"row"
        assert page.page_lsn == 77

    def test_apply_undo_inverts_and_stamps_clr_lsn(self):
        page = data_page()
        slot = page.insert_record(b"old")
        record = make_update(1, 1, 9, slot,
                             redo=encode_op(PageOp.SET, b"new"),
                             undo=encode_op(PageOp.SET, b"old"))
        record.lsn = 10
        apply_redo(page, record)
        assert page.read_record(slot) == b"new"
        apply_undo(page, record, clr_lsn=11)
        assert page.read_record(slot) == b"old"
        assert page.page_lsn == 11

    def test_redo_undo_redo_cycle_is_consistent(self):
        """Repeating history: redo(clr) after undo lands on the same
        state as the original undo."""
        page = data_page()
        slot = page.insert_record(b"v0")
        update = make_update(1, 1, 9, slot,
                             redo=encode_op(PageOp.SET, b"v1"),
                             undo=encode_op(PageOp.SET, b"v0"))
        update.lsn = 5
        apply_redo(page, update)
        clr = make_clr(1, 1, 9, slot, redo=update.undo, undo_next_lsn=0)
        clr.lsn = 6
        apply_redo(page, clr)          # a CLR's redo IS the undo op
        assert page.read_record(slot) == b"v0"
        assert page.page_lsn == 6

    def test_undo_without_undo_info_raises(self):
        from repro.recovery.apply import inverse_op
        record = make_clr(1, 1, 9, 0, redo=b"\x06", undo_next_lsn=0)
        with pytest.raises(ValueError):
            inverse_op(record)
