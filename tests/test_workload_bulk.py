"""The vectorized bulk-op lane: ``update_many`` / ``read_many`` and the
:mod:`repro.workload.bulk` driver.

The lane's contract is "same semantics, fewer round trips": a bulk call
must leave byte-identical log contents, identical trace events and the
same recoverable state as the per-call loop it replaces — while taking
one page lock, one fix and one log append per batch instead of one per
op.  Partial failure must never leave an applied-but-unlogged mutation
(rollback depends on it).
"""

import pytest

from repro.common.errors import ReproError
from repro.common.stats import (
    BULK_OPS_APPLIED,
    BULK_READ_BATCHES,
    BULK_UPDATE_BATCHES,
    LOCK_REQUESTS,
    LOG_FORCES,
)
from repro.obs import events as ev
from repro.obs.tracer import Tracer
from repro.sd.complex import SDComplex
from repro.workload.bulk import (
    BulkConfig,
    TxnBatch,
    build_batches,
    run_bulk,
    run_per_call,
)
from repro.workload.generator import populate_pages

N_PAGES = 4
RECORDS_PER_PAGE = 4


def build_engine(tracer=None, isolation="cursor_stability"):
    sd = SDComplex(n_data_pages=64, tracer=tracer)
    engine = sd.add_instance(1, isolation=isolation)
    handles = populate_pages(engine, N_PAGES, RECORDS_PER_PAGE)
    return sd, engine, handles


def payloads(engine, handles):
    txn = engine.begin()
    values = [engine.read(txn, page_id, slot) for page_id, slot in handles]
    engine.commit(txn)
    return values


UPDATE_PLAN = [  # two distinct pages, repeated hits on one of them
    (0, 0, b"aaa"), (0, 1, b"bbb"), (1, 0, b"ccc"), (0, 0, b"ddd"),
]


def plan_for(handles):
    return [(handles[p * RECORDS_PER_PAGE + s][0],
             handles[p * RECORDS_PER_PAGE + s][1], v)
            for p, s, v in UPDATE_PLAN]


class TestUpdateMany:
    def test_log_bytes_identical_to_per_call_updates(self):
        """The lane's core contract: one ``update_many`` appends the
        exact bytes N ``update`` calls would (same LSNs via the USN
        rule, same undo chains, same payloads)."""
        _, per_call, handles_a = build_engine()
        txn = per_call.begin()
        for page_id, slot, value in plan_for(handles_a):
            per_call.update(txn, page_id, slot, value)
        per_call.commit(txn)

        _, bulk, handles_b = build_engine()
        txn = bulk.begin()
        bulk.update_many(txn, plan_for(handles_b))
        bulk.commit(txn)

        assert bytes(bulk.log._buffer) == bytes(per_call.log._buffer)

    def test_trace_events_identical_to_per_call_updates(self):
        def trace(drive):
            tracer = Tracer()
            _, engine, handles = build_engine(tracer=tracer)
            txn = engine.begin()
            drive(engine, txn, plan_for(handles))
            engine.commit(txn)
            return [e for e in tracer.events() if e.kind == ev.PAGE_UPDATE]

        def per_call(engine, txn, plan):
            for page_id, slot, value in plan:
                engine.update(txn, page_id, slot, value)

        bulk_events = trace(lambda e, t, p: e.update_many(t, p))
        per_events = trace(per_call)
        assert [e.fields for e in bulk_events] == \
            [e.fields for e in per_events]

    def test_one_page_lock_per_distinct_page(self):
        sd, engine, handles = build_engine()
        before = sd.stats.get(LOCK_REQUESTS)
        txn = engine.begin()
        engine.update_many(txn, plan_for(handles))
        assert sd.stats.get(LOCK_REQUESTS) - before == 2  # pages 0 and 1
        assert sd.stats.get(BULK_UPDATE_BATCHES) == 1
        assert sd.stats.get(BULK_OPS_APPLIED) == len(UPDATE_PLAN)
        engine.commit(txn)

    def test_rollback_restores_every_record(self):
        _, engine, handles = build_engine()
        before = payloads(engine, handles)
        txn = engine.begin()
        engine.update_many(txn, plan_for(handles))
        engine.rollback(txn)
        assert payloads(engine, handles) == before

    def test_mid_batch_failure_logs_applied_prefix(self):
        """An op that fails mid-batch surfaces its error, but the
        already applied prefix is logged (and therefore undoable)."""
        _, engine, handles = build_engine()
        page_id, slot = handles[0]
        before = payloads(engine, handles)
        txn = engine.begin()
        bad = [(page_id, slot, b"prefix"), (page_id, 99, b"never")]
        with pytest.raises(IndexError):
            engine.update_many(txn, bad)
        # The prefix was applied and logged...
        probe = engine.begin()  # escalated page lock is still held
        assert engine.log.scan is not None
        logged = [r for _, r in engine.log.scan()
                  if r.txn_id == txn.txn_id]
        assert len(logged) == 1
        engine.rollback(probe)
        # ...so rollback can restore it.
        engine.rollback(txn)
        assert payloads(engine, handles) == before

    def test_empty_slot_is_a_repro_error(self):
        _, engine, handles = build_engine()
        page_id, slot = handles[0]
        txn = engine.begin()
        engine.delete(txn, page_id, slot)
        with pytest.raises(ReproError):
            engine.update_many(txn, [(page_id, slot, b"x")])
        engine.rollback(txn)

    def test_empty_batch_is_a_no_op(self):
        sd, engine, _ = build_engine()
        txn = engine.begin()
        engine.update_many(txn, [])
        engine.commit(txn)
        assert sd.stats.get(BULK_UPDATE_BATCHES) == 0


class TestReadMany:
    def test_values_match_per_call_reads(self):
        _, engine, handles = build_engine()
        txn = engine.begin()
        expected = [engine.read(txn, page_id, slot)
                    for page_id, slot in handles]
        assert engine.read_many(txn, handles) == expected
        engine.commit(txn)

    def test_one_s_lock_per_distinct_page(self):
        sd, engine, handles = build_engine()
        txn = engine.begin()
        before = sd.stats.get(LOCK_REQUESTS)
        engine.read_many(txn, handles)  # N_PAGES distinct pages
        assert sd.stats.get(LOCK_REQUESTS) - before == N_PAGES
        assert sd.stats.get(BULK_READ_BATCHES) == 1
        engine.commit(txn)

    def test_sees_own_uncommitted_bulk_updates(self):
        _, engine, handles = build_engine()
        txn = engine.begin()
        engine.update_many(txn, plan_for(handles))
        plan = plan_for(handles)
        # Last write per (page, slot) wins.
        expected = {(p, s): v for p, s, v in plan}
        got = engine.read_many(txn, [(p, s) for p, s, _ in plan])
        assert got == [expected[(p, s)] for p, s, _ in plan]
        engine.rollback(txn)


class TestBulkDriver:
    CONFIG = BulkConfig(n_transactions=12, ops_per_txn=16, seed=5)

    def test_bulk_and_per_call_drivers_converge(self):
        _, per_engine, per_handles = build_engine()
        per_run = run_per_call(
            per_engine, build_batches(self.CONFIG, per_handles))

        bulk_sd, bulk_engine, bulk_handles = build_engine()
        bulk_run = run_bulk(
            bulk_engine, build_batches(self.CONFIG, bulk_handles))

        assert (per_run.committed, per_run.reads, per_run.updates) == \
            (bulk_run.committed, bulk_run.reads, bulk_run.updates)
        assert payloads(per_engine, per_handles) == \
            payloads(bulk_engine, bulk_handles)
        assert bulk_run.syncs >= 1
        assert bulk_sd.stats.get(BULK_UPDATE_BATCHES) == \
            self.CONFIG.n_transactions

    def test_group_commit_forces_less_than_eager_commit(self):
        """With low page contention across consecutive transactions the
        lazy commits actually group (a pending group's held page locks
        force an early sync, so the batches here round-robin disjoint
        pages)."""
        def round_robin(handles):
            batches = []
            for i in range(12):
                page_id, slot = handles[(i % N_PAGES) * RECORDS_PER_PAGE]
                batches.append(TxnBatch(
                    updates=[(page_id, slot, b"txn %02d" % i)]))
            return batches

        per_sd, per_engine, per_handles = build_engine()
        run_per_call(per_engine, round_robin(per_handles))

        bulk_sd, bulk_engine, bulk_handles = build_engine()
        run = run_bulk(bulk_engine, round_robin(bulk_handles),
                       group_commit_every=4)

        assert run.committed == 12
        assert bulk_sd.stats.get(LOG_FORCES) < per_sd.stats.get(LOG_FORCES)
        assert payloads(per_engine, per_handles) == \
            payloads(bulk_engine, bulk_handles)

    def test_repeatable_read_holds_read_locks_to_sync(self):
        sd, engine, handles = build_engine(isolation="repeatable_read")
        run = run_bulk(engine, build_batches(self.CONFIG, handles))
        assert run.committed == self.CONFIG.n_transactions
        assert payloads(engine, handles)  # engine is still usable

    def test_rejects_nonpositive_group(self):
        _, engine, handles = build_engine()
        with pytest.raises(ValueError):
            run_bulk(engine, [], group_commit_every=0)
