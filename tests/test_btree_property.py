"""Model-based property tests for the B-tree.

Hypothesis drives random insert/overwrite/delete sequences (with
occasional crash/restart) against a dict oracle; the tree must agree on
membership, values, and in-order iteration.
"""

from hypothesis import given, settings, strategies as st

from repro import BTree, SDComplex


def ops_strategy():
    key = st.integers(0, 60)
    return st.lists(
        st.one_of(
            st.tuples(st.just("insert"), key, st.integers(0, 255)),
            st.tuples(st.just("delete"), key, st.just(0)),
            st.tuples(st.just("crash"), st.just(0), st.just(0)),
        ),
        min_size=1, max_size=80,
    )


def encode_key(i):
    return b"k%04d" % i


@settings(max_examples=40, deadline=None)
@given(ops=ops_strategy())
def test_property_btree_matches_dict_model(ops):
    sd = SDComplex(n_data_pages=1024)
    s1 = sd.add_instance(1)
    txn = s1.begin()
    tree = BTree.create(s1, txn, fanout=6)
    s1.commit(txn)

    model = {}
    for kind, k, v in ops:
        if kind == "insert":
            txn = s1.begin()
            tree.insert(s1, txn, encode_key(k), bytes([v]))
            s1.commit(txn)
            model[encode_key(k)] = bytes([v])
        elif kind == "delete":
            txn = s1.begin()
            existed = tree.delete(s1, txn, encode_key(k))
            s1.commit(txn)
            assert existed == (encode_key(k) in model)
            model.pop(encode_key(k), None)
        elif kind == "crash":
            sd.crash_instance(1)
            sd.restart_instance(1)
            tree = BTree(tree.root_page_id, fanout=6)

    txn = s1.begin()
    scanned = list(tree.scan(s1, txn))
    for key, value in model.items():
        assert tree.search(s1, txn, key) == value
    s1.commit(txn)
    assert dict(scanned) == model
    assert [k for k, _ in scanned] == sorted(model)


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(st.integers(0, 200), min_size=1, max_size=120,
                  unique=True),
    crash_at=st.integers(0, 119),
)
def test_property_committed_inserts_survive_crash(keys, crash_at):
    """Durability for the index: everything committed before an
    arbitrary crash point is present afterwards."""
    sd = SDComplex(n_data_pages=1024)
    s1 = sd.add_instance(1)
    txn = s1.begin()
    tree = BTree.create(s1, txn, fanout=6)
    s1.commit(txn)
    committed = []
    for i, k in enumerate(keys):
        if i == crash_at:
            sd.crash_instance(1)
            sd.restart_instance(1)
        txn = s1.begin()
        tree.insert(s1, txn, encode_key(k), b"v")
        s1.commit(txn)
        committed.append(encode_key(k))
    sd.crash_instance(1)
    sd.restart_instance(1)
    txn = s1.begin()
    assert [k for k, _ in tree.scan(s1, txn)] == sorted(committed)
    s1.commit(txn)
