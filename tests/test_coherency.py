"""Unit tests for the coherency controller (medium and fast schemes)."""

import pytest

from repro import SDComplex
from repro.common.errors import ProtocolError
from repro.common.stats import DISK_PAGE_WRITES


def build(scheme="medium", n=3):
    sd = SDComplex(n_data_pages=256, transfer_scheme=scheme)
    instances = [sd.add_instance(i + 1) for i in range(n)]
    return sd, instances


def committed_row(instance, payload=b"v0"):
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    slot = instance.insert(txn, page_id, payload)
    instance.commit(txn)
    return page_id, slot


class TestOwnershipTracking:
    def test_new_page_owned_by_creator(self):
        sd, (s1, s2, s3) = build()
        page_id, _ = committed_row(s1)
        assert sd.coherency.writer_of(page_id) == 1
        assert sd.coherency.readers_of(page_id) == {1}

    def test_update_access_moves_ownership(self):
        sd, (s1, s2, s3) = build()
        page_id, slot = committed_row(s1)
        page = sd.coherency.access(s2, page_id, for_update=True)
        s2.pool.unfix(page_id)
        assert sd.coherency.writer_of(page_id) == 2
        assert sd.coherency.readers_of(page_id) == {2}

    def test_read_access_joins_reader_set(self):
        sd, (s1, s2, s3) = build()
        page_id, slot = committed_row(s1)
        s1.pool.write_page(page_id)
        for reader in (s2, s3):
            sd.coherency.access(reader, page_id, for_update=False)
            reader.pool.unfix(page_id)
        assert sd.coherency.readers_of(page_id) >= {2, 3}

    def test_pages_owned_by(self):
        sd, (s1, s2, s3) = build()
        a, _ = committed_row(s1)
        b, _ = committed_row(s2)
        owned = sd.coherency.pages_owned_by(1)
        assert a in owned and b not in owned


class TestMediumScheme:
    def test_surrender_forces_disk_write(self):
        sd, (s1, s2, s3) = build("medium")
        page_id, slot = committed_row(s1)
        writes = sd.stats.get(DISK_PAGE_WRITES)
        sd.coherency.access(s2, page_id, for_update=True)
        s2.pool.unfix(page_id)
        assert sd.stats.get(DISK_PAGE_WRITES) > writes
        assert sd.disk.page_lsn_on_disk(page_id) is not None

    def test_read_demotes_writer(self):
        sd, (s1, s2, s3) = build("medium")
        page_id, slot = committed_row(s1)
        sd.coherency.access(s2, page_id, for_update=False)
        s2.pool.unfix(page_id)
        assert sd.coherency.writer_of(page_id) is None
        assert sd.coherency.readers_of(page_id) >= {2}

    def test_evicted_page_read_from_disk(self):
        """If the writer already evicted (and thus wrote) the page, the
        requester just reads disk — no transfer message."""
        sd, (s1, s2, s3) = build("medium")
        page_id, slot = committed_row(s1)
        s1.pool.write_page(page_id)
        s1.pool.drop_page(page_id)
        transfers = sd.stats.get("net.messages.page_transfer")
        page = sd.coherency.access(s2, page_id, for_update=True)
        s2.pool.unfix(page_id)
        assert page.read_record(slot) == b"v0"
        assert sd.stats.get("net.messages.page_transfer") == transfers


class TestFastScheme:
    def test_surrender_skips_disk(self):
        sd, (s1, s2, s3) = build("fast")
        page_id, slot = committed_row(s1)
        writes = sd.stats.get(DISK_PAGE_WRITES)
        sd.coherency.access(s2, page_id, for_update=True)
        s2.pool.unfix(page_id)
        assert sd.stats.get(DISK_PAGE_WRITES) == writes
        assert s2.pool.is_dirty(page_id)

    def test_share_copy_keeps_owner(self):
        sd, (s1, s2, s3) = build("fast")
        page_id, slot = committed_row(s1)
        page = sd.coherency.access(s2, page_id, for_update=False)
        s2.pool.unfix(page_id)
        assert page.read_record(slot) == b"v0"
        assert sd.coherency.writer_of(page_id) == 1
        assert s1.pool.is_dirty(page_id)
        assert not s2.pool.is_dirty(page_id)

    def test_transfer_replaces_stale_buffered_copy(self):
        """Regression (hypothesis-found): a pool-cached older copy must
        be superseded by the transferred image."""
        sd, (s1, s2, s3) = build("fast")
        page_id, slot = committed_row(s1, b"old")
        # S2 takes a read copy, then S1 updates again.
        sd.coherency.access(s2, page_id, for_update=False)
        s2.pool.unfix(page_id)
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"newer")
        s1.commit(txn)
        # S2 still holds its (stale, clean) copy?  The update-grant
        # invalidation should have dropped it; but even if present, an
        # update access must see the transferred current image.
        page = sd.coherency.access(s2, page_id, for_update=True)
        value = page.read_record(slot)
        s2.pool.unfix(page_id)
        assert value == b"newer"


class TestCrashFencing:
    def test_fence_blocks_other_systems(self):
        sd, (s1, s2, s3) = build()
        page_id, _ = committed_row(s1)
        sd.coherency.note_crash(1)
        with pytest.raises(ProtocolError):
            sd.coherency.access(s2, page_id, for_update=False)

    def test_owner_itself_passes_fence(self):
        sd, (s1, s2, s3) = build()
        page_id, _ = committed_row(s1)
        s1.pool.write_page(page_id)
        sd.coherency.note_crash(1)
        page = sd.coherency.access(s1, page_id, for_update=True)
        s1.pool.unfix(page_id)
        assert page.page_id == page_id

    def test_note_recovered_lifts_fence(self):
        sd, (s1, s2, s3) = build()
        page_id, _ = committed_row(s1)
        s1.pool.write_page(page_id)
        sd.coherency.note_crash(1)
        sd.coherency.note_recovered(1)
        sd.coherency.access(s2, page_id, for_update=False)
        s2.pool.unfix(page_id)

    def test_unowned_pages_unaffected_by_crash(self):
        sd, (s1, s2, s3) = build()
        mine, slot = committed_row(s2)
        sd.coherency.note_crash(1)
        txn = s2.begin()
        assert s2.read(txn, mine, slot) == b"v0"
        s2.commit(txn)
