"""Deterministic soak test: everything at once, then verify.

One long scenario over a 3-system complex combining the whole feature
surface — interleaved workloads, B-tree churn, segmented tables and
mass delete, checkpoints and log archiving, single-instance crashes,
staged restart with traffic during the undo window, complex-wide
failure, group commit, and media recovery — with the invariant verifier
and an application-level oracle run at the end.
"""

import random

from repro import BTree, SDComplex, SegmentedTable
from repro.common.errors import (
    DeadlockError,
    LockWouldBlock,
    ProtocolError,
    ReproError,
)
from repro.harness import verify_sd_complex
from repro.recovery.checkpoint import archive_log
from repro.recovery.media import recover_page_from_media
from repro.storage.image_copy import ImageCopy


def test_soak_everything(  ):
    rng = random.Random(20260704)
    sd = SDComplex(n_data_pages=2048)
    systems = [sd.add_instance(i, escalation_threshold=12) for i in (1, 2, 3)]
    s1, s2, s3 = systems

    # --- setup: a table, an index, and an oracle -----------------------
    table = SegmentedTable("soak", segment_pages=4)
    txn = s1.begin()
    index = BTree.create(s1, txn, fanout=8)
    oracle = {}
    for i in range(40):
        key = b"k%04d" % i
        rid = table.insert_row(s1, txn, b"val-%04d" % i)
        index.insert(s1, txn, key, b"%d:%d" % rid)
        oracle[key] = b"val-%04d" % i
    s1.commit(txn)

    def rid_of(payload):
        page, slot = payload.split(b":")
        return int(page), int(slot)

    def do_update(instance, i, value):
        key = b"k%04d" % i
        txn = instance.begin()
        try:
            rid = rid_of(index.search(instance, txn, key))
            table.update_row(instance, txn, rid, value)
            if rng.random() < 0.3:
                instance.commit(txn, lazy=True)
            else:
                instance.commit(txn)
            oracle[key] = value
            return True
        except (LockWouldBlock, DeadlockError, ProtocolError):
            try:
                instance.rollback(txn)
            except ReproError:
                pass  # best-effort rollback of a doomed txn
            return False

    # --- phase 1: mixed traffic + checkpoints + archiving --------------
    for step in range(120):
        instance = systems[step % 3]
        if instance.crashed:
            continue
        do_update(instance, rng.randrange(40), b"p1-%04d" % step)
        if step % 25 == 24:
            for inst in systems:
                if not inst.crashed:
                    inst.sync_commits()
                    archive_log(inst)

    # --- phase 2: single crash + staged restart with traffic -----------
    for inst in systems:
        inst.sync_commits()
    sd.crash_instance(2)
    staged = sd.begin_staged_restart(2)
    staged.run_redo()
    for step in range(10):   # business continues during the undo window
        do_update(s1, rng.randrange(40), b"window-%02d" % step)
    staged.run_undo()

    # --- phase 3: B-tree churn exercising dealloc/realloc --------------
    txn = s3.begin()
    for i in range(10, 30):
        index.delete(s3, txn, b"k%04d" % i)
    s3.commit(txn)
    txn = s2.begin()
    for i in range(10, 30):
        key = b"k%04d" % i
        # Records still exist in the table; re-index them.
        match = [rid for rid, payload in table.scan(s2, txn)
                 if payload == oracle[key]]
        index.insert(s2, txn, key, b"%d:%d" % match[0])
    s2.commit(txn)

    # --- phase 4: image copy, more traffic, media failure --------------
    for inst in systems:
        inst.sync_commits()
        inst.pool.flush_all()
    dump = ImageCopy.take(sd.disk, logs=sd.local_logs())
    for step in range(30):
        do_update(systems[step % 3], rng.randrange(40), b"p4-%04d" % step)
    for inst in systems:
        inst.sync_commits()
        inst.pool.flush_all()
    victim_page = table.pages[0]
    sd.disk.lose_page(victim_page)
    recover_page_from_media(victim_page, dump, sd.local_logs(),
                            disk=sd.disk)

    # --- phase 5: total failure + restart -------------------------------
    # (an in-flight transaction rides into the crash)
    loser = s1.begin()
    key = b"k%04d" % 0
    rid = rid_of(index.search(s1, loser, key))
    table.update_row(s1, loser, rid, b"never-committed")
    s1.log.force()
    sd.crash_complex()
    sd.restart_complex()

    # --- verdict ---------------------------------------------------------
    report = verify_sd_complex(sd, quiesced=True)
    assert report.ok, [str(v) for v in report.violations]

    txn = s2.begin()
    for key, expected in oracle.items():
        rid = rid_of(index.search(s2, txn, key))
        assert table.read_row(s2, txn, rid) == expected, key
    s2.commit(txn)

    # Pages all structurally valid on disk.
    for page_id in sd.disk.written_page_ids():
        sd.disk.read_page(page_id).validate()
