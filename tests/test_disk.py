"""Tests for the simulated shared disk."""

import pytest

from repro.common.errors import MediaError
from repro.common.stats import DISK_PAGE_READS, DISK_PAGE_WRITES, StatsRegistry
from repro.storage.disk import SharedDisk
from repro.storage.page import Page, PageType


def make_disk(capacity=100):
    return SharedDisk(capacity=capacity, stats=StatsRegistry())


def formatted(page_id, payload=b"payload"):
    page = Page()
    page.format(page_id, PageType.DATA)
    page.insert_record(payload)
    return page


class TestReadWrite:
    def test_write_then_read(self):
        disk = make_disk()
        disk.write_page(formatted(5))
        page = disk.read_page(5)
        assert page.page_id == 5
        assert page.read_record(0) == b"payload"

    def test_read_never_written_returns_free_page(self):
        disk = make_disk()
        page = disk.read_page(9)
        assert page.page_type == PageType.FREE
        assert page.page_id == 9

    def test_write_does_not_mutate_callers_page(self):
        disk = make_disk()
        page = formatted(5)
        before = page.to_bytes()
        disk.write_page(page)
        assert page.to_bytes() == before  # checksum stamped on copy only

    def test_overwrite_replaces_content(self):
        disk = make_disk()
        disk.write_page(formatted(5, b"old"))
        disk.write_page(formatted(5, b"new"))
        assert disk.read_page(5).read_record(0) == b"new"

    def test_page_id_bounds(self):
        disk = make_disk(capacity=10)
        with pytest.raises(ValueError):
            disk.read_page(10)
        with pytest.raises(ValueError):
            disk.write_page(formatted(10))

    def test_io_counters(self):
        disk = make_disk()
        disk.write_page(formatted(1))
        disk.write_page(formatted(2))
        disk.read_page(1)
        assert disk.stats.get(DISK_PAGE_WRITES) == 2
        assert disk.stats.get(DISK_PAGE_READS) == 1

    def test_page_lsn_on_disk_helper(self):
        disk = make_disk()
        page = formatted(3)
        page.page_lsn = 77
        disk.write_page(page)
        reads_before = disk.stats.get(DISK_PAGE_READS)
        assert disk.page_lsn_on_disk(3) == 77
        assert disk.stats.get(DISK_PAGE_READS) == reads_before

    def test_written_page_ids_sorted(self):
        disk = make_disk()
        for page_id in (9, 2, 5):
            disk.write_page(formatted(page_id))
        assert list(disk.written_page_ids()) == [2, 5, 9]


class TestFaultInjection:
    def test_lost_page_raises_media_error(self):
        disk = make_disk()
        disk.write_page(formatted(4))
        disk.lose_page(4)
        with pytest.raises(MediaError):
            disk.read_page(4)

    def test_rewrite_heals_lost_page(self):
        disk = make_disk()
        disk.write_page(formatted(4, b"a"))
        disk.lose_page(4)
        disk.write_page(formatted(4, b"b"))
        assert disk.read_page(4).read_record(0) == b"b"

    def test_corruption_caught_by_checksum(self):
        disk = make_disk()
        disk.write_page(formatted(4))
        disk.corrupt_page(4, byte_offset=200)
        with pytest.raises(MediaError):
            disk.read_page(4)

    def test_corrupt_unwritten_page_raises(self):
        disk = make_disk()
        with pytest.raises(ValueError):
            disk.corrupt_page(4)

    def test_page_exists(self):
        disk = make_disk()
        assert not disk.page_exists(6)
        disk.write_page(formatted(6))
        assert disk.page_exists(6)
        disk.lose_page(6)
        assert not disk.page_exists(6)
