"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the reproduction promises >= 3 examples"


def test_module_demo_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "All demos passed" in result.stdout
