"""Tests for log-shipping replication: shipper, standby, promotion."""

import pytest

from repro.common.errors import ReproError
from repro.common.stats import (
    RETRY_EXHAUSTED,
    REPL_DEGRADED_ENTRIES,
    REPL_RECORDS_SHIPPED,
    StatsRegistry,
)
from repro.faults import points as fp
from repro.faults.injector import FaultInjector, FaultPlan
from repro.faults.policy import RetryPolicy
from repro.obs.tracer import Tracer
from repro.replication import (
    ACK_ALL,
    ACK_LOCAL,
    ACK_QUORUM,
    NULL_REPLICATION,
    ReplicationConfig,
    StandbyComplex,
)
from repro.sd.complex import SDComplex
from repro.wal.records import RecordKind


def build(ack=ACK_QUORUM, n_standbys=2, window=4, batch=2, injector=None,
          tracer=None, retry=None):
    sd = SDComplex(
        n_data_pages=64, tracer=tracer, injector=injector,
        replicate=ReplicationConfig(ack=ack, window_records=window,
                                    batch_records=batch, retry=retry),
    )
    for system_id in (1, 2):
        sd.add_instance(system_id)
    standbys = [sd.replication.add_standby(9 + i) for i in range(n_standbys)]
    return sd, standbys


def commit_one(instance, payload=b"payload"):
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    instance.insert(txn, page_id, payload)
    instance.commit(txn)
    return page_id


class TestNullReplication:
    def test_default_complex_has_null_replication(self):
        sd = SDComplex(n_data_pages=64)
        assert sd.replication is NULL_REPLICATION
        assert not sd.replication.enabled

    def test_null_rejects_standbys(self):
        sd = SDComplex(n_data_pages=64)
        with pytest.raises(ReproError):
            sd.replication.add_standby(9)

    def test_explicit_none_kwargs_trace_identical(self):
        """``replicate=None, disk=None`` must be inert: same seed, same
        trace as a construction without the new keywords at all."""
        def run(**kwargs):
            tracer = Tracer()
            sd = SDComplex(n_data_pages=64, tracer=tracer, **kwargs)
            instance = sd.add_instance(1)
            commit_one(instance)
            return [(e.kind, tuple(sorted(e.fields.items())))
                    for e in tracer.events()]

        assert run() == run(replicate=None, disk=None)


class TestShipping:
    def test_quorum_ships_everything_at_commit(self):
        sd, standbys = build(ack=ACK_QUORUM)
        commit_one(sd.instances[1])
        assert sd.replication.pending_records() == 0
        commit_lsn = sd.replication.commit_acks[-1].lsn
        for standby in standbys:
            # Everything stable at the commit point is on the standby;
            # only the post-commit END record (appended after the ack
            # round, still volatile) may trail.
            assert int(standby.applied_max_lsn) >= commit_lsn

    def test_acks_are_cumulative_per_standby(self):
        sd, standbys = build(ack=ACK_ALL)
        commit_one(sd.instances[1])
        commit_one(sd.instances[2])
        for standby in standbys:
            assert sd.replication.acked_lsn(standby.system_id) == \
                int(standby.applied_max_lsn)

    def test_local_mode_bounds_unshipped_tail_by_window(self):
        sd, _ = build(ack=ACK_LOCAL, window=4)
        for _ in range(5):
            commit_one(sd.instances[1])
        assert sd.replication.pending_records() <= 4

    def test_drain_ships_the_local_tail(self):
        sd, standbys = build(ack=ACK_LOCAL, window=4)
        commit_one(sd.instances[1])
        sd.instances[1].log.force()
        sd.replication.drain()
        assert sd.replication.pending_records() == 0
        for standby in standbys:
            assert standby.applied_max_lsn == \
                sd.instances[1].log.local_max_lsn

    def test_standby_disk_mirrors_committed_page(self):
        sd, standbys = build(ack=ACK_ALL)
        page_id = commit_one(sd.instances[1], b"mirrored row")
        sd.instances[1].pool.flush_all()
        primary_lsn = sd.disk.page_lsn_on_disk(page_id)
        for standby in standbys:
            assert standby.disk.page_lsn_on_disk(page_id) == primary_lsn
            assert bytes(standby.disk.raw_image(page_id)) == \
                bytes(sd.disk.raw_image(page_id))

    def test_only_stable_records_ship(self):
        """The volatile log tail never leaves the primary: a lazy
        (unforced) commit is invisible to the standbys."""
        sd, standbys = build(ack=ACK_QUORUM)
        instance = sd.instances[1]
        txn = instance.begin()
        page_id = instance.allocate_page(txn)
        instance.insert(txn, page_id, b"lazy")
        instance.commit(txn, lazy=True)
        sd.replication.drain()
        shipped_max = max((s.applied_max_lsn for s in standbys), default=0)
        assert shipped_max < instance.log.local_max_lsn
        instance.sync_commits()
        instance.log.force()
        sd.replication.drain()
        assert all(s.applied_max_lsn == instance.log.local_max_lsn
                   for s in standbys)


class TestStandbyApply:
    def test_duplicate_reship_is_screened(self):
        sd, standbys = build(ack=ACK_ALL)
        commit_one(sd.instances[1])
        standby = standbys[0]
        snapshot = standby.replica_snapshot()
        before = standby.applied_max_lsn
        applied = standby.receive(sorted(snapshot.items()))
        assert applied == 0
        assert standby.applied_max_lsn == before

    def test_quorum_vs_all_differ_with_lost_standby(self):
        """One unreachable standby of two: quorum (2 of 3 votes with
        the primary's own force) still satisfied, ``all`` is not — and
        neither stalls the commit."""
        for ack, expect in ((ACK_QUORUM, True), (ACK_ALL, False)):
            sd, _ = build(ack=ack)
            sd.replication._links[10].connected = False
            commit_one(sd.instances[1])
            last = sd.replication.commit_acks[-1]
            assert last.satisfied is expect
            assert sd.replication.ack_degraded

    def test_ship_retry_exhaustion_degrades_not_stalls(self):
        plan = FaultPlan(seed=0)
        plan.at(fp.REPL_SHIP).every_hit(1).fail()
        injector = FaultInjector(plan)
        stats = StatsRegistry()
        sd = SDComplex(
            n_data_pages=64, stats=stats, injector=injector,
            replicate=ReplicationConfig(
                ack=ACK_ALL, retry=RetryPolicy(max_attempts=2)),
        )
        instance = sd.add_instance(1)
        sd.replication.add_standby(9)
        commit_one(instance)  # must not raise: degrade, never stall
        assert not sd.replication.connected(9)
        assert sd.replication.ack_degraded
        assert not sd.replication.commit_acks[-1].satisfied
        assert stats.get(RETRY_EXHAUSTED) > 0
        assert stats.get(REPL_DEGRADED_ENTRIES) > 0
        assert stats.get(REPL_RECORDS_SHIPPED) == 0


class TestPromotion:
    def test_promoted_complex_accepts_new_work(self):
        sd, standbys = build(ack=ACK_QUORUM)
        commit_one(sd.instances[1])
        sd.crash_complex()
        promoted = standbys[0].promote()
        instance = promoted.instances[9]
        before = int(standbys[0].applied_max_lsn)
        commit_one(instance, b"after failover")
        assert int(instance.log.local_max_lsn) > before

    def test_promotion_rolls_back_inflight_primary_txns(self):
        """A transaction mid-flight at the crash (updates shipped, no
        commit record) must be undone on the promoted standby."""
        sd, standbys = build(ack=ACK_QUORUM)
        instance = sd.instances[1]
        committed_page = commit_one(instance, b"keep me")
        txn = instance.begin()
        loser_page = instance.allocate_page(txn)
        instance.insert(txn, loser_page, b"lose me")
        instance.log.force()          # updates reach stable storage...
        sd.replication.drain()        # ...and ship to the standbys
        sd.crash_complex()
        standby = standbys[0]
        promoted = standby.promote()
        clr_kinds = {record.kind
                     for log in standby.replica_logs()
                     for _, record in log.scan()}
        assert RecordKind.CLR in clr_kinds
        reader = promoted.instances[9]
        read_txn = reader.begin()
        assert reader.read(read_txn, committed_page, 0) == b"keep me"
        reader.commit(read_txn)

    def test_salvaged_logs_close_the_lag(self):
        """Shared-disk salvage: promoting with the dead primary's
        stable logs loses nothing, even in async local mode."""
        sd, standbys = build(ack=ACK_LOCAL, window=16)
        for _ in range(4):
            commit_one(sd.instances[1])
        assert sd.replication.pending_records() > 0  # real lag
        sd.crash_complex()
        standby = standbys[0]
        standby.promote(salvaged_logs=sd.local_logs())
        stable_commits = {
            (log.system_id, record.txn_id)
            for log in sd.local_logs()
            for _, record in log.scan(include_unflushed=False)
            if record.kind == RecordKind.COMMIT
        }
        replica_commits = {
            (log.system_id, record.txn_id)
            for log in standby.replica_logs()
            for _, record in log.scan()
            if record.kind == RecordKind.COMMIT
        }
        assert stable_commits <= replica_commits

    def test_promote_seeds_lsn_clock_above_applied(self):
        sd, standbys = build(ack=ACK_ALL)
        commit_one(sd.instances[1])
        sd.crash_complex()
        standby = standbys[0]
        promoted = standby.promote()
        assert promoted.instances[9].log.local_max_lsn >= \
            standby.applied_max_lsn


class TestStandbyGuards:
    def test_rejects_duplicate_standby(self):
        sd, _ = build()
        with pytest.raises(ReproError):
            sd.replication.add_standby(9)

    def test_rejects_primary_instance_id(self):
        sd, _ = build()
        with pytest.raises(ReproError):
            sd.replication.add_standby(1)

    def test_standby_formats_space_maps(self):
        sd, standbys = build()
        for smp_page_id in sd.space_map.smp_page_ids():
            assert smp_page_id in standbys[0].disk.written_page_ids()
