"""Tests for log record serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wal.records import (
    HEADER_SIZE,
    CheckpointData,
    LogRecord,
    NO_PAGE,
    NO_SLOT,
    PageOp,
    RecordKind,
    decode_op,
    encode_op,
    make_clr,
    make_format,
    make_update,
)


class TestOpCodec:
    def test_roundtrip(self):
        op, data = decode_op(encode_op(PageOp.SET, b"abc"))
        assert op == PageOp.SET
        assert data == b"abc"

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_op(b"")

    def test_no_operand(self):
        op, data = decode_op(encode_op(PageOp.DELETE))
        assert op == PageOp.DELETE
        assert data == b""


class TestRecordSerialization:
    def test_roundtrip_all_fields(self):
        record = LogRecord(
            kind=RecordKind.UPDATE, txn_id=1_000_003, system_id=7,
            page_id=42, slot=3, lsn=99, prev_lsn=55, undo_next_lsn=11,
            redo=b"redo-bytes", undo=b"undo-bytes", extra=b"extra",
        )
        clone, offset = LogRecord.from_bytes(record.to_bytes())
        assert clone == record
        assert offset == record.serialized_size()

    def test_serialized_size(self):
        record = make_update(1, 1, 5, 0, redo=b"1234", undo=b"56")
        assert record.serialized_size() == HEADER_SIZE + 6
        assert len(record.to_bytes()) == record.serialized_size()

    def test_defaults(self):
        record = LogRecord(kind=RecordKind.COMMIT, txn_id=9)
        assert record.page_id == NO_PAGE
        assert record.slot == NO_SLOT
        assert not record.is_page_oriented()

    def test_parse_stream(self):
        records = [
            make_update(1, 1, 5, 0, redo=b"a", undo=b"b"),
            LogRecord(kind=RecordKind.COMMIT, txn_id=1),
            make_format(1, 1, 9, 1),
        ]
        data = b"".join(r.to_bytes() for r in records)
        parsed = list(LogRecord.parse_stream(data))
        assert [r for _, r in parsed] == records
        offsets = [o for o, _ in parsed]
        assert offsets[0] == 0
        assert offsets[1] == records[0].serialized_size()

    def test_undoable_classification(self):
        assert make_update(1, 1, 5, 0, b"a", b"b").is_undoable()
        assert not make_clr(1, 1, 5, 0, b"a", undo_next_lsn=3).is_undoable()
        assert not make_format(1, 1, 9, 1).is_undoable()
        assert not LogRecord(kind=RecordKind.COMMIT).is_undoable()
        assert LogRecord(kind=RecordKind.SMP_UPDATE).is_undoable()

    def test_clr_is_redo_only(self):
        clr = make_clr(1, 1, 5, 0, redo=b"comp", undo_next_lsn=44)
        assert clr.undo == b""
        assert clr.undo_next_lsn == 44

    def test_format_record_carries_page_type(self):
        fmt = make_format(1, 2, page_id=30, page_type=2)
        op, data = decode_op(fmt.redo)
        assert op == PageOp.FORMAT
        assert data == bytes([2])

    @settings(max_examples=80, deadline=None)
    @given(
        kind=st.sampled_from(list(RecordKind)),
        txn_id=st.integers(0, 2**63),
        system_id=st.integers(0, 2**16 - 1),
        page_id=st.integers(0, 2**32 - 1),
        slot=st.integers(0, 2**16 - 1),
        lsn=st.integers(0, 2**63),
        prev_lsn=st.integers(0, 2**63),
        redo=st.binary(max_size=200),
        undo=st.binary(max_size=200),
        extra=st.binary(max_size=200),
    )
    def test_property_roundtrip(self, kind, txn_id, system_id, page_id,
                                slot, lsn, prev_lsn, redo, undo, extra):
        record = LogRecord(
            kind=kind, txn_id=txn_id, system_id=system_id, page_id=page_id,
            slot=slot, lsn=lsn, prev_lsn=prev_lsn,
            redo=redo, undo=undo, extra=extra,
        )
        clone, _ = LogRecord.from_bytes(record.to_bytes())
        assert clone == record


class TestCheckpointData:
    def test_roundtrip(self):
        data = CheckpointData(
            dirty_pages={10: (100, 2048), 20: (200, 4096)},
            transactions={1_000_001: (150, 0), 2_000_001: (250, 1)},
        )
        clone = CheckpointData.from_bytes(data.to_bytes())
        assert clone.dirty_pages == data.dirty_pages
        assert clone.transactions == data.transactions

    def test_empty(self):
        clone = CheckpointData.from_bytes(CheckpointData().to_bytes())
        assert clone.dirty_pages == {}
        assert clone.transactions == {}

    @settings(max_examples=50, deadline=None)
    @given(
        dpt=st.dictionaries(st.integers(0, 2**32 - 1),
                            st.tuples(st.integers(0, 2**63),
                                      st.integers(0, 2**63)),
                            max_size=30),
        tt=st.dictionaries(st.integers(0, 2**63),
                           st.tuples(st.integers(0, 2**63),
                                     st.integers(0, 1)),
                           max_size=30),
    )
    def test_property_roundtrip(self, dpt, tt):
        data = CheckpointData(dirty_pages=dpt, transactions=tt)
        clone = CheckpointData.from_bytes(data.to_bytes())
        assert clone.dirty_pages == dpt
        assert clone.transactions == tt


class TestZeroCopyParsing:
    """PR 3 fast lane: ``parse_stream``/``from_bytes`` accept
    ``memoryview`` and never copy the buffer for header parsing."""

    def _stream(self):
        records = [
            make_update(1, 1, 5, 0, redo=b"a" * 10, undo=b"b" * 10),
            LogRecord(kind=RecordKind.COMMIT, txn_id=1),
            make_format(1, 1, 9, 1),
        ]
        return records, b"".join(r.to_bytes() for r in records)

    def test_parse_stream_accepts_memoryview(self):
        records, data = self._stream()
        parsed = [r for _, r in LogRecord.parse_stream(memoryview(data))]
        assert parsed == records

    def test_parse_stream_accepts_bytearray(self):
        records, data = self._stream()
        parsed = [r for _, r in LogRecord.parse_stream(bytearray(data))]
        assert parsed == records

    def test_from_bytes_accepts_memoryview_at_offset(self):
        records, data = self._stream()
        offset = records[0].serialized_size()
        clone, _ = LogRecord.from_bytes(memoryview(data), offset)
        assert clone == records[1]

    def test_no_intermediate_bytes_for_headers(self, monkeypatch):
        """Regression: every header unpack must happen against the one
        shared memoryview — no per-record slicing/copying of the input
        buffer on the header path."""
        from repro.wal import records as records_mod

        real_header = records_mod._HEADER
        seen_buffers = []

        records, data = self._stream()  # serialize before installing spy

        class SpyHeader:
            size = real_header.size
            pack = staticmethod(real_header.pack)

            @staticmethod
            def unpack_from(buffer, offset=0):
                seen_buffers.append(buffer)
                return real_header.unpack_from(buffer, offset)

        monkeypatch.setattr(records_mod, "_HEADER", SpyHeader)
        view = memoryview(data)
        parsed = [r for _, r in LogRecord.parse_stream(view)]
        assert parsed == records
        assert len(seen_buffers) == len(records)
        for buffer in seen_buffers:
            assert buffer is view, "header parsed from a copied buffer"


class TestEncodingCache:
    def test_to_bytes_is_cached(self):
        record = make_update(1, 1, 5, 0, redo=b"r", undo=b"u")
        assert record.to_bytes() is record.to_bytes()

    def test_field_assignment_invalidates_cache(self):
        record = make_update(1, 1, 5, 0, redo=b"r", undo=b"u")
        first = record.to_bytes()
        record.lsn = 42
        second = record.to_bytes()
        assert second is not first
        clone, _ = LogRecord.from_bytes(second)
        assert clone.lsn == 42

    def test_cache_never_leaks_into_equality(self):
        cached = make_update(1, 1, 5, 0, redo=b"r", undo=b"u")
        cached.to_bytes()
        fresh = make_update(1, 1, 5, 0, redo=b"r", undo=b"u")
        assert cached == fresh

    def test_parsed_record_reserializes_identically(self):
        record = make_update(3, 2, 7, 1, redo=b"xy", undo=b"z")
        record.lsn = 9
        data = record.to_bytes()
        clone, _ = LogRecord.from_bytes(data)
        assert clone.to_bytes() == data


class TestStampAndEncodeBatch:
    def test_matches_single_stamp_path(self):
        from repro.wal.records import stamp_and_encode_batch

        def fresh():
            return [
                make_update(i + 1, 0, 10 + i, 0, redo=b"r" * i, undo=b"u")
                for i in range(6)
            ]

        slow = fresh()
        expected = []
        lsn = 0
        for record in slow:
            lsn += 1
            record.lsn = lsn
            record.system_id = 3
            expected.append(record.to_bytes())
        fast = fresh()
        parts, last = stamp_and_encode_batch(fast, 0, 3)
        assert parts == expected
        assert last == lsn
        assert fast == slow

    def test_page_lsn_rule(self):
        from repro.wal.records import stamp_and_encode_batch

        records = [make_update(1, 0, 10, 0, b"r", b"u") for _ in range(3)]
        _, last = stamp_and_encode_batch(records, 5, 1,
                                         page_lsns=[0, 100, 0])
        assert [r.lsn for r in records] == [6, 101, 102]
        assert last == 102

    def test_installed_cache_is_the_encoding(self):
        from repro.wal.records import stamp_and_encode_batch

        records = [make_update(1, 0, 10, 0, b"r", b"u")]
        (part,), _ = stamp_and_encode_batch(records, 0, 1)
        assert records[0].to_bytes() is part
