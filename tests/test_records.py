"""Tests for log record serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wal.records import (
    HEADER_SIZE,
    CheckpointData,
    LogRecord,
    NO_PAGE,
    NO_SLOT,
    PageOp,
    RecordKind,
    decode_op,
    encode_op,
    make_clr,
    make_format,
    make_update,
)


class TestOpCodec:
    def test_roundtrip(self):
        op, data = decode_op(encode_op(PageOp.SET, b"abc"))
        assert op == PageOp.SET
        assert data == b"abc"

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_op(b"")

    def test_no_operand(self):
        op, data = decode_op(encode_op(PageOp.DELETE))
        assert op == PageOp.DELETE
        assert data == b""


class TestRecordSerialization:
    def test_roundtrip_all_fields(self):
        record = LogRecord(
            kind=RecordKind.UPDATE, txn_id=1_000_003, system_id=7,
            page_id=42, slot=3, lsn=99, prev_lsn=55, undo_next_lsn=11,
            redo=b"redo-bytes", undo=b"undo-bytes", extra=b"extra",
        )
        clone, offset = LogRecord.from_bytes(record.to_bytes())
        assert clone == record
        assert offset == record.serialized_size()

    def test_serialized_size(self):
        record = make_update(1, 1, 5, 0, redo=b"1234", undo=b"56")
        assert record.serialized_size() == HEADER_SIZE + 6
        assert len(record.to_bytes()) == record.serialized_size()

    def test_defaults(self):
        record = LogRecord(kind=RecordKind.COMMIT, txn_id=9)
        assert record.page_id == NO_PAGE
        assert record.slot == NO_SLOT
        assert not record.is_page_oriented()

    def test_parse_stream(self):
        records = [
            make_update(1, 1, 5, 0, redo=b"a", undo=b"b"),
            LogRecord(kind=RecordKind.COMMIT, txn_id=1),
            make_format(1, 1, 9, 1),
        ]
        data = b"".join(r.to_bytes() for r in records)
        parsed = list(LogRecord.parse_stream(data))
        assert [r for _, r in parsed] == records
        offsets = [o for o, _ in parsed]
        assert offsets[0] == 0
        assert offsets[1] == records[0].serialized_size()

    def test_undoable_classification(self):
        assert make_update(1, 1, 5, 0, b"a", b"b").is_undoable()
        assert not make_clr(1, 1, 5, 0, b"a", undo_next_lsn=3).is_undoable()
        assert not make_format(1, 1, 9, 1).is_undoable()
        assert not LogRecord(kind=RecordKind.COMMIT).is_undoable()
        assert LogRecord(kind=RecordKind.SMP_UPDATE).is_undoable()

    def test_clr_is_redo_only(self):
        clr = make_clr(1, 1, 5, 0, redo=b"comp", undo_next_lsn=44)
        assert clr.undo == b""
        assert clr.undo_next_lsn == 44

    def test_format_record_carries_page_type(self):
        fmt = make_format(1, 2, page_id=30, page_type=2)
        op, data = decode_op(fmt.redo)
        assert op == PageOp.FORMAT
        assert data == bytes([2])

    @settings(max_examples=80, deadline=None)
    @given(
        kind=st.sampled_from(list(RecordKind)),
        txn_id=st.integers(0, 2**63),
        system_id=st.integers(0, 2**16 - 1),
        page_id=st.integers(0, 2**32 - 1),
        slot=st.integers(0, 2**16 - 1),
        lsn=st.integers(0, 2**63),
        prev_lsn=st.integers(0, 2**63),
        redo=st.binary(max_size=200),
        undo=st.binary(max_size=200),
        extra=st.binary(max_size=200),
    )
    def test_property_roundtrip(self, kind, txn_id, system_id, page_id,
                                slot, lsn, prev_lsn, redo, undo, extra):
        record = LogRecord(
            kind=kind, txn_id=txn_id, system_id=system_id, page_id=page_id,
            slot=slot, lsn=lsn, prev_lsn=prev_lsn,
            redo=redo, undo=undo, extra=extra,
        )
        clone, _ = LogRecord.from_bytes(record.to_bytes())
        assert clone == record


class TestCheckpointData:
    def test_roundtrip(self):
        data = CheckpointData(
            dirty_pages={10: (100, 2048), 20: (200, 4096)},
            transactions={1_000_001: (150, 0), 2_000_001: (250, 1)},
        )
        clone = CheckpointData.from_bytes(data.to_bytes())
        assert clone.dirty_pages == data.dirty_pages
        assert clone.transactions == data.transactions

    def test_empty(self):
        clone = CheckpointData.from_bytes(CheckpointData().to_bytes())
        assert clone.dirty_pages == {}
        assert clone.transactions == {}

    @settings(max_examples=50, deadline=None)
    @given(
        dpt=st.dictionaries(st.integers(0, 2**32 - 1),
                            st.tuples(st.integers(0, 2**63),
                                      st.integers(0, 2**63)),
                            max_size=30),
        tt=st.dictionaries(st.integers(0, 2**63),
                           st.tuples(st.integers(0, 2**63),
                                     st.integers(0, 1)),
                           max_size=30),
    )
    def test_property_roundtrip(self, dpt, tt):
        data = CheckpointData(dirty_pages=dpt, transactions=tt)
        clone = CheckpointData.from_bytes(data.to_bytes())
        assert clone.dirty_pages == dpt
        assert clone.transactions == tt
