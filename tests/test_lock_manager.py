"""Tests for the global lock manager."""

import pytest

from repro.common.errors import DeadlockError
from repro.locking.lock_manager import (
    LockManager,
    LockMode,
    LockStatus,
    are_compatible,
    page_lock,
    record_lock,
    supremum,
)

R = record_lock(10, 0)
R2 = record_lock(10, 1)


class TestModeAlgebra:
    def test_compat_matrix_symmetry(self):
        for a in LockMode:
            for b in LockMode:
                assert are_compatible(a, b) == are_compatible(b, a)

    def test_x_conflicts_with_everything(self):
        for mode in LockMode:
            assert not are_compatible(LockMode.X, mode)

    def test_is_compatible_with_all_but_x(self):
        for mode in LockMode:
            assert are_compatible(LockMode.IS, mode) == (mode != LockMode.X)

    def test_s_s_compatible(self):
        assert are_compatible(LockMode.S, LockMode.S)
        assert not are_compatible(LockMode.S, LockMode.IX)

    def test_six_semantics(self):
        assert are_compatible(LockMode.SIX, LockMode.IS)
        assert not are_compatible(LockMode.SIX, LockMode.IX)
        assert not are_compatible(LockMode.SIX, LockMode.S)

    def test_supremum(self):
        assert supremum(LockMode.S, LockMode.IX) == LockMode.SIX
        assert supremum(LockMode.S, LockMode.S) == LockMode.S
        assert supremum(LockMode.IS, LockMode.X) == LockMode.X
        assert supremum(LockMode.IX, LockMode.S) == LockMode.SIX


class TestGrantAndQueue:
    def test_grant_on_free_resource(self):
        lm = LockManager()
        assert lm.acquire(1, R, LockMode.X) is LockStatus.GRANTED
        assert lm.holds(1, R, LockMode.X)

    def test_compatible_sharers(self):
        lm = LockManager()
        assert lm.acquire(1, R, LockMode.S) is LockStatus.GRANTED
        assert lm.acquire(2, R, LockMode.S) is LockStatus.GRANTED
        assert set(lm.holders(R)) == {1, 2}

    def test_conflict_queues(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        assert lm.acquire(2, R, LockMode.S) is LockStatus.WAITING
        assert lm.waiters(R) == [2]

    def test_retry_keeps_queue_position(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        lm.acquire(2, R, LockMode.S)
        assert lm.acquire(2, R, LockMode.S) is LockStatus.WAITING
        assert lm.waiters(R) == [2]

    def test_release_promotes_fifo(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        lm.acquire(2, R, LockMode.S)
        lm.acquire(3, R, LockMode.S)
        granted = lm.release(1, R)
        assert granted == [2, 3]  # both S requests grant together
        assert lm.holds(2, R, LockMode.S)
        assert lm.holds(3, R, LockMode.S)

    def test_fifo_prevents_starvation(self):
        """An S behind a queued X must not jump the queue."""
        lm = LockManager()
        lm.acquire(1, R, LockMode.S)
        lm.acquire(2, R, LockMode.X)   # waits
        assert lm.acquire(3, R, LockMode.S) is LockStatus.WAITING

    def test_release_unheld_raises(self):
        lm = LockManager()
        with pytest.raises(KeyError):
            lm.release(1, R)

    def test_independent_resources(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        assert lm.acquire(2, R2, LockMode.X) is LockStatus.GRANTED

    def test_page_and_record_locks_distinct(self):
        lm = LockManager()
        lm.acquire(1, page_lock(10), LockMode.X)
        assert lm.acquire(2, record_lock(10, 0), LockMode.X) \
            is LockStatus.GRANTED  # hierarchy is caller policy


class TestConversion:
    def test_reacquire_same_mode_is_noop(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        assert lm.acquire(1, R, LockMode.X) is LockStatus.GRANTED

    def test_upgrade_sole_holder(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.S)
        assert lm.acquire(1, R, LockMode.X) is LockStatus.GRANTED
        assert lm.holds(1, R, LockMode.X)

    def test_weaker_request_keeps_stronger_lock(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        assert lm.acquire(1, R, LockMode.S) is LockStatus.GRANTED
        assert lm.holds(1, R, LockMode.X)

    def test_upgrade_blocked_by_sharer(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.S)
        lm.acquire(2, R, LockMode.S)
        assert lm.acquire(1, R, LockMode.X) is LockStatus.WAITING

    def test_conversion_granted_ahead_of_queue(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.S)
        lm.acquire(2, R, LockMode.S)
        lm.acquire(3, R, LockMode.X)           # plain request queues
        lm.acquire(2, R, LockMode.X)           # conversion queues first
        granted = lm.release(1, R)
        assert granted[0] == 2                 # conversion wins
        assert lm.holds(2, R, LockMode.X)

    def test_ix_plus_s_becomes_six(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.IX)
        lm.acquire(1, R, LockMode.S)
        assert lm.holders(R)[1] == LockMode.SIX


class TestReleaseAll:
    def test_release_all_clears_owner(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        lm.acquire(1, R2, LockMode.S)
        lm.release_all(1)
        assert lm.locks_of(1) == {}

    def test_release_all_promotes_waiters(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        lm.acquire(2, R, LockMode.X)
        promoted = lm.release_all(1)
        assert (R, 2) in promoted

    def test_release_all_removes_queued_requests(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        lm.acquire(2, R, LockMode.X)
        lm.release_all(2)  # victim gives up while queued
        assert lm.waiters(R) == []


class TestDeadlock:
    def test_two_party_deadlock_detected(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        lm.acquire(2, R2, LockMode.X)
        assert lm.acquire(2, R, LockMode.X) is LockStatus.WAITING
        with pytest.raises(DeadlockError):
            lm.acquire(1, R2, LockMode.X)

    def test_victim_request_removed(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        lm.acquire(2, R2, LockMode.X)
        lm.acquire(2, R, LockMode.X)
        with pytest.raises(DeadlockError):
            lm.acquire(1, R2, LockMode.X)
        assert lm.waiters(R2) == []
        # Victim still holds its original lock until it rolls back.
        assert lm.holds(1, R, LockMode.X)

    def test_three_party_cycle(self):
        lm = LockManager()
        r3 = record_lock(10, 2)
        lm.acquire(1, R, LockMode.X)
        lm.acquire(2, R2, LockMode.X)
        lm.acquire(3, r3, LockMode.X)
        assert lm.acquire(1, R2, LockMode.X) is LockStatus.WAITING
        assert lm.acquire(2, r3, LockMode.X) is LockStatus.WAITING
        with pytest.raises(DeadlockError):
            lm.acquire(3, R, LockMode.X)

    def test_no_false_positive_on_chain(self):
        lm = LockManager()
        lm.acquire(1, R, LockMode.X)
        assert lm.acquire(2, R, LockMode.X) is LockStatus.WAITING
        assert lm.acquire(3, R, LockMode.X) is LockStatus.WAITING

    def test_upgrade_deadlock(self):
        """Two S holders both upgrading to X deadlock."""
        lm = LockManager()
        lm.acquire(1, R, LockMode.S)
        lm.acquire(2, R, LockMode.S)
        assert lm.acquire(1, R, LockMode.X) is LockStatus.WAITING
        with pytest.raises(DeadlockError):
            lm.acquire(2, R, LockMode.X)


class TestFastPath:
    """The uncontended-acquire fast lane must be observably identical
    to the general path: same status, same stats, same trace events."""

    def test_mask_matches_reference_matrix(self):
        reference = {
            (LockMode.IS, LockMode.IS), (LockMode.IS, LockMode.IX),
            (LockMode.IS, LockMode.S), (LockMode.IS, LockMode.SIX),
            (LockMode.IX, LockMode.IX), (LockMode.S, LockMode.S),
        }
        for a in LockMode:
            for b in LockMode:
                expected = (a, b) in reference or (b, a) in reference
                assert are_compatible(a, b) is expected, (a, b)

    def test_uncontended_acquire_counts_request(self):
        from repro.common.stats import LOCK_REQUESTS, StatsRegistry

        stats = StatsRegistry()
        lm = LockManager(stats=stats)
        lm.acquire(1, R, LockMode.X)
        assert stats.get(LOCK_REQUESTS) == 1
        lm.acquire(1, R2, LockMode.S)
        assert stats.get(LOCK_REQUESTS) == 2

    def test_try_acquire_fast_path_grants(self):
        lm = LockManager()
        assert lm.try_acquire(1, R, LockMode.X) is LockStatus.GRANTED
        assert lm.holds(1, R, LockMode.X)
        assert lm.waiters(R) == []

    def test_fast_path_then_contention_behaves_normally(self):
        """A resource first touched via the fast lane must queue, convert
        and release exactly like one built by the general path."""
        lm = LockManager()
        lm.acquire(1, R, LockMode.S)          # fast lane creates the head
        assert lm.acquire(2, R, LockMode.S) is LockStatus.GRANTED
        assert lm.acquire(3, R, LockMode.X) is LockStatus.WAITING
        assert lm.waiters(R) == [3]
        lm.release(1, R)
        granted = lm.release(2, R)
        assert granted == [3]
        assert lm.holds(3, R, LockMode.X)

    def test_fast_path_emits_grant_trace(self):
        from repro.obs import events as ev
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        lm = LockManager(tracer=tracer)
        lm.acquire(1, R, LockMode.X)
        grants = [e for e in tracer.events() if e.kind == ev.LOCK_GRANT]
        assert len(grants) == 1
        assert grants[0].fields["owner"] == 1
        assert grants[0].fields["mode"] == "X"
