"""Tests for the fast page-transfer scheme (paper Section 5 extension).

Under "fast", a dirty page moves between buffer pools memory-to-memory
(after the sender forces its log) with no intermediate disk write;
restart recovery of a failed instance then redoes its pages from the
merged local logs.
"""

import pytest

from repro import SDComplex
from repro.common.stats import DISK_PAGE_WRITES


def fast_complex(n=2):
    sd = SDComplex(n_data_pages=256, transfer_scheme="fast")
    instances = [sd.add_instance(i + 1) for i in range(n)]
    return sd, instances


def committed_row(instance, payload=b"v0"):
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    slot = instance.insert(txn, page_id, payload)
    instance.commit(txn)
    return page_id, slot


class TestTransfer:
    def test_dirty_transfer_skips_disk_write(self):
        sd, (s1, s2) = fast_complex()
        page_id, slot = committed_row(s1)
        writes_before = sd.stats.get(DISK_PAGE_WRITES)
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"x")
        s2.commit(txn)
        assert sd.stats.get(DISK_PAGE_WRITES) == writes_before
        assert sd.disk.page_lsn_on_disk(page_id) is None  # never written

    def test_senders_log_forced_before_transfer(self):
        sd, (s1, s2) = fast_complex()
        page_id, slot = committed_row(s1)
        setup = s1.begin()
        other_slot = s1.insert(setup, page_id, b"other")
        s1.commit(setup)
        # Dirty the page with an *uncommitted* update, then transfer.
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"uncommitted")
        update_end = s1.pool.bcb(page_id).last_update_end
        assert not s1.log.is_stable(update_end)
        t2 = s2.begin()
        # Record locking lets S2 read the *other* record; the page copy
        # it receives still carries S1's uncommitted bytes, so S1's log
        # must be forced first.
        assert s2.read(t2, page_id, other_slot) == b"other"
        s2.commit(t2)
        assert s1.log.is_stable(update_end)
        s1.commit(txn)

    def test_dirty_status_travels_with_page(self):
        sd, (s1, s2) = fast_complex()
        page_id, slot = committed_row(s1)
        assert s1.pool.is_dirty(page_id)
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"x")
        s2.commit(txn)
        assert not s1.pool.contains(page_id)
        assert s2.pool.is_dirty(page_id)

    def test_fast_read_leaves_writer_in_place(self):
        sd, (s1, s2) = fast_complex()
        page_id, slot = committed_row(s1)
        txn = s2.begin()
        assert s2.read(txn, page_id, slot) == b"v0"
        s2.commit(txn)
        assert sd.coherency.writer_of(page_id) == 1
        assert s1.pool.is_dirty(page_id)

    def test_receiver_can_evict_transferred_dirty_page(self):
        """WAL at the receiver: the covering records are stable in the
        sender's log, so the receiver may write the page freely."""
        sd, (s1, s2) = fast_complex()
        page_id, slot = committed_row(s1)
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"x")
        s2.commit(txn)
        s2.pool.write_page(page_id)   # must not raise
        assert sd.disk.read_page(page_id).read_record(slot) == b"x"


class TestFastRestart:
    def test_migrated_never_written_page_recovers_via_merged_logs(self):
        """The defining scenario: updates from two systems on a page
        that never reached disk; the second system crashes; redo needs
        BOTH logs."""
        sd, (s1, s2) = fast_complex()
        page_id, slot = committed_row(s1, b"from-s1")
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"from-s2")
        s2.commit(txn)
        assert sd.disk.page_lsn_on_disk(page_id) is None
        sd.crash_instance(2)
        summary = sd.restart_instance(2)
        page = sd.disk.read_page(page_id)
        assert page.read_record(slot) == b"from-s2"
        # Redo replayed records from s1's log too (format+insert).
        assert summary.records_redone >= 3

    def test_uncommitted_migrated_update_undone(self):
        sd, (s1, s2) = fast_complex()
        page_id, slot = committed_row(s1, b"good")
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"BAD")
        s2.log.force()   # records stable, txn uncommitted
        sd.crash_instance(2)
        summary = sd.restart_instance(2)
        assert summary.loser_transactions == 1
        assert sd.disk.read_page(page_id).read_record(slot) == b"good"

    def test_undo_reaches_page_living_at_another_system(self):
        """Loser's page migrated onward before the crash: undo must
        fetch the current version via coherency."""
        sd, (s1, s2) = fast_complex()
        page_id, slot_a = committed_row(s1, b"keep")
        # S1 starts a txn, inserts a record, and the page migrates to
        # S2 (with S1's uncommitted insert on it) via S2's own update.
        t1 = s1.begin()
        slot_b = s1.insert(t1, page_id, b"uncommitted")
        t2 = s2.begin()
        slot_c = s2.insert(t2, page_id, b"s2-row")
        s2.commit(t2)
        assert sd.coherency.writer_of(page_id) == 2
        # Now S1 crashes with t1 in flight; its insert lives in S2's
        # buffered page version.
        s1.log.force()
        sd.crash_instance(1)
        sd.restart_instance(1)
        # S2 flushes; the page must keep committed rows, lose t1's.
        s2.pool.flush_all()
        page = sd.disk.read_page(page_id)
        assert page.read_record(slot_a) == b"keep"
        assert page.read_record(slot_b) is None
        assert page.read_record(slot_c) == b"s2-row"

    def test_skip_pages_held_dirty_by_live_system(self):
        """A page whose current version sits dirty in a live pool needs
        no reconstruction during another system's restart."""
        sd, (s1, s2) = fast_complex()
        page_id, slot = committed_row(s1, b"mine")
        other_page, other_slot = committed_row(s2, b"theirs")
        sd.crash_instance(1)
        sd.restart_instance(1)
        # S2's dirty page untouched by S1's recovery.
        assert s2.pool.is_dirty(other_page)
        s2.pool.flush_all()
        assert sd.disk.read_page(other_page).read_record(other_slot) \
            == b"theirs"
        assert sd.disk.read_page(page_id).read_record(slot) == b"mine"

    def test_stale_reader_copies_dropped_after_recovery(self):
        sd, (s1, s2) = fast_complex()
        page_id, slot = committed_row(s1, b"v1")
        txn = s2.begin()
        assert s2.read(txn, page_id, slot) == b"v1"   # cached copy at S2
        s2.commit(txn)
        t1 = s1.begin()
        s1.update(t1, page_id, slot, b"v2")
        s1.commit(t1)
        sd.crash_instance(1)
        sd.restart_instance(1)
        txn = s2.begin()
        assert s2.read(txn, page_id, slot) == b"v2"   # not the stale copy
        s2.commit(txn)

    def test_whole_complex_crash_and_recovery(self):
        sd, (s1, s2) = fast_complex()
        rows = [committed_row(s1, b"a"), committed_row(s2, b"b")]
        # Ping-pong so pages carry multi-system histories.
        for i in range(4):
            instance = (s1, s2)[i % 2]
            txn = instance.begin()
            instance.update(txn, rows[0][0], rows[0][1], b"p%d" % i)
            instance.commit(txn)
        sd.crash_complex()
        sd.restart_complex()
        assert sd.disk.read_page(rows[0][0]).read_record(rows[0][1]) == b"p3"
        assert sd.disk.read_page(rows[1][0]).read_record(rows[1][1]) == b"b"

    def test_restart_idempotent(self):
        sd, (s1, s2) = fast_complex()
        page_id, slot = committed_row(s1, b"v")
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"w")
        s2.commit(txn)
        for _ in range(2):
            sd.crash_instance(2)
            sd.restart_instance(2)
        assert sd.disk.read_page(page_id).read_record(slot) == b"w"


class TestSchemeComparison:
    def test_fast_writes_less_than_medium_under_ping_pong(self):
        def ping_pong(scheme):
            sd = SDComplex(n_data_pages=128, transfer_scheme=scheme)
            s1, s2 = sd.add_instance(1), sd.add_instance(2)
            page_id, slot = committed_row(s1)
            for i in range(10):
                instance = (s1, s2)[i % 2]
                txn = instance.begin()
                instance.update(txn, page_id, slot, b"r%d" % i)
                instance.commit(txn)
            return sd.stats.get(DISK_PAGE_WRITES)

        assert ping_pong("fast") < ping_pong("medium")

    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            SDComplex(transfer_scheme="teleport")
