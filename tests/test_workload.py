"""Tests for the workload generator and interleaved drivers."""

from repro import CsSystem, SDComplex
from repro.workload.generator import (
    OpKind,
    WorkloadConfig,
    build_scripts,
    populate_pages,
    run_interleaved_cs,
    run_interleaved_sd,
)


class TestScriptGeneration:
    def test_deterministic_under_seed(self):
        handles = [(64, 0), (64, 1), (65, 0)]
        cfg = WorkloadConfig(seed=5)
        a = build_scripts(cfg, 2, handles)
        b = build_scripts(cfg, 2, handles)
        assert [(s.system_index, [(o.kind, o.page_id, o.slot, o.payload)
                                  for o in s.ops]) for s in a] == \
               [(s.system_index, [(o.kind, o.page_id, o.slot, o.payload)
                                  for o in s.ops]) for s in b]

    def test_seed_changes_workload(self):
        handles = [(64, 0), (64, 1), (65, 0)]
        a = build_scripts(WorkloadConfig(seed=1), 2, handles)
        b = build_scripts(WorkloadConfig(seed=2), 2, handles)
        assert a != b or True  # scripts are dataclasses; compare ops
        ops_a = [(o.kind, o.page_id, o.slot) for s in a for o in s.ops]
        ops_b = [(o.kind, o.page_id, o.slot) for s in b for o in s.ops]
        assert ops_a != ops_b

    def test_transactions_round_robin_across_systems(self):
        handles = [(64, 0)]
        scripts = build_scripts(WorkloadConfig(n_transactions=6), 3, handles)
        assert [s.system_index for s in scripts] == [0, 1, 2, 0, 1, 2]

    def test_filler_rates_apply_per_system(self):
        handles = [(64, 0)]
        cfg = WorkloadConfig(n_transactions=4, filler_rates=(10, 0))
        scripts = build_scripts(cfg, 2, handles)
        for script in scripts:
            fillers = [o for o in script.ops if o.kind is OpKind.FILLER]
            if script.system_index == 0:
                assert len(fillers) == 1 and fillers[0].filler_records == 10
            else:
                assert not fillers

    def test_read_fraction_extremes(self):
        handles = [(64, 0), (65, 1)]
        all_reads = build_scripts(
            WorkloadConfig(read_fraction=1.0, n_transactions=5), 1, handles)
        assert all(o.kind is OpKind.READ
                   for s in all_reads for o in s.ops)
        all_writes = build_scripts(
            WorkloadConfig(read_fraction=0.0, n_transactions=5), 1, handles)
        assert all(o.kind is OpKind.UPDATE
                   for s in all_writes for o in s.ops)


class TestPopulate:
    def test_populate_sd(self):
        sd = SDComplex(n_data_pages=128)
        s1 = sd.add_instance(1)
        handles = populate_pages(s1, n_pages=3, records_per_page=4)
        assert len(handles) == 12
        txn = s1.begin()
        for page_id, slot in handles:
            assert s1.read(txn, page_id, slot) is not None
        s1.commit(txn)

    def test_populate_cs(self):
        cs = CsSystem(n_data_pages=128)
        c1 = cs.add_client(1)
        handles = populate_pages(c1, n_pages=2, records_per_page=3)
        assert len(handles) == 6


class TestDrivers:
    def test_sd_driver_commits_everything(self):
        sd = SDComplex(n_data_pages=256)
        instances = [sd.add_instance(i) for i in (1, 2)]
        handles = populate_pages(instances[0], 4, 4)
        cfg = WorkloadConfig(n_transactions=10, ops_per_txn=3, seed=3)
        scripts = build_scripts(cfg, 2, handles)
        result = run_interleaved_sd(instances, scripts)
        assert result.committed == 10
        for instance in instances:
            assert instance.txns.active_count() == 0

    def test_sd_driver_state_recoverable_after_run(self):
        sd = SDComplex(n_data_pages=256)
        instances = [sd.add_instance(i) for i in (1, 2)]
        handles = populate_pages(instances[0], 4, 4)
        scripts = build_scripts(
            WorkloadConfig(n_transactions=8, seed=11), 2, handles)
        run_interleaved_sd(instances, scripts)
        sd.crash_complex()
        sd.restart_complex()
        for page_id, slot in handles:
            assert sd.disk.read_page(page_id).read_record(slot) is not None

    def test_cs_driver_commits_everything(self):
        cs = CsSystem(n_data_pages=256)
        clients = [cs.add_client(i) for i in (1, 2)]
        handles = populate_pages(clients[0], 4, 4)
        cfg = WorkloadConfig(n_transactions=10, ops_per_txn=3, seed=3)
        scripts = build_scripts(cfg, 2, handles)
        result = run_interleaved_cs(clients, scripts,
                                    commit_lsn_service=cs.commit_lsn)
        assert result.committed == 10

    def test_hot_page_contention_generates_retries(self):
        sd = SDComplex(n_data_pages=256)
        instances = [sd.add_instance(i) for i in (1, 2)]
        handles = populate_pages(instances[0], 2, 2)
        cfg = WorkloadConfig(n_transactions=16, ops_per_txn=4,
                             read_fraction=0.0, hot_fraction=1.0,
                             n_hot_pages=1, seed=9)
        scripts = build_scripts(cfg, 2, handles)
        result = run_interleaved_sd(instances, scripts)
        assert result.committed + result.aborted_deadlock >= 16
        assert result.lock_retries > 0


class TestInsertOps:
    def test_insert_fraction_generates_inserts(self):
        handles = [(64, 0), (65, 0)]
        cfg = WorkloadConfig(n_transactions=6, ops_per_txn=4,
                             read_fraction=0.0, insert_fraction=1.0,
                             seed=2)
        scripts = build_scripts(cfg, 1, handles)
        assert all(op.kind is OpKind.INSERT
                   for s in scripts for op in s.ops)

    def test_insert_workload_runs_and_recovers(self):
        sd = SDComplex(n_data_pages=256)
        instances = [sd.add_instance(i) for i in (1, 2)]
        handles = populate_pages(instances[0], 4, 2)
        cfg = WorkloadConfig(n_transactions=10, ops_per_txn=3,
                             read_fraction=0.2, insert_fraction=0.5,
                             payload_bytes=16, seed=4)
        scripts = build_scripts(cfg, 2, handles)
        result = run_interleaved_sd(instances, scripts)
        assert result.committed == 10
        sd.crash_complex()
        sd.restart_complex()
        from repro.harness import verify_sd_complex
        report = verify_sd_complex(sd, quiesced=True)
        assert report.ok, [str(v) for v in report.violations]
