"""Tests for the buffer pool: fixing, eviction, WAL enforcement."""

import pytest

from repro.common.errors import BufferPoolFullError, WALViolationError
from repro.common.stats import (
    BUFFER_BATCH_FLUSHES,
    DISK_PAGE_READS,
    DISK_PAGE_WRITES,
    LOG_FORCES,
    LOG_FORCES_COALESCED,
    StatsRegistry,
)
from repro.buffer.buffer_pool import BufferPool
from repro.storage.disk import SharedDisk
from repro.storage.page import Page, PageType
from repro.wal.log_manager import LogManager
from repro.wal.records import make_update


def setup_pool(capacity=4, enforce_wal=True):
    stats = StatsRegistry()
    disk = SharedDisk(capacity=1000, stats=stats)
    log = LogManager(1, stats=stats)
    pool = BufferPool(disk, log, capacity=capacity, enforce_wal=enforce_wal)
    return pool, disk, log, stats


def seed_page(disk, page_id, payload=b"seed"):
    page = Page()
    page.format(page_id, PageType.DATA)
    page.insert_record(payload)
    disk.write_page(page)


def log_an_update(pool, log, page_id):
    """Simulate the engine logging one update against a fixed page."""
    page = pool.bcb(page_id).page
    record = make_update(1, 1, page_id, 0, b"r", b"u")
    addr = log.append(record, page_lsn=page.page_lsn)
    page.page_lsn = record.lsn
    pool.note_update(page_id, record.lsn, addr.offset, log.end_offset)
    return record


class TestFixing:
    def test_miss_reads_from_disk(self):
        pool, disk, _, stats = setup_pool()
        seed_page(disk, 5)
        page = pool.fix(5)
        assert page.read_record(0) == b"seed"
        assert stats.get(DISK_PAGE_READS) == 1

    def test_hit_avoids_disk(self):
        pool, disk, _, stats = setup_pool()
        seed_page(disk, 5)
        pool.fix(5)
        pool.unfix(5)
        pool.fix(5)
        assert stats.get(DISK_PAGE_READS) == 1

    def test_unfix_without_fix_raises(self):
        pool, disk, _, _ = setup_pool()
        seed_page(disk, 5)
        pool.fix(5)
        pool.unfix(5)
        with pytest.raises(ValueError):
            pool.unfix(5)

    def test_install_page_skips_disk(self):
        pool, _, _, stats = setup_pool()
        page = Page()
        page.format(9, PageType.INDEX)
        pool.install_page(page)
        assert pool.contains(9)
        assert pool.bcb(9).fix_count == 1
        assert stats.get(DISK_PAGE_READS) == 0

    def test_install_duplicate_raises(self):
        pool, disk, _, _ = setup_pool()
        seed_page(disk, 5)
        pool.fix(5)
        dup = Page()
        dup.format(5, PageType.DATA)
        with pytest.raises(ValueError):
            pool.install_page(dup)


class TestEviction:
    def test_lru_evicts_clean_unfixed(self):
        pool, disk, _, _ = setup_pool(capacity=2)
        for page_id in (1, 2):
            seed_page(disk, page_id)
            pool.fix(page_id)
            pool.unfix(page_id)
        seed_page(disk, 3)
        pool.fix(3)
        assert not pool.contains(1)  # LRU victim
        assert pool.contains(2)

    def test_eviction_writes_dirty_victim(self):
        pool, disk, log, stats = setup_pool(capacity=1)
        seed_page(disk, 1)
        pool.fix(1)
        log_an_update(pool, log, 1)
        pool.unfix(1)
        seed_page(disk, 2)
        writes_before = stats.get(DISK_PAGE_WRITES)
        pool.fix(2)
        assert stats.get(DISK_PAGE_WRITES) == writes_before + 1
        assert not pool.contains(1)

    def test_all_fixed_raises(self):
        pool, disk, _, _ = setup_pool(capacity=2)
        for page_id in (1, 2):
            seed_page(disk, page_id)
            pool.fix(page_id)
        seed_page(disk, 3)
        with pytest.raises(BufferPoolFullError):
            pool.fix(3)

    def test_fix_count_pins(self):
        pool, disk, _, _ = setup_pool(capacity=2)
        seed_page(disk, 1)
        pool.fix(1)
        seed_page(disk, 2)
        pool.fix(2)
        pool.unfix(2)
        seed_page(disk, 3)
        pool.fix(3)
        assert pool.contains(1)      # pinned, spared
        assert not pool.contains(2)  # evicted instead


class TestWal:
    def test_write_forces_log_first(self):
        """Invariant I3: dirty page write forces the log through the
        last update's address."""
        pool, disk, log, stats = setup_pool()
        seed_page(disk, 1)
        pool.fix(1)
        log_an_update(pool, log, 1)
        assert log.flushed_offset == 0
        pool.write_page(1)
        assert log.flushed_offset >= pool_last_update_end(pool, log)
        assert stats.get(LOG_FORCES) == 1

    def test_wal_violation_surfaces_when_forcing_disabled(self):
        pool, disk, log, _ = setup_pool(enforce_wal=False)
        seed_page(disk, 1)
        pool.fix(1)
        log_an_update(pool, log, 1)
        with pytest.raises(WALViolationError):
            pool.write_page(1)

    def test_no_force_needed_if_log_already_stable(self):
        pool, disk, log, stats = setup_pool()
        seed_page(disk, 1)
        pool.fix(1)
        log_an_update(pool, log, 1)
        log.force()
        forces = stats.get(LOG_FORCES)
        pool.write_page(1)
        assert stats.get(LOG_FORCES) == forces

    def test_write_marks_clean(self):
        pool, disk, log, _ = setup_pool()
        seed_page(disk, 1)
        pool.fix(1)
        log_an_update(pool, log, 1)
        pool.write_page(1)
        bcb = pool.bcb(1)
        assert not bcb.dirty
        assert bcb.rec_addr is None


def pool_last_update_end(pool, log):
    # After write_page the BCB is reset; the log end bounds the record.
    return log.flushed_offset


class TestBcbTracking:
    def test_rec_addr_set_on_first_update_only(self):
        """Section 3.2.2: RecAddr is the address of the update that took
        the page from clean to dirty; later updates keep it."""
        pool, disk, log, _ = setup_pool()
        seed_page(disk, 1)
        pool.fix(1)
        log_an_update(pool, log, 1)
        first_addr = pool.bcb(1).rec_addr
        first_lsn = pool.bcb(1).rec_lsn
        log_an_update(pool, log, 1)
        assert pool.bcb(1).rec_addr == first_addr
        assert pool.bcb(1).rec_lsn == first_lsn

    def test_last_update_end_advances(self):
        pool, disk, log, _ = setup_pool()
        seed_page(disk, 1)
        pool.fix(1)
        log_an_update(pool, log, 1)
        end1 = pool.bcb(1).last_update_end
        log_an_update(pool, log, 1)
        assert pool.bcb(1).last_update_end > end1

    def test_dirty_page_table(self):
        pool, disk, log, _ = setup_pool()
        for page_id in (1, 2):
            seed_page(disk, page_id)
            pool.fix(page_id)
        log_an_update(pool, log, 1)
        dpt = pool.dirty_page_table()
        assert set(dpt) == {1}
        rec_lsn, rec_addr = dpt[1]
        assert rec_lsn == pool.bcb(1).rec_lsn
        assert rec_addr == pool.bcb(1).rec_addr

    def test_receive_dirty_retains_old_rec_addr(self):
        """CS server path: a second dirty receipt keeps the first
        RecAddr (paper Section 3.2.2, explicitly)."""
        pool, disk, log, _ = setup_pool()
        page = Page()
        page.format(7, PageType.DATA)
        pool.receive_dirty(page.copy(), rec_lsn=10, rec_addr=128,
                           last_update_end=256)
        pool.receive_dirty(page.copy(), rec_lsn=50, rec_addr=999,
                           last_update_end=1024)
        bcb = pool.bcb(7)
        assert bcb.rec_addr == 128
        assert bcb.rec_lsn == 10
        assert bcb.last_update_end == 1024


class TestDropAndCrash:
    def test_drop_clean_page(self):
        pool, disk, _, _ = setup_pool()
        seed_page(disk, 1)
        pool.fix(1)
        pool.unfix(1)
        pool.drop_page(1)
        assert not pool.contains(1)

    def test_drop_dirty_refuses(self):
        pool, disk, log, _ = setup_pool()
        seed_page(disk, 1)
        pool.fix(1)
        log_an_update(pool, log, 1)
        pool.unfix(1)
        with pytest.raises(ValueError):
            pool.drop_page(1)

    def test_drop_missing_is_noop(self):
        pool, _, _, _ = setup_pool()
        pool.drop_page(12345)

    def test_crash_empties_pool(self):
        pool, disk, log, _ = setup_pool()
        seed_page(disk, 1)
        pool.fix(1)
        log_an_update(pool, log, 1)
        pool.crash()
        assert len(pool) == 0

    def test_flush_all(self):
        pool, disk, log, stats = setup_pool()
        for page_id in (1, 2, 3):
            seed_page(disk, page_id)
            pool.fix(page_id)
            log_an_update(pool, log, page_id)
        writes_before = stats.get(DISK_PAGE_WRITES)
        pool.flush_all()
        assert stats.get(DISK_PAGE_WRITES) == writes_before + 3
        assert pool.dirty_page_table() == {}


class TestLruOrder:
    def test_rereference_resets_eviction_order(self):
        """A page re-fixed (or re-touched via put_page) moves to the MRU
        end; the LRU victim is always the least-recently-*used* page,
        not the least-recently-*loaded* one."""
        pool, disk, _, stats = setup_pool(capacity=3)
        for page_id in (1, 2, 3):
            seed_page(disk, page_id)
            pool.fix(page_id)
            pool.unfix(page_id)
        # Touch 1 again: eviction order becomes 2, 3, 1.
        pool.fix(1)
        pool.unfix(1)
        seed_page(disk, 4)
        pool.fix(4)  # evicts 2
        assert not pool.contains(2)
        assert pool.contains(1) and pool.contains(3)
        seed_page(disk, 5)
        pool.fix(5)  # evicts 3
        assert not pool.contains(3)
        assert pool.contains(1)

    def test_repeated_rereference_pins_hot_page_logically(self):
        pool, disk, _, _ = setup_pool(capacity=2)
        seed_page(disk, 1)
        seed_page(disk, 2)
        pool.fix(1)
        pool.unfix(1)
        for page_id in (2, 3, 4, 5):
            if page_id > 2:
                seed_page(disk, page_id)
            pool.fix(1)      # keep 1 hot before each new page arrives
            pool.unfix(1)
            pool.fix(page_id)
            pool.unfix(page_id)
        assert pool.contains(1)  # survived four eviction rounds


class TestBatchFlush:
    def _dirty_pages(self, pool, disk, log, page_ids):
        for page_id in page_ids:
            seed_page(disk, page_id)
            pool.fix(page_id)
            log_an_update(pool, log, page_id)
            pool.unfix(page_id)

    def test_flush_pages_forces_log_once(self):
        """Tentpole acceptance: one batch flush = exactly one LOG_FORCES
        bump, however many dirty pages are in the set."""
        pool, disk, log, stats = setup_pool(capacity=8)
        self._dirty_pages(pool, disk, log, [1, 2, 3, 4])
        assert stats.get(LOG_FORCES) == 0
        written = pool.flush_pages([1, 2, 3, 4])
        assert written == 4
        assert stats.get(LOG_FORCES) == 1
        assert stats.get(LOG_FORCES_COALESCED) == 3
        assert all(not pool.is_dirty(p) for p in (1, 2, 3, 4))

    def test_per_page_path_forces_n_times(self):
        """The slow-path contrast: page-at-a-time writes pay one force
        per page when each page's updates extend the log."""
        pool, disk, log, stats = setup_pool(capacity=8)
        self._dirty_pages(pool, disk, log, [1, 2, 3, 4])
        for page_id in (1, 2, 3, 4):
            pool.write_page(page_id)
        assert stats.get(LOG_FORCES) == 4

    def test_on_before_write_fires_per_page(self):
        seen = []
        pool, disk, log, stats = setup_pool(capacity=8)
        pool.on_before_write = lambda bcb: seen.append(bcb.page.page_id)
        self._dirty_pages(pool, disk, log, [1, 2, 3])
        pool.flush_pages([1, 2, 3])
        assert seen == [1, 2, 3]

    def test_flush_all_uses_batch_lane(self):
        pool, disk, log, stats = setup_pool(capacity=8)
        self._dirty_pages(pool, disk, log, [1, 2, 3])
        written = pool.flush_all()
        assert written == 3
        assert stats.get(LOG_FORCES) == 1
        assert stats.get(BUFFER_BATCH_FLUSHES) == 1

    def test_wal_violation_raised_before_any_write(self):
        pool, disk, log, stats = setup_pool(capacity=8, enforce_wal=False)
        self._dirty_pages(pool, disk, log, [1, 2])
        writes_before = stats.get(DISK_PAGE_WRITES)
        with pytest.raises(WALViolationError):
            pool.flush_pages([1, 2])
        assert stats.get(DISK_PAGE_WRITES) == writes_before

    def test_clean_pages_write_without_force(self):
        pool, disk, log, stats = setup_pool(capacity=8)
        for page_id in (1, 2):
            seed_page(disk, page_id)
            pool.fix(page_id)
            pool.unfix(page_id)
        pool.flush_pages([1, 2])
        assert stats.get(LOG_FORCES) == 0


class TestShrinkTo:
    def test_shrinks_dirty_pool_with_one_force(self):
        pool, disk, log, stats = setup_pool(capacity=8)
        for page_id in (1, 2, 3, 4):
            seed_page(disk, page_id)
            pool.fix(page_id)
            log_an_update(pool, log, page_id)
            pool.unfix(page_id)
        evicted = pool.shrink_to(1)
        assert evicted == 3
        assert len(pool) == 1
        assert stats.get(LOG_FORCES) == 1

    def test_skips_fixed_pages(self):
        pool, disk, _, _ = setup_pool(capacity=4)
        for page_id in (1, 2, 3):
            seed_page(disk, page_id)
            pool.fix(page_id)
        pool.unfix(2)
        evicted = pool.shrink_to(0)
        assert evicted == 1
        assert pool.contains(1) and pool.contains(3)
        assert not pool.contains(2)

    def test_negative_target_rejected(self):
        pool, _, _, _ = setup_pool()
        with pytest.raises(ValueError):
            pool.shrink_to(-1)
