"""Tests for staged restart (early access during recovery, [Moha91])."""

import pytest

from repro import SDComplex
from repro.common.errors import LockWouldBlock, ProtocolError, ReproError


def fresh():
    sd = SDComplex(n_data_pages=256)
    return sd, sd.add_instance(1), sd.add_instance(2)


def committed_row(instance, payload=b"v0"):
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    slot = instance.insert(txn, page_id, payload)
    instance.commit(txn)
    return page_id, slot


def crash_with_loser(sd, s1):
    """Crash S1 with one committed row and one in-flight update on the
    same page, both stolen to disk."""
    page_id, slot = committed_row(s1, b"good")
    txn = s1.begin()
    loser_slot = s1.insert(txn, page_id, b"loser-row")
    s1.pool.write_page(page_id)
    s1.log.force()
    sd.crash_instance(1)
    return page_id, slot, loser_slot


class TestStaging:
    def test_open_after_redo_before_undo(self):
        sd, s1, s2 = fresh()
        page_id, slot, loser_slot = crash_with_loser(sd, s1)
        staged = sd.begin_staged_restart(1)
        # Before redo: the page is fenced.
        txn = s2.begin()
        with pytest.raises(ProtocolError):
            s2.read(txn, page_id, slot)
        staged.run_redo()
        assert staged.open_for_access
        # After redo: committed data readable while undo is pending.
        assert s2.read(txn, page_id, slot) == b"good"
        s2.commit(txn)
        staged.run_undo()
        assert not staged.open_for_access

    def test_loser_records_stay_locked_until_undo(self):
        sd, s1, s2 = fresh()
        page_id, slot, loser_slot = crash_with_loser(sd, s1)
        staged = sd.begin_staged_restart(1)
        staged.run_redo()
        txn = s2.begin()
        with pytest.raises(LockWouldBlock):
            s2.update(txn, page_id, loser_slot, b"steal-it")
        staged.run_undo()
        # The loser's insert is gone; its lock released.
        reader = s2.begin()
        assert s2.read(reader, page_id, slot) == b"good"
        s2.commit(reader)
        page = sd.disk.read_page(page_id)
        assert page.read_record(loser_slot) is None

    def test_new_updates_during_window_survive_undo(self):
        """Another system updates a non-loser record during the window;
        undo must not clobber it (it fetches current versions)."""
        sd, s1, s2 = fresh()
        page_id, slot, loser_slot = crash_with_loser(sd, s1)
        staged = sd.begin_staged_restart(1)
        staged.run_redo()
        txn = s2.begin()
        s2.update(txn, page_id, slot, b"window-update")
        s2.commit(txn)
        staged.run_undo()
        s1.pool.flush_all()
        page = sd.disk.read_page(page_id)
        assert page.read_record(slot) == b"window-update"
        assert page.read_record(loser_slot) is None

    def test_summary_counts_match_one_shot(self):
        sd, s1, s2 = fresh()
        crash_with_loser(sd, s1)
        staged = sd.begin_staged_restart(1)
        staged.run_redo()
        summary = staged.run_undo()
        assert summary.loser_transactions == 1
        assert summary.clrs_written >= 1


class TestMisuse:
    def test_undo_before_redo_rejected(self):
        sd, s1, s2 = fresh()
        crash_with_loser(sd, s1)
        staged = sd.begin_staged_restart(1)
        with pytest.raises(ReproError):
            staged.run_undo()

    def test_double_redo_rejected(self):
        sd, s1, s2 = fresh()
        crash_with_loser(sd, s1)
        staged = sd.begin_staged_restart(1)
        staged.run_redo()
        with pytest.raises(ReproError):
            staged.run_redo()

    def test_requires_crashed_instance(self):
        sd, s1, s2 = fresh()
        with pytest.raises(ReproError):
            sd.begin_staged_restart(1)

    def test_fast_scheme_not_staged(self):
        sd = SDComplex(n_data_pages=128, transfer_scheme="fast")
        s1 = sd.add_instance(1)
        committed_row(s1)
        sd.crash_instance(1)
        with pytest.raises(ReproError):
            sd.begin_staged_restart(1)
        sd.restart_instance(1)
