"""Tests for media recovery: image copy + merged local logs."""

import pytest

from repro import SDComplex
from repro.common.errors import MediaError
from repro.common.stats import MERGE_COMPARISONS, StatsRegistry
from repro.recovery.media import (
    recover_database_from_media,
    recover_page_from_media,
)
from repro.storage.image_copy import ImageCopy


def complex_with_history():
    """Two systems ping-pong updates to one page; plus a second page."""
    complex_ = SDComplex(n_data_pages=128)
    s1 = complex_.add_instance(1)
    s2 = complex_.add_instance(2)
    txn = s1.begin()
    page_a = s1.allocate_page(txn)
    slot_a = s1.insert(txn, page_a, b"a0")
    page_b = s1.allocate_page(txn)
    slot_b = s1.insert(txn, page_b, b"b0")
    s1.commit(txn)
    return complex_, s1, s2, page_a, slot_a, page_b, slot_b


class TestSinglePage:
    def test_recover_from_dump_plus_both_logs(self):
        complex_, s1, s2, page_a, slot_a, _, _ = complex_with_history()
        complex_.instances[1].pool.flush_all()
        dump = ImageCopy.take(complex_.disk)
        # Post-dump updates from both systems.
        for instance, value in ((s2, b"a1"), (s1, b"a2"), (s2, b"a3")):
            txn = instance.begin()
            instance.update(txn, page_a, slot_a, value)
            instance.commit(txn)
        complex_.disk.lose_page(page_a)
        with pytest.raises(MediaError):
            complex_.disk.read_page(page_a)
        page = recover_page_from_media(page_a, dump, complex_.local_logs(),
                                       disk=complex_.disk)
        assert page.read_record(slot_a) == b"a3"
        assert complex_.disk.read_page(page_a).read_record(slot_a) == b"a3"

    def test_recover_without_dump_replays_from_format(self):
        """A page born after the last dump is rebuilt from its FORMAT
        record onward."""
        complex_, s1, s2, page_a, slot_a, _, _ = complex_with_history()
        page = recover_page_from_media(page_a, image_copy=None,
                                       logs=complex_.local_logs())
        assert page.read_record(slot_a) == b"a0"

    def test_recovered_page_lsn_is_latest(self):
        complex_, s1, s2, page_a, slot_a, _, _ = complex_with_history()
        txn = s2.begin()
        s2.update(txn, page_a, slot_a, b"new")
        s2.commit(txn)
        expected_lsn = None
        for _, record in s2.log.scan():
            if record.page_id == page_a:
                expected_lsn = record.lsn
        page = recover_page_from_media(page_a, None, complex_.local_logs())
        assert page.page_lsn == expected_lsn

    def test_merge_comparisons_counted(self):
        complex_, s1, s2, page_a, slot_a, _, _ = complex_with_history()
        txn = s2.begin()
        s2.update(txn, page_a, slot_a, b"a1")  # both logs now non-empty
        s2.commit(txn)
        stats = StatsRegistry()
        recover_page_from_media(page_a, None, complex_.local_logs(),
                                stats=stats)
        assert stats.get(MERGE_COMPARISONS) > 0

    def test_uncommitted_tail_reproduced_then_not_our_problem(self):
        """Media recovery repeats history including rollbacks: a rolled
        back update must not reappear."""
        complex_, s1, s2, page_a, slot_a, _, _ = complex_with_history()
        txn = s1.begin()
        s1.update(txn, page_a, slot_a, b"oops")
        s1.rollback(txn)
        page = recover_page_from_media(page_a, None, complex_.local_logs())
        assert page.read_record(slot_a) == b"a0"


class TestWholeDatabase:
    def test_recover_many_pages_single_pass(self):
        complex_, s1, s2, page_a, slot_a, page_b, slot_b = complex_with_history()
        s1.pool.flush_all()
        dump = ImageCopy.take(complex_.disk)
        txn = s2.begin()
        s2.update(txn, page_a, slot_a, b"a-post")
        s2.update(txn, page_b, slot_b, b"b-post")
        s2.commit(txn)
        complex_.disk.lose_page(page_a)
        complex_.disk.lose_page(page_b)
        n = recover_database_from_media(dump, complex_.local_logs(),
                                        complex_.disk, [page_a, page_b])
        assert n == 2
        assert complex_.disk.read_page(page_a).read_record(slot_a) == b"a-post"
        assert complex_.disk.read_page(page_b).read_record(slot_b) == b"b-post"


class TestImageCopy:
    def test_take_and_restore(self):
        complex_, s1, *_ = complex_with_history()
        s1.pool.flush_all()
        dump = ImageCopy.take(complex_.disk)
        assert len(dump) > 0
        for page_id in dump.page_ids():
            restored = dump.restore_page(page_id)
            assert restored.page_id == page_id

    def test_subset_snapshot(self):
        complex_, s1, s2, page_a, *_ = complex_with_history()
        s1.pool.flush_all()
        dump = ImageCopy.take(complex_.disk, page_ids=[page_a])
        assert dump.has_page(page_a)
        assert len(dump) == 1

    def test_missing_page_raises(self):
        dump = ImageCopy()
        with pytest.raises(KeyError):
            dump.restore_page(5)

    def test_snapshot_isolated_from_later_writes(self):
        complex_, s1, s2, page_a, slot_a, *_ = complex_with_history()
        s1.pool.flush_all()
        dump = ImageCopy.take(complex_.disk)
        txn = s1.begin()
        s1.update(txn, page_a, slot_a, b"after-dump")
        s1.commit(txn)
        s1.pool.flush_all()
        assert dump.restore_page(page_a).read_record(slot_a) == b"a0"


class TestDumpBoundedScan:
    def test_dump_offsets_shorten_the_merge(self):
        complex_, s1, s2, page_a, slot_a, _, _ = complex_with_history()
        s1.pool.flush_all()
        dump = ImageCopy.take(complex_.disk, logs=complex_.local_logs())
        assert dump.log_offsets[1] == s1.log.end_offset
        # Post-dump updates from both systems.
        for instance, value in ((s2, b"p1"), (s1, b"p2")):
            txn = instance.begin()
            instance.update(txn, page_a, slot_a, value)
            instance.commit(txn)
        bounded = StatsRegistry()
        page = recover_page_from_media(page_a, dump, complex_.local_logs(),
                                       stats=bounded)
        assert page.read_record(slot_a) == b"p2"
        full = StatsRegistry()
        page = recover_page_from_media(page_a, dump, complex_.local_logs(),
                                       stats=full, use_dump_offsets=False)
        assert page.read_record(slot_a) == b"p2"
        assert bounded.get(MERGE_COMPARISONS) < full.get(MERGE_COMPARISONS)

    def test_page_born_after_dump_uses_full_scan(self):
        complex_, s1, s2, *_ = complex_with_history()
        s1.pool.flush_all()
        dump = ImageCopy.take(complex_.disk, logs=complex_.local_logs())
        txn = s1.begin()
        newborn = s1.allocate_page(txn)
        slot = s1.insert(txn, newborn, b"young")
        s1.commit(txn)
        page = recover_page_from_media(newborn, dump, complex_.local_logs())
        assert page.read_record(slot) == b"young"
