"""Tests for checkpoint-driven log archiving / active-log truncation."""

import pytest

from repro import SDComplex
from repro.recovery.checkpoint import archive_log, log_truncation_point
from repro.recovery.media import recover_page_from_media


def fresh():
    sd = SDComplex(n_data_pages=256)
    return sd, sd.add_instance(1)


def committed_row(instance, payload=b"v0"):
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    slot = instance.insert(txn, page_id, payload)
    instance.commit(txn)
    return page_id, slot


class TestTruncationPoint:
    def test_clean_instance_truncates_to_checkpoint(self):
        sd, s1 = fresh()
        page_id, slot = committed_row(s1)
        s1.pool.flush_all()
        archived = archive_log(s1)
        assert archived > 0
        assert s1.log.archived_offset == s1.log.master_record_offset

    def test_dirty_page_holds_the_point_back(self):
        sd, s1 = fresh()
        page_id, slot = committed_row(s1)   # page still dirty
        rec_addr = s1.pool.bcb(page_id).rec_addr
        assert log_truncation_point(s1) <= rec_addr
        archive_log(s1)
        assert s1.log.archived_offset <= rec_addr

    def test_active_txn_holds_the_point_back(self):
        sd, s1 = fresh()
        page_id, slot = committed_row(s1)
        s1.pool.flush_all()
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"open")
        first_offset = txn.undo_entries[0].offset
        s1.pool.flush_all()
        assert log_truncation_point(s1) <= first_offset
        s1.commit(txn)

    def test_cannot_archive_unforced_log(self):
        sd, s1 = fresh()
        committed_row(s1)
        with pytest.raises(ValueError):
            s1.log.archive_up_to(s1.log.end_offset + 100)


class TestRecoveryAfterArchiving:
    def test_restart_never_reads_the_archive(self):
        sd, s1 = fresh()
        page_id, slot = committed_row(s1, b"old")
        s1.pool.flush_all()
        archive_log(s1)
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"new")
        s1.commit(txn)
        scans_before = sd.stats.get("log.archive_scans")
        sd.crash_instance(1)
        sd.restart_instance(1)
        assert sd.stats.get("log.archive_scans") == scans_before
        assert sd.disk.read_page(page_id).read_record(slot) == b"new"

    def test_media_recovery_reads_the_archive_when_needed(self):
        sd, s1 = fresh()
        page_id, slot = committed_row(s1, b"from-archive")
        s1.pool.flush_all()
        archive_log(s1)
        sd.disk.lose_page(page_id)
        scans_before = sd.stats.get("log.archive_scans")
        page = recover_page_from_media(page_id, None, [s1.log],
                                       disk=sd.disk)
        assert page.read_record(slot) == b"from-archive"
        assert sd.stats.get("log.archive_scans") > scans_before

    def test_active_log_shrinks(self):
        sd, s1 = fresh()
        for _ in range(5):
            committed_row(s1)
        s1.pool.flush_all()
        before = s1.log.active_bytes
        archived = archive_log(s1)
        assert s1.log.active_bytes < before
        assert s1.log.active_bytes + s1.log.archived_offset \
            == s1.log.end_offset
        assert archived == s1.log.archived_offset

    def test_repeated_archiving_is_monotone(self):
        sd, s1 = fresh()
        offsets = []
        for _ in range(3):
            committed_row(s1)
            s1.pool.flush_all()
            archive_log(s1)
            offsets.append(s1.log.archived_offset)
        assert offsets == sorted(offsets)
        assert offsets[-1] > offsets[0]
