"""Unit tests for CS server internals: batches, txn table, checkpoints."""

import pytest

from repro import CsSystem
from repro.common.errors import ReproError
from repro.cs.server import SERVER_ID, _COMMITTED
from repro.wal.records import CheckpointData, RecordKind


def committed_row(client, payload=b"v0"):
    txn = client.begin()
    page_id = client.allocate_page(txn)
    slot = client.insert(txn, page_id, payload)
    client.commit(txn)
    return page_id, slot


class TestBatchBookkeeping:
    def test_each_ship_becomes_a_batch(self, cs):
        c1 = cs.clients[1]
        committed_row(c1)
        committed_row(c1)
        batches = cs.server._batches[1]
        assert len(batches) == 2
        # Batches are contiguous, ordered spans of the client's LSNs.
        assert batches[0].last_lsn < batches[1].first_lsn
        offsets = [b.offset for b in batches]
        assert offsets == sorted(offsets)

    def test_empty_ship_creates_no_batch(self, cs):
        c1 = cs.clients[1]
        assert cs.server.receive_log_records(c1) is None
        assert 1 not in cs.server._batches

    def test_map_rec_lsn_returns_batch_start(self, cs):
        c1 = cs.clients[1]
        committed_row(c1)
        batch = cs.server._batches[1][0]
        assert cs.server.map_rec_lsn(1, batch.first_lsn) == batch.offset
        assert cs.server.map_rec_lsn(1, batch.last_lsn) == batch.offset


class TestTxnTable:
    def test_commit_marks_committed(self, cs):
        c1 = cs.clients[1]
        txn = c1.begin()
        page_id = c1.allocate_page(txn)
        c1.insert(txn, page_id, b"x")
        c1.send_page_back(page_id)           # ships without COMMIT
        assert cs.server._txn_table[txn.txn_id][1] != _COMMITTED
        c1.commit(txn)
        # END ships with the commit: the entry is retired entirely.
        assert txn.txn_id not in cs.server._txn_table

    def test_server_checkpoint_contains_inflight_only(self, cs):
        c1 = cs.clients[1]
        committed_row(c1)
        txn = c1.begin()
        page_id = c1.allocate_page(txn)
        c1.insert(txn, page_id, b"open")
        c1.send_page_back(page_id)
        cs.server.take_checkpoint()
        end_record = [r for _, r in cs.server.log.scan()
                      if r.kind == RecordKind.END_CHECKPOINT][-1]
        data = CheckpointData.from_bytes(end_record.extra)
        assert txn.txn_id in data.transactions
        c1.commit(txn)

    def test_server_checkpoint_sets_master_record(self, cs):
        committed_row(cs.clients[1])
        offset = cs.server.take_checkpoint()
        assert cs.server.log.master_record_offset == offset


class TestGuards:
    def test_duplicate_client_id_rejected(self, cs):
        from repro.cs.client import CsClient
        with pytest.raises(ReproError):
            CsClient(1, cs.server)

    def test_server_id_reserved(self, cs):
        from repro.cs.client import CsClient
        with pytest.raises(ValueError):
            CsClient(SERVER_ID, cs.server)

    def test_recover_live_client_rejected(self, cs):
        with pytest.raises(ReproError):
            cs.server.recover_client(1)

    def test_operations_rejected_when_server_down(self, cs):
        c1 = cs.clients[1]
        committed_row(c1)
        cs.crash_server()
        with pytest.raises(ReproError):
            cs.server.take_checkpoint()
        with pytest.raises(ReproError):
            cs.server.recover_client(1)
        cs.restart_server()
        committed_row(c1)   # back in business

    def test_restart_requires_crash(self, cs):
        with pytest.raises(ReproError):
            cs.server.restart()


class TestServerWal:
    def test_server_forces_log_before_writing_client_pages(self, cs):
        c1 = cs.clients[1]
        page_id, slot = committed_row(c1)
        txn = c1.begin()
        c1.update(txn, page_id, slot, b"dirty")
        c1.send_page_back(page_id)
        # The shipped records sit in the server log (possibly unforced
        # past the last explicit force); evicting the dirty page must
        # force first — write_page does it via the BCB high-water mark.
        bcb = cs.server.pool.bcb(page_id)
        assert bcb.dirty
        cs.server.pool.write_page(page_id)
        assert cs.server.log.flushed_offset >= bcb.last_update_end
        c1.rollback(txn)
