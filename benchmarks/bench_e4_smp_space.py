"""E4 — space map overhead: DB2's 1 bit vs Lomet's full LSN per page.

Paper claim (Section 4.2): "In DB2, only one bit is used to track the
allocated/deallocated status of index pages.  Lomet's scheme would
increase that overhead 47-63 times, depending on whether the LSN is a
6 byte or 8 byte quantity!"

The bench reports, for databases of 10^4..10^6 pages, the number of
space map pages each layout needs and the per-entry bit overhead, and
checks the 47-63x claim exactly.
"""

from repro.harness import Table, format_factor, print_banner
from repro.storage.page import Page, PageType
from repro.storage.space_map import (
    LometSpaceMap,
    SpaceMap,
    lomet_entries_per_page,
    smp_entries_per_page,
)


def smp_pages_needed(n_data_pages, entries_per_page):
    return -(-n_data_pages // entries_per_page)


def run_experiment():
    rows = []
    for n_pages in (10_000, 100_000, 1_000_000):
        bitmap = smp_pages_needed(n_pages, smp_entries_per_page())
        lomet6 = smp_pages_needed(n_pages, lomet_entries_per_page(6))
        lomet8 = smp_pages_needed(n_pages, lomet_entries_per_page(8))
        rows.append((n_pages, bitmap, lomet6, lomet8,
                     format_factor(lomet6, bitmap),
                     format_factor(lomet8, bitmap)))
    return rows


def test_e4_smp_space_overhead(benchmark):
    rows = run_experiment()
    print_banner("E4", "space map overhead (47-63x claim)")
    table = Table(["data pages", "bitmap SMPs", "Lomet SMPs (6B)",
                   "Lomet SMPs (8B)", "factor 6B", "factor 8B"])
    for row in rows:
        table.add_row(*row)
    table.show()

    per_entry = Table(["layout", "bits/entry", "entries/SMP page",
                       "overhead vs 1 bit"])
    six = LometSpaceMap(smp_start=1, data_start=10, n_data_pages=10,
                        lsn_bytes=6)
    eight = LometSpaceMap(smp_start=1, data_start=10, n_data_pages=10,
                          lsn_bytes=8)
    per_entry.add_row("DB2 bitmap", 1, smp_entries_per_page(), "1.0x")
    per_entry.add_row("Lomet 6-byte LSN", 48, lomet_entries_per_page(6),
                      f"{six.overhead_factor():.0f}x")
    per_entry.add_row("Lomet 8-byte LSN", 64, lomet_entries_per_page(8),
                      f"{eight.overhead_factor():.0f}x")
    per_entry.show()

    # The paper counts the *increase*: 47x resp. 63x on top of the bit.
    assert six.overhead_factor() - 1 == 47
    assert eight.overhead_factor() - 1 == 63
    # Page-count blowup lands in the same band at scale.
    big = rows[-1]
    assert 40 <= big[2] / big[1] <= 48
    assert 56 <= big[3] / big[1] <= 64

    # Micro-benchmark: flipping one allocation bit (the hot operation).
    page = Page()
    page.format(1, PageType.SPACE_MAP)

    def flip():
        SpaceMap.write_allocated(page, 12345, True)
        SpaceMap.write_allocated(page, 12345, False)

    benchmark(flip)
