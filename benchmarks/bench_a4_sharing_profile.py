"""A4 (ablation) — data-sharing cost profile vs contention.

The paper's introduction frames the SD-vs-SN debate (Sections 1.1-1.2):
data sharing lets any system touch any data at the price of coherency
traffic on *shared* data.  This ablation runs a teller-style workload
at 1/2/4 systems under two access patterns — partitioned (each system
works its own accounts) and fully shared (everyone hammers the same
hot accounts) — and reports the coherency costs per committed
transaction.  Shape expected: partitioned workloads add systems almost
for free; shared-hot workloads pay page transfers and lock waits that
grow with the system count.
"""

from repro.common.stats import LOCK_WAITS, message_kind_counter
from repro.harness import Table, print_banner
from repro.workload.generator import (
    WorkloadConfig,
    build_scripts,
    populate_pages,
    run_interleaved_sd,
)

from _common import build_sd

TXNS_PER_SYSTEM = 12


def run(n_systems: int, shared: bool):
    sd, instances = build_sd(n_systems, n_data_pages=1024)
    handles = populate_pages(instances[0], n_pages=4 * n_systems,
                             records_per_page=4)
    if shared:
        cfg = WorkloadConfig(
            n_transactions=TXNS_PER_SYSTEM * n_systems, ops_per_txn=4,
            read_fraction=0.2, hot_fraction=1.0, n_hot_pages=2, seed=13,
        )
        scripts = build_scripts(cfg, n_systems, handles)
    else:
        # Partitioned: each system gets a disjoint slice of accounts.
        cfg = WorkloadConfig(
            n_transactions=TXNS_PER_SYSTEM, ops_per_txn=4,
            read_fraction=0.2, hot_fraction=0.0, seed=13,
        )
        per_system = len(handles) // n_systems
        scripts = []
        for i in range(n_systems):
            mine = handles[i * per_system:(i + 1) * per_system]
            for script in build_scripts(cfg, 1, mine):
                script.system_index = i
                scripts.append(script)
    result = run_interleaved_sd(instances, scripts)
    committed = max(result.committed, 1)
    return {
        "committed": result.committed,
        "transfers/txn": (
            sd.stats.get(message_kind_counter("page_transfer")) / committed
        ),
        "invalidations/txn": (
            sd.stats.get(message_kind_counter("invalidate")) / committed
        ),
        "lock waits/txn": sd.stats.get(LOCK_WAITS) / committed,
        "deadlock aborts": result.aborted_deadlock,
    }


def run_experiment():
    out = {}
    for n_systems in (1, 2, 4):
        out[(n_systems, "partitioned")] = run(n_systems, shared=False)
        out[(n_systems, "shared-hot")] = run(n_systems, shared=True)
    return out


def test_a4_sharing_profile(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_banner("A4", "data-sharing cost profile vs contention")
    table = Table(["systems", "pattern", "committed", "transfers/txn",
                   "invalidations/txn", "lock waits/txn", "deadlocks"])
    for (n_systems, pattern), row in sorted(results.items(),
                                            key=lambda kv: (kv[0][1], kv[0][0])):
        table.add_row(n_systems, pattern, row["committed"],
                      row["transfers/txn"], row["invalidations/txn"],
                      row["lock waits/txn"], row["deadlock aborts"])
    table.show()
    # Partitioned work stays (nearly) coherency-free at any width:
    # the only transfers are each system's first fetch of its slice,
    # no invalidations, and lock waits (intra-system concurrency) do
    # not grow with the system count.
    for n_systems in (1, 2, 4):
        part = results[(n_systems, "partitioned")]
        assert part["transfers/txn"] < 0.5
        assert part["invalidations/txn"] == 0
    assert results[(4, "partitioned")]["lock waits/txn"] <= \
        results[(1, "partitioned")]["lock waits/txn"] + 0.5
    # Shared-hot pays: transfers grow once more than one system plays.
    assert results[(4, "shared-hot")]["transfers/txn"] > \
        results[(1, "shared-hot")]["transfers/txn"]
    assert results[(1, "shared-hot")]["transfers/txn"] == 0