"""F1 — Figure 1 as an executable artifact.

The paper's only figure is the shared-disks architecture diagram: N
systems, each with a private buffer pool and local log, over shared
disks, coordinated by global locking and page transfer.  This bench
builds that topology, pushes a mixed workload through it, and prints
the structure plus the message/IO flows the diagram implies — then
proves the configuration recovers from a full-complex failure.
"""

from repro.harness import Table, print_banner
from repro.workload.generator import (
    WorkloadConfig,
    build_scripts,
    populate_pages,
    run_interleaved_sd,
)

from _common import build_sd

N_SYSTEMS = 3


def run_experiment():
    sd, instances = build_sd(N_SYSTEMS, n_data_pages=512)
    handles = populate_pages(instances[0], 8, 4)
    cfg = WorkloadConfig(n_transactions=24, ops_per_txn=4,
                         read_fraction=0.4, hot_fraction=0.6,
                         n_hot_pages=3, seed=31)
    scripts = build_scripts(cfg, N_SYSTEMS, handles)
    result = run_interleaved_sd(instances, scripts)
    # Snapshot the running topology (buffer frames empty post-restart).
    topology = [
        (f"S{inst.system_id}", len(inst.pool), inst.log.end_offset,
         inst.log.record_count(), f"{inst.clock.now():.0f}")
        for inst in instances
    ]
    sd.crash_complex()
    sd.restart_complex()
    for page_id, slot in handles:
        assert sd.disk.read_page(page_id).read_record(slot) is not None
    # The periodic Section 3.5 exchange, after restart re-seeded each
    # Local_Max_LSN from its own log.
    sd.broadcast_max_lsns()
    return sd, instances, result, topology


def test_f1_architecture(benchmark):
    sd, instances, result, topology = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    print_banner("F1", "the shared disks architecture, executed")
    topo = Table(["system", "buffer frames", "local log bytes",
                  "local log records", "Local_Max_LSN", "clock skew"])
    for (name, frames, log_bytes, records, clock), instance in zip(
            topology, instances):
        topo.add_row(name, frames, log_bytes, records,
                     instance.log.local_max_lsn, clock)
    topo.show()
    print()
    flows = Table(["flow", "count"])
    snapshot = sd.stats.snapshot()
    for name in sorted(snapshot):
        if name.startswith("net.messages.") or name.startswith("disk."):
            flows.add_row(name, snapshot[name])
    flows.add_row("transactions committed", result.committed)
    flows.add_row("deadlock aborts", result.aborted_deadlock)
    flows.show()
    assert result.committed >= 20
    # Every system kept its own log (private logs, the figure's point).
    assert len({inst.log.system_id for inst in instances}) == N_SYSTEMS
    maxima = [inst.log.local_max_lsn for inst in instances]
    assert max(maxima) - min(maxima) <= 2, \
        "after a broadcast, Local_Max_LSNs are close together"
