"""E6 — mass delete of a segmented table (Section 4.2).

Paper claim: DB2 "just visits the space map pages and marks all the
corresponding pages as being empty.  None of the deallocated pages is
read from disk.  Log records are written only for the space map page
changes.  With the Lomet algorithm, this efficient implementation would
not be possible since it needs to record the current LSNs of those
emptied pages in the space map pages!  It would require the expensive
reads of all the pages."

The bench mass-deletes tables of 128..2048 pages under both schemes and
counts data-page reads and log records.
"""

from repro.baselines.lomet import LometComplex
from repro.common.stats import DISK_PAGE_READS, LOG_RECORDS_WRITTEN
from repro.harness import Table, format_factor, print_banner
from repro.storage.page import PageType

from _common import build_sd


def run_usn(n_pages):
    sd, (s1,) = build_sd(1, n_data_pages=n_pages + 64)
    txn = s1.begin()
    pages = [s1.allocate_page(txn) for _ in range(n_pages)]
    s1.commit(txn)
    s1.pool.flush_all()
    # Make sure none of the table's pages is cached: the honest case.
    for page_id in pages:
        if s1.pool.contains(page_id):
            s1.pool.drop_page(page_id)
    reads_before = sd.stats.get(DISK_PAGE_READS)
    records_before = sd.stats.get(LOG_RECORDS_WRITTEN)
    txn = s1.begin()
    s1.mass_delete(txn, pages)
    s1.commit(txn)
    reads = sd.stats.get(DISK_PAGE_READS) - reads_before
    # Subtract the commit/end control records.
    records = sd.stats.get(LOG_RECORDS_WRITTEN) - records_before - 2
    return reads, records


def run_lomet(n_pages):
    complex_ = LometComplex(n_data_pages=n_pages + 64)
    s1 = complex_.add_system(1, buffer_capacity=32)
    pages = [s1.allocate_page() for _ in range(n_pages)]
    s1.flush()
    for page_id in pages:
        if s1.pool.contains(page_id):
            s1.pool.drop_page(page_id)
    reads_before = complex_.stats.get(DISK_PAGE_READS)
    records_before = complex_.stats.get(LOG_RECORDS_WRITTEN)
    s1.mass_delete(pages)
    reads = complex_.stats.get(DISK_PAGE_READS) - reads_before
    records = complex_.stats.get(LOG_RECORDS_WRITTEN) - records_before
    return reads, records


def run_experiment():
    rows = []
    for n_pages in (128, 512, 2048):
        usn_reads, usn_records = run_usn(n_pages)
        lomet_reads, lomet_records = run_lomet(n_pages)
        rows.append((n_pages, usn_reads, usn_records,
                     lomet_reads, lomet_records,
                     format_factor(lomet_reads + lomet_records,
                                   usn_reads + usn_records)))
    return rows


def test_e6_mass_delete(benchmark):
    rows = run_experiment()
    print_banner("E6", "mass delete of a segmented table")
    table = Table(["table pages", "USN page reads", "USN log records",
                   "Lomet page reads", "Lomet log records",
                   "total cost factor"])
    for row in rows:
        table.add_row(*row)
    table.show()
    for n_pages, usn_reads, usn_records, lomet_reads, lomet_records, _ in rows:
        assert usn_reads == 0, "USN mass delete must not read data pages"
        # One range record per SMP page touched.
        assert usn_records <= -(-n_pages // 1000) + 2
        # Every data page read, plus possible SMP re-reads under
        # buffer churn.
        assert n_pages <= lomet_reads <= n_pages + 16, \
            "Lomet must read every page"
        assert lomet_records == n_pages

    # Wall-clock: the USN mass delete at the largest size.
    sd, (s1,) = build_sd(1, n_data_pages=2048 + 64)
    txn = s1.begin()
    pages = [s1.allocate_page(txn) for _ in range(2048)]
    s1.commit(txn)
    s1.pool.flush_all()

    def mass_delete_and_undo():
        t = s1.begin()
        s1.mass_delete(t, pages)
        s1.rollback(t)   # restore so the benchmark can iterate

    benchmark(mass_delete_and_undo)
