"""A5 (ablation) — data availability during restart recovery [Moha91].

The paper cites [Moha91]: the Commit_LSN machinery can "allow access to
data to new transactions even while recovery from a system failure is
in progress."  Our staged restart opens the system between the redo and
undo passes; this ablation measures how much of the database other
systems can reach during the undo window, versus the all-or-nothing
fence of a one-shot restart.
"""

from repro import SDComplex
from repro.common.errors import LockWouldBlock, ProtocolError
from repro.harness import Table, print_banner

N_PAGES = 12
LOSER_PAGES = 3


def build():
    sd = SDComplex(n_data_pages=256)
    s1 = sd.add_instance(1)
    s2 = sd.add_instance(2)
    handles = []
    txn = s1.begin()
    for _ in range(N_PAGES):
        page_id = s1.allocate_page(txn)
        slot = s1.insert(txn, page_id, b"data")
        handles.append((page_id, slot))
    s1.commit(txn)
    # A loser transaction touches a few pages and is stolen to disk.
    loser = s1.begin()
    for page_id, slot in handles[:LOSER_PAGES]:
        s1.update(loser, page_id, slot, b"uncommitted")
        s1.pool.write_page(page_id)
    s1.log.force()
    sd.crash_instance(1)
    return sd, s2, handles


def accessible(s2, handles):
    """How many records a new transaction on S2 can read right now."""
    count = 0
    for page_id, slot in handles:
        txn = s2.begin()
        try:
            s2.read(txn, page_id, slot)
            count += 1
            s2.commit(txn)
        except (ProtocolError, LockWouldBlock):
            s2.rollback(txn)
    return count


def run_experiment():
    # One-shot restart: everything fenced until recovery completes.
    sd, s2, handles = build()
    before_one_shot = accessible(s2, handles)
    sd.restart_instance(1)
    after_one_shot = accessible(s2, handles)

    # Staged restart: open after redo, losers' records still locked.
    sd, s2, handles = build()
    staged = sd.begin_staged_restart(1)
    staged.run_redo()
    during_window = accessible(s2, handles)
    staged.run_undo()
    after_staged = accessible(s2, handles)
    return (before_one_shot, after_one_shot, during_window, after_staged)


def test_a5_staged_availability(benchmark):
    before, after_one_shot, during, after_staged = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    print_banner("A5", "availability during restart "
                       f"({N_PAGES} pages, {LOSER_PAGES} held by losers)")
    table = Table(["restart mode", "phase", "records readable",
                   "of total"])
    table.add_row("one-shot", "during recovery", before,
                  f"{before}/{N_PAGES}")
    table.add_row("one-shot", "after recovery", after_one_shot,
                  f"{after_one_shot}/{N_PAGES}")
    table.add_row("staged", "undo window (open)", during,
                  f"{during}/{N_PAGES}")
    table.add_row("staged", "after recovery", after_staged,
                  f"{after_staged}/{N_PAGES}")
    table.show()
    assert before == 0, "the fence blocks everything pre-recovery"
    assert during == N_PAGES - LOSER_PAGES, \
        "staged restart exposes all non-loser data during undo"
    assert after_one_shot == after_staged == N_PAGES
