"""Bench collection guard: skip (never error) without pytest-benchmark.

The ``benchmark`` fixture comes from the optional pytest-benchmark
plugin.  When the plugin is absent — or disabled with
``-p no:benchmark`` — collecting these modules must degrade to clean
skips so ``python -m repro.bench`` and ad-hoc ``pytest benchmarks/``
runs never hard-fail on a missing optional dependency.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Bench modules import sibling helpers (`from _common import ...`);
# make that work regardless of the invocation directory.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_collection_modifyitems(config, items):
    if config.pluginmanager.hasplugin("benchmark"):
        return
    skip = pytest.mark.skip(
        reason="pytest-benchmark not installed (or disabled); "
        "timing fixtures unavailable"
    )
    for item in items:
        if "benchmark" in getattr(item, "fixturenames", ()):
            item.add_marker(skip)
