"""E9 — media recovery via image copy + merged local logs (Section 3.2.2).

Paper claims: a page lost to a media error is rebuilt from "a copy of
the page from the last image copy" plus redo of "this page's log
records from the logs of the different systems", merged by comparing
the LSN fields only.  Equal LSNs from different logs may be emitted in
either order because they must belong to different pages.

The bench builds multi-system history over many pages, snapshots an
image copy mid-way, continues updating, loses a batch of pages, and
rebuilds them; it verifies content and reports the merge work.
"""

from repro.common.stats import MERGE_COMPARISONS, StatsRegistry
from repro.harness import Table, print_banner
from repro.recovery.media import (
    recover_database_from_media,
    recover_page_from_media,
)
from repro.storage.image_copy import ImageCopy

from _common import build_sd


def build_history(n_pages=12, rounds=40):
    sd, instances = build_sd(3, n_data_pages=256)
    s1 = instances[0]
    txn = s1.begin()
    handles = []
    for _ in range(n_pages):
        page_id = s1.allocate_page(txn)
        slot = s1.insert(txn, page_id, b"epoch0")
        handles.append((page_id, slot))
    s1.commit(txn)
    for instance in instances:
        instance.pool.flush_all()
    dump = ImageCopy.take(sd.disk)
    expected = {}
    for i in range(rounds):
        instance = instances[i % 3]
        page_id, slot = handles[i % n_pages]
        value = b"round%03d" % i
        txn = instance.begin()
        instance.update(txn, page_id, slot, value)
        instance.commit(txn)
        expected[(page_id, slot)] = value
    for handle in handles:
        expected.setdefault(handle, b"epoch0")
    return sd, dump, handles, expected


def run_experiment():
    sd, dump, handles, expected = build_history()
    lost = [page_id for page_id, _ in handles[:6]]
    for page_id in lost:
        sd.disk.lose_page(page_id)
    stats = StatsRegistry()
    rebuilt = recover_database_from_media(dump, sd.local_logs(), sd.disk,
                                          lost, stats=stats)
    for page_id, slot in handles[:6]:
        value = sd.disk.read_page(page_id).read_record(slot)
        assert value == expected[(page_id, slot)], (page_id, value)
    total_records = sum(log.record_count() for log in sd.local_logs())
    return rebuilt, stats.get(MERGE_COMPARISONS), total_records


def test_e9_media_recovery(benchmark):
    rebuilt, comparisons, total_records = run_experiment()
    print_banner("E9", "media recovery from image copy + merged logs")
    table = Table(["pages rebuilt", "log records merged",
                   "LSN comparisons", "comparisons/record"])
    table.add_row(rebuilt, total_records, comparisons,
                  comparisons / max(total_records, 1))
    table.show()
    assert rebuilt == 6
    # LSN-only merge: O(log k) comparisons per record, k=3 logs.
    assert comparisons <= total_records * 4

    # Wall-clock: single-page rebuild.
    sd, dump, handles, expected = build_history()
    page_id, slot = handles[0]

    def rebuild():
        page = recover_page_from_media(page_id, dump, sd.local_logs())
        assert page.read_record(slot) == expected[(page_id, slot)]

    benchmark(rebuild)
