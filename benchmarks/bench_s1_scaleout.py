"""S1 — scale-out: partitioned GLM + parallel partitioned restart redo.

The scale-out thesis (ROADMAP north star; Sauer/Härder and Lomet et
al. in PAPERS.md): restart time is won by partitioning redo by page,
and the same partitioning shards the global lock manager.  This bench
drives the low-sharing scale-out workload across N-instance complexes,
crashes the whole complex, and recovers with K GLM shards and P-way
partitioned redo.

Because the simulator measures *deterministic cost*, the scaling
claims are critical-path models over exact counters, not wall-clock:

* **GLM scaling** = total lock requests / max per-shard requests — the
  throughput factor K independent shard servers would sustain, given
  the observed routing balance (1.0 by definition at K=1).
* **Restart speedup** = total redo records / sum over instances of
  their largest partition — serial cost over the parallel critical
  path (1.0 by definition at P=1).

Wall-clock restart time is reported for reference; on a single-core CI
runner it carries thread overhead, so the claims gate on the models.
"""

from repro.cluster import ClusterConfig, build_cluster
from repro.common.clock import wall_seconds
from repro.common.stats import LOCK_REQUESTS, glm_shard_counter
from repro.harness import Table, print_banner
from repro.harness.experiment import ExperimentResult
from repro.obs import events as ev
from repro.obs.tracer import Tracer
from repro.workload.scaleout import LOW_SHARING, run_scaleout

from _common import bench_main


def run_config(n_instances, shards, parallelism):
    """One sweep point; returns the row dict for the tables."""
    tracer = Tracer()
    sd = build_cluster(
        ClusterConfig(n_instances=n_instances, lock_shards=shards,
                      redo_parallelism=parallelism, n_data_pages=256),
        tracer=tracer,
    )
    workload = run_scaleout(sd, LOW_SHARING)
    total_requests = sd.stats.get(LOCK_REQUESTS)
    if shards > 1:
        per_shard = [
            sd.stats.get(glm_shard_counter(index)) for index in range(shards)
        ]
    else:
        per_shard = [total_requests]
    glm_scaling = total_requests / max(max(per_shard), 1)

    sd.crash_complex()
    started = wall_seconds()
    summaries = sd.restart_complex()
    restart_wall = wall_seconds() - started
    redo_records = sum(s.records_redone + s.redo_skipped_by_lsn
                       for s in summaries.values())
    if parallelism > 1:
        per_instance_max = {}
        for event in tracer.events():
            if event.kind != ev.CLUSTER_REDO_PART:
                continue
            per_instance_max[event.system] = max(
                per_instance_max.get(event.system, 0),
                event.fields["records"])
        critical_path = sum(per_instance_max.values())
        restart_speedup = redo_records / max(critical_path, 1)
    else:
        critical_path = redo_records
        restart_speedup = 1.0
    return {
        "stats": sd.stats,
        "committed": workload.committed,
        "lock_requests": total_requests,
        "per_shard": per_shard,
        "glm_scaling": glm_scaling,
        "redo_records": redo_records,
        "critical_path": critical_path,
        "restart_speedup": restart_speedup,
        "restart_wall": restart_wall,
    }


def run_experiment():
    sweep = {}
    for n_instances, shards, parallelism in (
            (1, 1, 1), (2, 2, 2), (4, 1, 1), (4, 4, 4)):
        sweep[(n_instances, shards, parallelism)] = run_config(
            n_instances, shards, parallelism)
    return sweep


def build_result():
    sweep = run_experiment()
    result = ExperimentResult(
        "S1",
        "a 4-shard GLM and 4-way partitioned redo both scale > 1.5x "
        "over the monolithic/serial baseline on the low-sharing "
        "scale-out workload",
    )
    table = Table(["instances", "GLM shards", "redo workers", "committed",
                   "lock requests", "GLM scaling", "redo records",
                   "critical path", "restart speedup", "restart wall s"])
    for key in sorted(sweep):
        n_instances, shards, parallelism = key
        row = sweep[key]
        table.add_row(n_instances, shards, parallelism, row["committed"],
                      row["lock_requests"], row["glm_scaling"],
                      row["redo_records"], row["critical_path"],
                      row["restart_speedup"], row["restart_wall"])
    result.add_table("scale-out sweep (low-sharing profile)", table)

    shard_table = Table(["shard", "requests"])
    scaled = sweep[(4, 4, 4)]
    for index, requests in enumerate(scaled["per_shard"]):
        shard_table.add_row(index, requests)
    result.add_table("per-shard GLM routing at K=4", shard_table)

    baseline = sweep[(4, 1, 1)]
    result.record("glm_scaling_1_shard", round(baseline["glm_scaling"], 3))
    result.record("glm_scaling_4_shards", round(scaled["glm_scaling"], 3))
    result.record("restart_speedup_serial", baseline["restart_speedup"])
    result.record("restart_speedup_4_workers",
                  round(scaled["restart_speedup"], 3))
    result.record("restart_wall_4_workers_s",
                  round(scaled["restart_wall"], 4))
    result.attach_stats(scaled["stats"])
    return result.conclude(
        scaled["glm_scaling"] > 1.5
        and baseline["glm_scaling"] == 1.0
        and scaled["restart_speedup"] > 1.5
        and scaled["redo_records"] == baseline["redo_records"]
    )


def main(argv=None):
    return bench_main(build_result, argv)


if __name__ == "__main__":
    raise SystemExit(main())


def test_s1_scaleout(benchmark):
    result = benchmark.pedantic(build_result, rounds=1, iterations=1)
    print_banner("S1", "scale-out GLM shards + parallel partitioned redo")
    print(result.render())
    assert result.holds
