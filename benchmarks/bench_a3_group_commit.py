"""A3 (ablation) — group commit: log forces vs batch size.

Not from the paper directly, but the paper's footnote 2 argues a
shared global log bottlenecks on per-force synchronization; private
local logs make the force a purely local cost, and group commit then
amortizes even that.  This ablation measures forces per transaction as
the lazy-commit batch size grows, with durability semantics tested in
tests/test_group_commit.py.
"""

from repro.common.stats import LOG_FORCES
from repro.harness import Table, print_banner

from _common import build_sd, committed_row


def run(batch_size: int, n_txns: int = 60):
    sd, (s1,) = build_sd(1, n_data_pages=512)
    rows = [committed_row(s1, b"seed") for _ in range(n_txns)]
    forces_before = sd.stats.get(LOG_FORCES)
    pending = 0
    for i, (page_id, slot) in enumerate(rows):
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"v%03d" % i)
        s1.commit(txn, lazy=batch_size > 1)
        pending += 1
        if pending >= batch_size:
            s1.sync_commits()
            pending = 0
    s1.sync_commits()
    return sd.stats.get(LOG_FORCES) - forces_before


def run_experiment():
    return {batch: run(batch) for batch in (1, 4, 16, 60)}


def test_a3_group_commit(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_banner("A3", "group commit: forces per 60 transactions")
    table = Table(["batch size", "log forces", "forces/txn"])
    for batch, forces in sorted(results.items()):
        table.add_row(batch, forces, forces / 60)
    table.show()
    assert results[1] == 60
    assert results[4] <= 16
    assert results[60] <= 2
