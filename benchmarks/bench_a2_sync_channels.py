"""A2 (ablation) — which channel keeps Local_Max_LSNs close together?

Section 3.5 says the Local_Max_LSN exchange "can be piggybacked onto
the other messages being exchanged between the systems" — but which
messages carry how much freight?  This ablation runs the same skewed
workload under four synchronization configurations and reports the
Commit_LSN hit rate and the residual LSN gap between systems:

* none            — no exchange at all (the paper's failure mode)
* locks only      — lock value blocks (causality through conflicts)
* piggyback only  — maxima on coherency/page-transfer messages
* broadcast       — the explicit periodic exchange on top of piggyback
"""

from repro import SDComplex
from repro.common.stats import COMMIT_LSN_HITS, COMMIT_LSN_MISSES
from repro.harness import Table, print_banner

ROUNDS = 25
SKEW = 20


def run(piggyback: bool, value_blocks: bool, broadcast: bool):
    sd = SDComplex(n_data_pages=256, piggyback_enabled=piggyback,
                   lock_value_blocks=value_blocks)
    busy = sd.add_instance(1)
    quiet = sd.add_instance(2)
    txn = busy.begin()
    hot_page = busy.allocate_page(txn)
    hot_slot = busy.insert(txn, hot_page, b"hot")
    busy.commit(txn)
    # Warm-up: the busy system's LSNs race ahead, then it creates the
    # *cold* data the quiet system will read — a page whose page_LSN is
    # far above anything the quiet system has issued.
    for i in range(30):
        t = busy.begin()
        busy.update(t, hot_page, hot_slot, b"warm%03d" % i)
        busy.commit(t)
    txn = busy.begin()
    cold_page = busy.allocate_page(txn)
    cold_slot = busy.insert(txn, cold_page, b"cold-data")
    busy.commit(txn)
    for round_ in range(ROUNDS):
        for _ in range(SKEW):
            t = busy.begin()
            busy.update(t, hot_page, hot_slot, b"w%04d" % round_)
            busy.commit(t)
        if broadcast:
            sd.broadcast_max_lsns()
        reader = quiet.begin()
        quiet.read(reader, cold_page, cold_slot, use_commit_lsn=True)
        quiet.commit(reader)
    hits = sd.stats.get(COMMIT_LSN_HITS)
    misses = sd.stats.get(COMMIT_LSN_MISSES)
    gap = abs(busy.log.local_max_lsn - quiet.log.local_max_lsn)
    return hits / (hits + misses), gap


def run_experiment():
    return {
        "none": run(piggyback=False, value_blocks=False, broadcast=False),
        "locks only": run(piggyback=False, value_blocks=True,
                          broadcast=False),
        "piggyback only": run(piggyback=True, value_blocks=False,
                              broadcast=False),
        "broadcast": run(piggyback=True, value_blocks=True, broadcast=True),
    }


def test_a2_sync_channels(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_banner("A2", f"LSN synchronization channels "
                       f"({SKEW}:1 skew, {ROUNDS} rounds)")
    table = Table(["channel", "Commit_LSN hit rate", "final LSN gap"])
    for label, (rate, gap) in results.items():
        table.add_row(label, rate, gap)
    table.show()
    assert results["none"][0] < 0.2, "no channel -> the check collapses"
    # Any real channel keeps the check alive...
    for label in ("locks only", "piggyback only", "broadcast"):
        assert results[label][0] >= 0.9, label
    # ...and the broadcast keeps the values tightest.
    assert results["broadcast"][1] <= results["none"][1]
