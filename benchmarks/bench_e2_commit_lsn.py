"""E2 — Commit_LSN hit rate vs LSN-rate skew (Sections 2 P4, 3.5).

Paper claim: LSNs issued by different systems should stay close
together; "while no inconsistency will arise if one or more systems
keep issuing low LSNs, the smaller values will ... keep the global
Commit_LSN value too much in the past and the conservative check ...
will fail more often".  The Lamport Local_Max_LSN exchange fixes it.

The bench runs a busy system (many updates per round) next to a quiet
one (one update per round) and measures the quiet reader's Commit_LSN
hit rate with and without the Section 3.5 exchange, across skews.
Lock value blocks are disabled so the periodic broadcast is the *only*
synchronization channel.
"""

from repro import SDComplex
from repro.common.stats import COMMIT_LSN_HITS, COMMIT_LSN_MISSES
from repro.harness import Table, print_banner

ROUNDS = 30


def run(skew: int, exchange: bool) -> float:
    sd = SDComplex(n_data_pages=256, piggyback_enabled=exchange,
                   lock_value_blocks=False)
    busy = sd.add_instance(1)
    quiet = sd.add_instance(2)
    txn = busy.begin()
    hot_page = busy.allocate_page(txn)
    hot_slot = busy.insert(txn, hot_page, b"hot")
    busy.commit(txn)
    txn = quiet.begin()
    own_page = quiet.allocate_page(txn)
    own_slot = quiet.insert(txn, own_page, b"own")
    quiet.commit(txn)

    for round_ in range(ROUNDS):
        for _ in range(skew):
            t = busy.begin()
            busy.update(t, hot_page, hot_slot, b"w%04d" % round_)
            busy.commit(t)
        t = quiet.begin()
        quiet.update(t, own_page, own_slot, b"q%04d" % round_)
        quiet.commit(t)
        if exchange:
            sd.broadcast_max_lsns()
        # Quiet system reads the hot page under cursor stability.
        reader = quiet.begin()
        quiet.read(reader, hot_page, hot_slot, use_commit_lsn=True)
        quiet.commit(reader)
    hits = sd.stats.get(COMMIT_LSN_HITS)
    misses = sd.stats.get(COMMIT_LSN_MISSES)
    return hits / (hits + misses)


def run_experiment():
    results = {}
    for skew in (1, 10, 50):
        results[skew] = (run(skew, exchange=False),
                         run(skew, exchange=True))
    return results


def test_e2_commit_lsn_hit_rate(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_banner("E2", "Commit_LSN hit rate vs LSN-rate skew")
    table = Table(["busy:quiet skew", "hit rate (no exchange)",
                   "hit rate (Lamport exchange)"])
    for skew, (without, with_) in sorted(results.items()):
        table.add_row(f"{skew}:1", without, with_)
    table.show()
    # Shape: the exchange keeps the check effective at every skew; the
    # skewed no-exchange runs collapse.
    for skew, (without, with_) in results.items():
        assert with_ >= 0.9, f"exchange arm should hit (skew {skew})"
        if skew >= 10:
            assert without < with_, "skew must hurt the no-exchange arm"
    assert results[50][0] <= results[1][0] + 1e-9
