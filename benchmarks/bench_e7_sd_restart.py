"""E7 — SD instance restart recovery from its own local log only.

Paper claim (Sections 3.1-3.2): under the medium page-transfer scheme,
"only one system's log is needed for restart redo recovery.  That is, a
real time merged log is not required."  Checkpoints bound the redo scan
via the RecAddr machinery of Section 3.2.2.

The bench runs a multi-system workload, crashes one instance and
recovers it using nothing but that instance's log, at several
checkpoint intervals; it verifies durability/atomicity and reports the
redo scan work.
"""

from repro.common.errors import ReproError
from repro.harness import Table, print_banner
from repro.recovery.checkpoint import take_checkpoint
from repro.workload.generator import (
    WorkloadConfig,
    build_scripts,
    populate_pages,
    run_interleaved_sd,
)

from _common import build_sd


def run(checkpoint_every):
    sd, instances = build_sd(3, n_data_pages=512)
    handles = populate_pages(instances[0], 6, 4)
    cfg = WorkloadConfig(n_transactions=30, ops_per_txn=4,
                         read_fraction=0.3, seed=17)
    scripts = build_scripts(cfg, 3, handles)
    counter = {"n": 0}

    def maybe_checkpoint():
        counter["n"] += 1
        if checkpoint_every and counter["n"] % checkpoint_every == 0:
            for instance in instances:
                take_checkpoint(instance)

    run_interleaved_sd(instances, scripts, between_txns=maybe_checkpoint)
    # Leave one transaction in flight on the victim, stolen to disk.
    victim = instances[0]
    in_flight = victim.begin()
    page_id, slot = handles[0]
    try:
        victim.update(in_flight, page_id, slot, b"inflight")
        victim.pool.write_page(page_id)
        victim.log.force()
    except ReproError:
        pass  # best-effort in-flight work; crash comes next
    sd.crash_instance(victim.system_id)
    summary = sd.restart_instance(victim.system_id)
    # Durability check against the other systems' view.
    reader = instances[1]
    txn = reader.begin()
    for page_id, slot in handles:
        assert reader.read(txn, page_id, slot) is not None
    reader.commit(txn)
    log_bytes = victim.log.end_offset
    return summary, log_bytes


def run_experiment():
    results = []
    for checkpoint_every in (0, 10, 3):
        summary, log_bytes = run(checkpoint_every)
        results.append((checkpoint_every or "never", summary, log_bytes))
    return results


def test_e7_sd_restart(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_banner("E7", "SD instance restart (local log only)")
    table = Table(["checkpoint every", "analyzed", "redone",
                   "skipped by LSN", "losers", "CLRs",
                   "redo scan start", "log bytes"])
    for label, summary, log_bytes in results:
        table.add_row(label, summary.records_analyzed,
                      summary.records_redone, summary.redo_skipped_by_lsn,
                      summary.loser_transactions, summary.clrs_written,
                      summary.redo_scan_start, log_bytes)
    table.show()
    never = results[0][1]
    frequent = results[-1][1]
    assert frequent.records_analyzed <= never.records_analyzed, \
        "checkpoints must bound the analysis scan"
    assert all(s.loser_transactions >= 1 for _, s, _ in results), \
        "the in-flight transaction must be a loser"
