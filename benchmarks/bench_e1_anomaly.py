"""E1 — the Section 1.5 lost-update anomaly (naive vs USN).

Paper claim: if LSN = local log address, a page updated in two systems
whose logs grow at different rates can lose a *committed* update at
restart; the USN assignment rule eliminates the anomaly.

The bench replays the exact T1/T2/S1/S2 example at several log-rate
skews plus randomized multi-round variants, and reports, per scheme,
how many runs violated durability.
"""

import random

from repro.baselines.naive import NaiveDbmsInstance
from repro.harness import Table, print_banner
from repro.harness.experiment import ExperimentResult
from repro.sd.instance import DbmsInstance

from _common import bench_main, build_sd, committed_row, section_1_5_scenario


def randomized_variant(instance_cls, seed):
    """Random cross-system update rounds with skewed filler, then a
    crash of the system holding the page dirty.  Returns True iff all
    committed values survived."""
    rng = random.Random(seed)
    complex_, instances = build_sd(2, instance_cls=instance_cls,
                                   n_data_pages=128)
    page_id, slot = committed_row(instances[0])
    expected = b"v0"
    for round_ in range(rng.randrange(2, 8)):
        instance = instances[rng.randrange(2)]
        instance.write_filler(rng.randrange(0, 40))
        txn = instance.begin()
        value = b"r%03d" % round_
        instance.update(txn, page_id, slot, value)
        instance.commit(txn)
        expected = value
    victim = complex_.coherency.writer_of(page_id)
    complex_.crash_instance(victim)
    complex_.restart_instance(victim)
    return complex_.disk.read_page(page_id).read_record(slot) == expected


def run_experiment():
    rows = []
    for label, cls in (("naive (LSN=log address)", NaiveDbmsInstance),
                       ("USN (this paper)", DbmsInstance)):
        survivor, t1_lsn, t2_lsn = section_1_5_scenario(cls)
        exact_ok = survivor == b"t1-committed"
        random_ok = sum(randomized_variant(cls, seed)
                        for seed in range(20))
        rows.append((label, t2_lsn, t1_lsn,
                     "survives" if exact_ok else "LOST",
                     f"{random_ok}/20"))
    return rows


def build_result():
    """Run E1 and package it as a serializable ExperimentResult."""
    rows = run_experiment()
    result = ExperimentResult(
        "E1",
        "USN LSN assignment eliminates the Section 1.5 "
        "lost-update anomaly; LSN = log address does not",
    )
    table = Table(["scheme", "T2 LSN", "T1 LSN (later!)",
                   "exact scenario", "random variants OK"])
    for row in rows:
        table.add_row(*row)
    result.add_table("naive vs USN on the Section 1.5 scenario", table)
    naive, usn = rows
    result.record("naive_exact", naive[3])
    result.record("usn_exact", usn[3])
    result.record("usn_random_ok", usn[4])
    return result.conclude(
        naive[3] == "LOST" and usn[3] == "survives" and usn[4] == "20/20"
    )


def main(argv=None):
    return bench_main(build_result, argv)


if __name__ == "__main__":
    raise SystemExit(main())


def test_e1_anomaly(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_banner("E1", "Section 1.5 lost-update anomaly")
    table = Table(["scheme", "T2 LSN", "T1 LSN (later!)",
                   "exact scenario", "random variants OK"])
    for row in rows:
        table.add_row(*row)
    table.show()
    naive, usn = rows
    assert naive[3] == "LOST", "naive scheme must exhibit the anomaly"
    assert usn[3] == "survives"
    assert usn[4] == "20/20", "USN must survive every randomized variant"
    # The naive T1 LSN is smaller than T2's although T1 ran later —
    # the root cause the paper identifies.
    assert naive[2] < naive[1]
    assert usn[2] > usn[1]
