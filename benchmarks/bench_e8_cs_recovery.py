"""E8 — client-server failure recovery (Sections 1.6, 3.1, 3.2.2).

Paper claims: a failed client is recovered *by the server* from the
single log, filtering by the client identity in each record; "Redo
would be needed only for those pages for which the failed client had
write locks.  Even for some of those pages, redo would not be needed if
the server's buffer pool already had the latest versions"; server
failure is handled like an SD-complex failure.

The bench interleaves transactions across 2..6 clients, crashes each
client in turn (server recovers it), then crashes the server, and
verifies every committed value; it reports the per-recovery work.
"""

from repro import CsSystem
from repro.common.errors import ReproError
from repro.harness import Table, print_banner
from repro.workload.generator import (
    WorkloadConfig,
    build_scripts,
    populate_pages,
    run_interleaved_cs,
)


def run(n_clients):
    cs = CsSystem(n_data_pages=512)
    clients = [cs.add_client(i + 1) for i in range(n_clients)]
    handles = populate_pages(clients[0], 6, 4)
    cfg = WorkloadConfig(n_transactions=6 * n_clients, ops_per_txn=3,
                         read_fraction=0.3, seed=23)
    scripts = build_scripts(cfg, n_clients, handles)
    run_interleaved_cs(clients, scripts, commit_lsn_service=cs.commit_lsn)
    for client in clients:
        client.checkpoint()

    summaries = []
    for client in clients:
        # Give the victim an in-flight transaction whose dirty page is
        # already at the server (so undo has real work).
        txn = client.begin()
        page_id, slot = handles[0]
        try:
            client.update(txn, page_id, slot, b"inflight")
            client.send_page_back(page_id)
        except ReproError:
            pass  # best-effort in-flight work; crash comes next
        cs.crash_client(client.client_id)
        summaries.append(cs.recover_client(client.client_id))

    cs.server.take_checkpoint()
    cs.crash_server()
    server_summary = cs.restart_server()
    # All committed values must be on disk now.
    for page_id, slot in handles:
        assert cs.server.disk.read_page(page_id).read_record(slot) is not None
    return summaries, server_summary


def run_experiment():
    return {n: run(n) for n in (2, 4, 6)}


def test_e8_cs_recovery(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_banner("E8", "CS client & server failure recovery")
    table = Table(["clients", "avg scanned/recovery", "avg redone",
                   "avg skipped (buffer hit)", "losers undone",
                   "CLRs", "server losers"])
    for n, (summaries, server_summary) in sorted(results.items()):
        k = len(summaries)
        table.add_row(
            n,
            sum(s.records_scanned for s in summaries) / k,
            sum(s.records_redone for s in summaries) / k,
            sum(s.redo_skipped_buffer_hit for s in summaries) / k,
            sum(s.loser_transactions for s in summaries),
            sum(s.clrs_written for s in summaries),
            server_summary.loser_transactions,
        )
    table.show()
    for n, (summaries, _) in results.items():
        assert sum(s.loser_transactions for s in summaries) >= 1, \
            "in-flight transactions must be undone by the server"
