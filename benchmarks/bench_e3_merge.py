"""E3 — log merge cost: LSN-only (USN) vs (page, LSN) (Lomet).

Paper claim (Section 4.2): "With our method, since we ensure that all
successive log records in a local log have higher and higher LSN
values, the comparison for merging can be done simply, based solely on
the LSN field", whereas Lomet's merge "requires that both the page
number field and the LSN field of the log records be compared" and the
local logs are not even LSN-sorted.

The bench builds k local logs of n records over a shared page set under
both schemes and measures key comparisons (exact counters) and wall
time for a full merge.
"""

from repro.baselines.lomet import LometLogManager
from repro.common.clock import wall_seconds
from repro.common.stats import MERGE_COMPARISONS, StatsRegistry
from repro.harness import Table, format_factor, print_banner
from repro.wal.log_manager import LogManager
from repro.wal.merge import lomet_merge, merge_local_logs
from repro.wal.records import make_update

N_PAGES = 64


def build_usn_logs(k, n):
    logs = []
    for system in range(1, k + 1):
        log = LogManager(system)
        for i in range(n):
            log.append(make_update(1, system, 100 + (i % N_PAGES), 0,
                                   b"r", b"u"))
        logs.append(log)
    return logs


def build_lomet_logs(k, n):
    logs = []
    for system in range(1, k + 1):
        log = LometLogManager(system)
        versions = {}
        for i in range(n):
            page_id = 100 + (i % N_PAGES)
            record = make_update(1, system, page_id, 0, b"r", b"u")
            log.append(record, page_lsn=versions.get(page_id, 0))
            versions[page_id] = record.lsn
        logs.append(log)
    return logs


def measure(k, n):
    usn_logs = build_usn_logs(k, n)
    usn_stats = StatsRegistry()
    t0 = wall_seconds()
    usn_count = sum(1 for _ in merge_local_logs(usn_logs, stats=usn_stats))
    usn_time = wall_seconds() - t0

    l_logs = build_lomet_logs(k, n)
    l_stats = StatsRegistry()
    t0 = wall_seconds()
    l_count = sum(1 for _ in lomet_merge(l_logs, stats=l_stats))
    l_time = wall_seconds() - t0

    assert usn_count == l_count == k * n
    return (usn_stats.get(MERGE_COMPARISONS),
            l_stats.get(MERGE_COMPARISONS), usn_time, l_time)


def run_experiment():
    rows = []
    for k in (2, 4, 8):
        n = 20_000 // k
        usn_cmp, lomet_cmp, usn_time, lomet_time = measure(k, n)
        rows.append((k, n, usn_cmp, lomet_cmp,
                     format_factor(lomet_cmp, usn_cmp),
                     usn_time * 1e3, lomet_time * 1e3))
    return rows


def test_e3_merge_comparisons(benchmark):
    rows = run_experiment()
    print_banner("E3", "k-way log merge: LSN-only vs (page, LSN)")
    table = Table(["k logs", "records/log", "USN comparisons",
                   "Lomet comparisons", "factor", "USN ms", "Lomet ms"])
    for row in rows:
        table.add_row(*row)
    table.show()
    for row in rows:
        assert row[3] > row[2], "Lomet merge must cost more comparisons"
    # Wall-time benchmark of the USN merge itself at the largest k.
    logs = build_usn_logs(8, 2500)
    benchmark(lambda: sum(1 for _ in merge_local_logs(logs)))
