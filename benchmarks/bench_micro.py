"""Micro-benchmarks of the hot-path primitives.

Not paper experiments — engineering numbers for the substrate itself:
log append (the USN rule), slotted-page record ops, record
serialization, and a full engine update round trip.
"""

import pytest

from repro.storage.page import Page, PageType
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, make_update

from _common import build_sd, committed_row


def test_micro_log_append(benchmark):
    log = LogManager(1)
    record = make_update(1, 1, 100, 0, redo=b"x" * 32, undo=b"y" * 32)

    def append():
        log.append(record, page_lsn=0)

    benchmark(append)


def test_micro_record_roundtrip(benchmark):
    record = make_update(1, 1, 100, 3, redo=b"x" * 64, undo=b"y" * 64)
    data = record.to_bytes()

    def roundtrip():
        LogRecord.from_bytes(data)

    benchmark(roundtrip)


def test_micro_page_insert_delete(benchmark):
    page = Page()
    page.format(1, PageType.DATA)
    payload = b"p" * 40

    def cycle():
        slot = page.insert_record(payload)
        page.delete_record(slot)

    benchmark(cycle)


def test_micro_page_serialization(benchmark):
    page = Page()
    page.format(1, PageType.DATA)
    for i in range(20):
        page.insert_record(b"row %02d" % i)

    def roundtrip():
        Page.from_bytes(page.to_bytes())

    benchmark(roundtrip)


def test_micro_engine_update_commit(benchmark):
    sd, (s1,) = build_sd(1, n_data_pages=256)
    page_id, slot = committed_row(s1)

    def txn_cycle():
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"value")
        s1.commit(txn)

    benchmark(txn_cycle)
