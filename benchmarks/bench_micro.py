"""Micro-benchmarks of the hot-path primitives.

Not paper experiments — engineering numbers for the substrate itself:
log append (the USN rule), slotted-page record ops, record
serialization, and a full engine update round trip.
"""

# reprolint: disable-file=R001 -- microbenchmarks measure raw page primitives
# below the WAL layer; nothing here is recovered.

import pytest

from repro.common.clock import wall_seconds
from repro.common.stats import (
    BUFFER_BATCH_FLUSHES,
    LOG_FORCES,
    LOG_FORCES_COALESCED,
)
from repro.storage.page import Page, PageType
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, make_update

from _common import build_sd, committed_row

BATCH = 64


def _fresh_records(n):
    return [
        make_update(1, i + 1, 100 + i, 0, redo=b"x" * 32, undo=b"y" * 32)
        for i in range(n)
    ]


def test_micro_log_append(benchmark):
    log = LogManager(1)
    record = make_update(1, 1, 100, 0, redo=b"x" * 32, undo=b"y" * 32)

    def append():
        log.append(record, page_lsn=0)

    benchmark(append)


def test_micro_log_append_many(benchmark):
    log = LogManager(1)
    records = _fresh_records(BATCH)

    def append_batch():
        log.append_many(records)

    benchmark(append_batch)


def _best_of(fn, repeats=5, inner=40):
    """Minimum wall-clock over ``repeats`` runs of ``inner`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = wall_seconds()
        for _ in range(inner):
            fn()
        best = min(best, wall_seconds() - start)
    return best


def test_append_many_speedup_over_single_appends():
    """Acceptance gate: ``append_many`` beats N single ``append`` calls
    by >= 2x at batch size 64 (programmatic — no timing fixture)."""
    slow_log = LogManager(1)
    fast_log = LogManager(2)
    records = _fresh_records(BATCH)

    def slow():
        append = slow_log.append
        for record in records:
            append(record, page_lsn=0)

    def fast():
        fast_log.append_many(records)

    slow()  # warm both paths before timing
    fast()
    slow_s = _best_of(slow)
    fast_s = _best_of(fast)
    speedup = slow_s / fast_s
    print(f"append_many speedup at batch {BATCH}: {speedup:.2f}x "
          f"({slow_s * 1e3:.2f}ms vs {fast_s * 1e3:.2f}ms)")
    assert speedup >= 2.0, (
        f"append_many only {speedup:.2f}x faster than single appends "
        f"(need >= 2x at batch {BATCH})"
    )


def _engine_with_dirty_pages(n):
    """One instance holding ``n`` dirty pages whose latest updates are
    not yet on stable log (uncommitted txn => WAL force needed)."""
    sd, (s1,) = build_sd(1, n_data_pages=256)
    rows = [committed_row(s1) for _ in range(n)]
    txn = s1.begin()
    for page_id, slot in rows:
        s1.update(txn, page_id, slot, b"dirty")
    return s1, [page_id for page_id, _ in rows]


def test_batch_flush_coalesces_forces():
    """Acceptance gate: the old per-page path issues N log forces where
    ``flush_pages`` issues exactly 1 (asserted via counters)."""
    n = 8

    old, old_pages = _engine_with_dirty_pages(n)
    before = old.log.stats.get(LOG_FORCES)
    for page_id in old_pages:  # ascending update order: worst case
        old.pool.write_page(page_id)
    old_forces = old.log.stats.get(LOG_FORCES) - before
    assert old_forces == n, f"per-page path forced {old_forces}x, not {n}x"

    new, new_pages = _engine_with_dirty_pages(n)
    forces0 = new.log.stats.get(LOG_FORCES)
    coalesced0 = new.log.stats.get(LOG_FORCES_COALESCED)
    flushes0 = new.log.stats.get(BUFFER_BATCH_FLUSHES)
    written = new.pool.flush_pages(new_pages)
    assert written == n
    assert new.log.stats.get(LOG_FORCES) - forces0 == 1
    assert new.log.stats.get(LOG_FORCES_COALESCED) - coalesced0 == n - 1
    assert new.log.stats.get(BUFFER_BATCH_FLUSHES) - flushes0 == 1
    for page_id in new_pages:
        assert new.log.is_stable(new.pool.bcb(page_id).last_update_end) \
            or not new.pool.is_dirty(page_id)


def test_micro_record_roundtrip(benchmark):
    record = make_update(1, 1, 100, 3, redo=b"x" * 64, undo=b"y" * 64)
    data = record.to_bytes()

    def roundtrip():
        LogRecord.from_bytes(data)

    benchmark(roundtrip)


def test_micro_page_insert_delete(benchmark):
    page = Page()
    page.format(1, PageType.DATA)
    payload = b"p" * 40

    def cycle():
        slot = page.insert_record(payload)
        page.delete_record(slot)

    benchmark(cycle)


def test_micro_page_serialization(benchmark):
    page = Page()
    page.format(1, PageType.DATA)
    for i in range(20):
        page.insert_record(b"row %02d" % i)

    def roundtrip():
        Page.from_bytes(page.to_bytes())

    benchmark(roundtrip)


def test_micro_engine_update_commit(benchmark):
    sd, (s1,) = build_sd(1, n_data_pages=256)
    page_id, slot = committed_row(s1)

    def txn_cycle():
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"value")
        s1.commit(txn)

    benchmark(txn_cycle)


def _copy_per_op_stamped_image(page):
    """The pre-slab write path, reconstructed verbatim: the baseline
    the slab gate races (like the N-single-appends baseline above).

    Four full-page materialisations per write — ``to_bytes``, the
    ``bytearray`` working copy, the ``bytes`` round-trip for the
    checksum (whose slice-concat makes a fifth, page-sized temporary),
    and the probe page's final ``to_bytes``.
    """
    import zlib
    image = bytearray(page.to_bytes())
    flat = bytes(image)
    cksum = zlib.crc32(flat[:17] + flat[21:])
    probe = Page(image)
    probe.set_checksum(cksum)
    return probe.to_bytes()


def test_slab_write_speedup_over_copy_per_op_classic():
    """Acceptance gate: the slab write lane (checksum stamped in place
    into a slab window via ``pack_into`` + streamed CRC, batched by
    ``write_many``) beats the classic copy-per-operation write path by
    >= 2x at batch size 64.

    The baseline loop mirrors the old ``SharedDisk.write_page`` body:
    stamped image into a dict store, lost-set discard, one counter
    bump per page.  Rounds are interleaved so CPU-frequency drift on a
    shared runner hits both sides equally.
    """
    from repro.common.stats import DISK_PAGE_WRITES
    from repro.storage.disk import SharedDisk

    pages = []
    for i in range(BATCH):
        page = Page()
        page.format(i, PageType.DATA)
        page.insert_record(b"x" * 64)
        pages.append(page)

    slab = SharedDisk(slab=True)
    store = {}
    lost = set()
    stats = slab.stats

    def classic_loop():
        for page in pages:
            store[page.page_id] = _copy_per_op_stamped_image(page)
            lost.discard(page.page_id)
            stats.incr(DISK_PAGE_WRITES)

    def slab_batch():
        slab.write_many(pages)

    classic_loop()  # warm both paths before timing
    slab_batch()
    classic_s = slab_s = float("inf")
    for _ in range(8):
        start = wall_seconds()
        for _ in range(20):
            classic_loop()
        classic_s = min(classic_s, wall_seconds() - start)
        start = wall_seconds()
        for _ in range(20):
            slab_batch()
        slab_s = min(slab_s, wall_seconds() - start)
    speedup = classic_s / slab_s
    print(f"slab write_many speedup at batch {BATCH}: {speedup:.2f}x "
          f"({classic_s * 1e3:.2f}ms vs {slab_s * 1e3:.2f}ms)")
    assert speedup >= 2.0, (
        f"slab write lane only {speedup:.2f}x faster than the "
        f"copy-per-op classic path (need >= 2x at batch {BATCH})"
    )
    # The gate must compare equal work: both sides stored the same
    # checksummed images.
    for page in pages:
        assert bytes(slab.raw_image(page.page_id)) == store[page.page_id]


def test_slab_off_is_zero_drift():
    """Acceptance gate for the spine swap: the chaos workload driven
    over the classic dict-of-bytes spine (``slab=False``) and over the
    slab spine must be byte-identical — same trace, same counters.
    The flavour differs only *below* the checksum line, so turning the
    slab off cannot drift an experiment."""
    from repro.faults import scenarios
    from repro.faults.injector import NULL_INJECTOR

    classic_sd, classic_tracer = scenarios.build_sd(NULL_INJECTOR, seed=0,
                                                    slab=False)
    scenarios.run_sd_workload(classic_sd, 0)

    slab_sd, slab_tracer = scenarios.build_sd(NULL_INJECTOR, seed=0,
                                              slab=True)
    scenarios.run_sd_workload(slab_sd, 0)

    assert slab_tracer.dump_jsonl() == classic_tracer.dump_jsonl()
    assert slab_sd.stats.snapshot() == classic_sd.stats.snapshot()


def test_disabled_injector_is_zero_cost():
    """Acceptance gate: with no injector (the default null object) and
    with an enabled injector holding an empty plan, the chaos workload
    must be byte-identical — same trace, same counters.  The fault
    seams are guarded by a single ``enabled`` attribute check, so
    leaving them off cannot perturb a run."""
    from repro.faults import scenarios
    from repro.faults.injector import NULL_INJECTOR, FaultInjector, FaultPlan

    null_sd, null_tracer = scenarios.build_sd(NULL_INJECTOR, seed=0)
    scenarios.run_sd_workload(null_sd, 0)

    live_sd, live_tracer = scenarios.build_sd(
        FaultInjector(FaultPlan(seed=0)), seed=0)
    scenarios.run_sd_workload(live_sd, 0)

    assert live_tracer.dump_jsonl() == null_tracer.dump_jsonl()
    assert live_sd.stats.snapshot() == null_sd.stats.snapshot()


def test_span_tracing_off_is_zero_drift():
    """Acceptance gate for the span layer: running the chaos workload
    untraced (the NULL_TRACER default) must leave the stats counters
    identical to a traced run — the span seams are guarded by a single
    ``enabled`` check and mint no counters of their own, so turning
    tracing off cannot drift a benchmark."""
    from repro.faults import scenarios
    from repro.faults.injector import NULL_INJECTOR
    from repro.obs import events as ev
    from repro.sd.complex import SDComplex

    traced_sd, tracer = scenarios.build_sd(NULL_INJECTOR, seed=0)
    scenarios.run_sd_workload(traced_sd, 0)
    assert any(e.kind == ev.SPAN_BEGIN for e in tracer.events())

    untraced_sd = SDComplex(n_data_pages=64, injector=NULL_INJECTOR)
    for system_id in (1, 2):
        untraced_sd.add_instance(system_id)
    scenarios.run_sd_workload(untraced_sd, 0)

    assert untraced_sd.tracer.events() == []
    assert untraced_sd.stats.snapshot() == traced_sd.stats.snapshot()


def test_micro_injector_guard_overhead(benchmark):
    """The seam cost when faults are off: one attribute check per
    engine update/commit cycle (compare test_micro_engine_update_commit
    — the two must stay in the same ballpark)."""
    sd, (s1,) = build_sd(1, n_data_pages=256)
    assert not s1.injector.enabled
    page_id, slot = committed_row(s1)

    def txn_cycle():
        txn = s1.begin()
        s1.update(txn, page_id, slot, b"value")
        s1.commit(txn)

    benchmark(txn_cycle)
