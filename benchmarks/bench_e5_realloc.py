"""E5 — read-free page reallocation (Sections 2 P3, 3.4).

Paper claim: with the SMP-LSN rule, a deallocated page can be
reallocated and formatted "without reading the page from disk", with a
page_LSN guaranteed above everything the dead disk version carries —
even when deallocation and reallocation happen on *different systems*.
Lomet achieves read-free reallocation too, but pays at deallocation
time: the exact page LSN must be captured, so a page not in the buffer
must be read.

The bench churns empty-index-page dealloc/realloc cycles across two
systems, counts synchronous data-page reads per scheme, and crash-tests
the reallocated pages.
"""

from repro.baselines.lomet import LometComplex
from repro.common.stats import DISK_PAGE_READS, PAGE_READS_AVOIDED
from repro.harness import Table, print_banner
from repro.storage.page import PageType

from _common import build_sd

ROUNDS = 30


def run_usn():
    """Dealloc on S1, realloc on S2, every round; count reads of the
    churned data page and verify crash-safety of the last realloc."""
    sd, (s1, s2) = build_sd(2, n_data_pages=256)
    txn = s1.begin()
    page_id = s1.allocate_page(txn, PageType.INDEX)
    slot = s1.insert(txn, page_id, b"key")
    s1.commit(txn)
    data_page_reads = 0
    for round_ in range(ROUNDS):
        txn = s1.begin()
        # Empty the page, deallocate, commit; flush so the dead version
        # sits on disk with a high LSN.
        page = sd.coherency.access(s1, page_id, for_update=True)
        s1.pool.unfix(page_id)
        s1.delete(txn, page_id, slot)
        s1.deallocate_page(txn, page_id)
        s1.commit(txn)
        s1.pool.flush_all()
        reads_before = sd.stats.get(DISK_PAGE_READS)
        txn2 = s2.begin()
        s2.allocate_page(txn2, PageType.INDEX, page_id=page_id)
        slot = s2.insert(txn2, page_id, b"key")
        s2.commit(txn2)
        # Count only reads of the churned data page: none are allowed
        # beyond SMP traffic, checked via the avoided-reads counter.
        s1, s2 = s2, s1
    avoided = sd.stats.get(PAGE_READS_AVOIDED)
    # Crash the current owner and verify the page recovers formatted.
    owner = sd.coherency.writer_of(page_id)
    sd.crash_instance(owner)
    sd.restart_instance(owner)
    recovered = sd.disk.read_page(page_id)
    assert recovered.read_record(slot) == b"key"
    return avoided, data_page_reads, recovered.page_lsn


def run_lomet():
    """Same churn under Lomet: count forced dealloc-time page reads."""
    complex_ = LometComplex(n_data_pages=256)
    s1 = complex_.add_system(1)
    s2 = complex_.add_system(2)
    page_id = s1.allocate_page(PageType.INDEX)
    slot = s1.insert(page_id, b"key")
    s1.flush()
    dealloc_reads = 0
    for round_ in range(ROUNDS):
        # The deallocating system must see the page to capture its
        # exact LSN; simulate an uncached page (the common case for a
        # background space-reclamation task).
        if s1.pool.contains(page_id):
            if s1.pool.is_dirty(page_id):
                s1.pool.write_page(page_id)
            s1.pool.drop_page(page_id)
        before = complex_.stats.get(DISK_PAGE_READS)
        page = s1.pool.fix(page_id)
        # reprolint: disable=R001 -- Lomet baseline deliberately
        # models the unlogged dealloc-time page touch the paper
        # criticises; the read cost is the measurement.
        page.delete_record(slot)
        s1.pool.bcb(page_id).dirty = True
        s1.pool.write_page(page_id)
        s1.pool.unfix(page_id)
        s1.deallocate_page(page_id)
        dealloc_reads += complex_.stats.get(DISK_PAGE_READS) - before
        s1.flush()
        page_id2 = s2.allocate_page(PageType.INDEX, page_id=page_id)
        slot = s2.insert(page_id2, b"key")
        s2.flush()
        s2.pool.drop_page(page_id)
        s1, s2 = s2, s1
    return dealloc_reads


def run_experiment():
    avoided, data_reads, final_lsn = run_usn()
    lomet_reads = run_lomet()
    return avoided, data_reads, final_lsn, lomet_reads


def test_e5_reallocation(benchmark):
    avoided, data_reads, final_lsn, lomet_reads = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    print_banner("E5", "read-free page reallocation churn "
                       f"({ROUNDS} cross-system cycles)")
    table = Table(["scheme", "realloc disk reads avoided",
                   "dealloc-time page reads", "crash-safe"])
    table.add_row("USN + SMP LSN rule", avoided, 0, "yes")
    table.add_row("Lomet (exact LSN in SMP)", lomet_reads and ROUNDS,
                  lomet_reads, "yes")
    table.show()
    assert avoided >= ROUNDS       # every realloc skipped the read
    assert lomet_reads == ROUNDS   # every dealloc paid a read
    assert final_lsn > 0
