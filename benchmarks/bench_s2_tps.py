"""S2 — TPS headline: vectorized bulk-op driver over the slab spine.

The per-op driver pays a full lock/fix/log round trip for every record
it touches.  The bulk lane (:mod:`repro.workload.bulk`) batches a whole
transaction into one ``read_many`` + one ``update_many`` — one page
lock and one fix per distinct page, one ``append_many`` for the batch's
log records — and group-commits with one force per group.  This bench
races the two drivers over the *same* deterministic batch plan at
growing batch sizes and gates on:

* **throughput** — at batch size >= 64 the bulk driver sustains >= 2x
  the per-call driver's ops/second (wall clock, best-of-``REPEATS``,
  each repetition on a freshly built engine);
* **equivalence** — both drivers commit the same transaction count and
  leave byte-identical record payloads behind (the fast lane cut
  costs, not corners).

Wall-clock is the honest metric here (the whole point of the slab spine
and the vectorized lanes is real CPU time), so the gate uses a generous
2x on a >= 8x lock-traffic reduction; the exact counters are attached
for the trajectory file.
"""

from repro.common.clock import wall_seconds
from repro.common.stats import BULK_OPS_APPLIED, LOCK_REQUESTS, LOG_FORCES
from repro.harness import Table, print_banner
from repro.harness.experiment import ExperimentResult
from repro.sd.complex import SDComplex
from repro.workload.bulk import (
    BulkConfig,
    build_batches,
    run_bulk,
    run_per_call,
)
from repro.workload.generator import populate_pages

from _common import bench_main

#: Fixed logical workload per sweep point (split into TOTAL_OPS /
#: batch_size transactions).
TOTAL_OPS = 2048
BATCH_SIZES = (8, 64, 256)
N_PAGES = 8
RECORDS_PER_PAGE = 8
REPEATS = 3
SEED = 1992


def _fresh_engine():
    sd = SDComplex(n_data_pages=64)
    engine = sd.add_instance(1)
    handles = populate_pages(engine, N_PAGES, RECORDS_PER_PAGE)
    return sd, engine, handles


def _plan(batch_size, handles):
    config = BulkConfig(
        n_transactions=TOTAL_OPS // batch_size,
        ops_per_txn=batch_size,
        seed=SEED,
    )
    return build_batches(config, handles)


def _time_driver(driver, batch_size):
    """Best-of-``REPEATS`` wall seconds; returns (seconds, sd, engine,
    handles, run_result) from the fastest repetition's run."""
    best = None
    for _ in range(REPEATS):
        sd, engine, handles = _fresh_engine()
        batches = _plan(batch_size, handles)
        started = wall_seconds()
        run = driver(engine, batches)
        elapsed = wall_seconds() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, sd, engine, handles, run)
    return best


def _final_payloads(sd, engine, handles):
    engine.pool.flush_all()
    out = []
    for page_id, slot in handles:
        out.append(sd.disk.read_page(page_id).read_record(slot))
    return out


def run_config(batch_size):
    """One sweep point; returns the row dict for the tables."""
    base_s, base_sd, base_engine, base_handles, base_run = _time_driver(
        run_per_call, batch_size)
    bulk_s, bulk_sd, bulk_engine, bulk_handles, bulk_run = _time_driver(
        run_bulk, batch_size)
    total_ops = base_run.reads + base_run.updates
    equivalent = (
        base_run.committed == bulk_run.committed
        and base_run.reads == bulk_run.reads
        and base_run.updates == bulk_run.updates
        and _final_payloads(base_sd, base_engine, base_handles)
        == _final_payloads(bulk_sd, bulk_engine, bulk_handles)
    )
    return {
        "stats": bulk_sd.stats,
        "committed": bulk_run.committed,
        "total_ops": total_ops,
        "per_call_ops_s": total_ops / max(base_s, 1e-9),
        "bulk_ops_s": total_ops / max(bulk_s, 1e-9),
        "per_call_tps": base_run.committed / max(base_s, 1e-9),
        "bulk_tps": bulk_run.committed / max(bulk_s, 1e-9),
        "speedup": base_s / max(bulk_s, 1e-9),
        "lock_requests_per_call": base_sd.stats.get(LOCK_REQUESTS),
        "lock_requests_bulk": bulk_sd.stats.get(LOCK_REQUESTS),
        "forces_bulk": bulk_sd.stats.get(LOG_FORCES),
        "bulk_ops_applied": bulk_sd.stats.get(BULK_OPS_APPLIED),
        "equivalent": equivalent,
    }


def run_experiment():
    return {size: run_config(size) for size in BATCH_SIZES}


def build_result():
    sweep = run_experiment()
    result = ExperimentResult(
        "S2",
        "the vectorized bulk-op driver sustains >= 2x the per-call "
        "driver's ops/second at batch >= 64 while committing the same "
        "transactions and leaving byte-identical records",
    )
    table = Table(["batch", "txns", "ops", "per-call ops/s", "bulk ops/s",
                   "per-call TPS", "bulk TPS", "speedup",
                   "locks per-call", "locks bulk", "equal"])
    for size in BATCH_SIZES:
        row = sweep[size]
        table.add_row(size, row["committed"], row["total_ops"],
                      round(row["per_call_ops_s"]), round(row["bulk_ops_s"]),
                      round(row["per_call_tps"]), round(row["bulk_tps"]),
                      round(row["speedup"], 2),
                      row["lock_requests_per_call"],
                      row["lock_requests_bulk"], row["equivalent"])
    result.add_table("per-call vs bulk driver (best of "
                     f"{REPEATS}, {TOTAL_OPS} ops/point)", table)

    headline = sweep[max(BATCH_SIZES)]
    result.record("bulk_ops_per_s", round(headline["bulk_ops_s"]))
    result.record("bulk_tps", round(headline["bulk_tps"]))
    result.record("speedup_at_64", round(sweep[64]["speedup"], 2))
    result.record("speedup_at_256", round(headline["speedup"], 2))
    result.record("lock_reduction_at_256", round(
        headline["lock_requests_per_call"]
        / max(headline["lock_requests_bulk"], 1), 1))
    result.attach_stats(headline["stats"])
    return result.conclude(
        all(sweep[size]["equivalent"] for size in BATCH_SIZES)
        and sweep[64]["speedup"] >= 2.0
        and sweep[256]["speedup"] >= 2.0
    )


def main(argv=None):
    return bench_main(build_result, argv)


if __name__ == "__main__":
    raise SystemExit(main())


def test_s2_tps(benchmark):
    result = benchmark.pedantic(build_result, rounds=1, iterations=1)
    print_banner("S2", "bulk-op driver TPS vs the per-call baseline")
    print(result.render())
    assert result.holds
