"""S4 — instant restart: time-to-first-transaction vs eager restart.

Eager ARIES restart (Section 3.2) redoes every dirty page and undoes
every loser before the system accepts a single new transaction, so the
time to the first post-crash commit grows with the dirty-page count.
Instant restart (``restart_mode="instant"``) opens for business right
after the analysis and undo passes: redo is deferred into per-page log
chains that are applied on first access (or by the background
sweeper), so the first transaction pays only for the pages it touches.

The bench runs an identical update-heavy workload twice, crashes the
instance, and measures **time-to-first-transaction in deterministic
disk ticks** — disk page reads + writes between the crash and the
first post-restart commit.  It gates on:

* **latency** — the instant path's time-to-first-transaction is at
  least 3x below eager restart's (``instant * 3 <= eager``);
* **equivalence** — after the sweeper drains, both runs leave SHA-256
  identical disk images (laziness cut latency, not correctness).
"""

from repro.common.stats import (
    DISK_PAGE_READS,
    DISK_PAGE_WRITES,
    INSTANT_DEMAND_RECOVERIES,
    INSTANT_SWEEP_RECOVERIES,
)
from repro.faults.campaign import _disk_digest
from repro.harness import Table, print_banner
from repro.harness.experiment import ExperimentResult
from repro.sd.complex import SDComplex
from repro.workload.generator import populate_pages

from _common import bench_main

N_PAGES = 32
RECORDS_PER_PAGE = 8
N_UPDATE_ROUNDS = 4
#: Every FLUSH_EVERY-th commit steals one page to disk, so restart sees
#: a realistic mix of redo work and page_LSN-screened records.
FLUSH_EVERY = 10
MODES = ("eager", "instant")


def _build(mode):
    sd = SDComplex(n_data_pages=256, restart_mode=mode)
    engine = sd.add_instance(1)
    handles = populate_pages(engine, N_PAGES, RECORDS_PER_PAGE)
    return sd, engine, handles


def _run_workload(engine, handles):
    """Deterministic single-record transactions over every handle."""
    pages = sorted({page_id for page_id, _ in handles})
    committed = 0
    for round_no in range(N_UPDATE_ROUNDS):
        for index, (page_id, slot) in enumerate(handles):
            txn = engine.begin()
            engine.update(txn, page_id, slot,
                          f"r{round_no}v{index}".encode())
            engine.commit(txn)
            committed += 1
            if committed % FLUSH_EVERY == 0:
                stolen = pages[(committed // FLUSH_EVERY) % len(pages)]
                if engine.pool.contains(stolen):
                    engine.pool.write_page(stolen)
    return committed


def _ticks(stats):
    return stats.get(DISK_PAGE_READS) + stats.get(DISK_PAGE_WRITES)


def run_variant(mode):
    """One leg: workload, crash, restart, first transaction, drain."""
    sd, engine, handles = _build(mode)
    committed = _run_workload(engine, handles)
    # Leave one loser in flight, stolen to disk, so restart has undo
    # work on both paths (instant pays it at open, like eager).
    loser_page, loser_slot = handles[-1]
    in_flight = engine.begin()
    engine.update(in_flight, loser_page, loser_slot, b"in-flight")
    engine.pool.write_page(loser_page)
    engine.log.force()
    sd.crash_instance(1)
    before = _ticks(sd.stats)
    summary = sd.restart_instance(1)
    # Time-to-first-transaction: the first post-restart commit, on the
    # restarted instance, touching one page.
    page_id, slot = handles[0]
    txn = engine.begin()
    engine.update(txn, page_id, slot, b"first-post-restart")
    engine.commit(txn)
    ttft = _ticks(sd.stats) - before
    lazy = 0
    if mode == "instant":
        lazy = sum(len(sd.instant[sid].pending_pages())
                   for sid in sorted(sd.instant))
        sd.instant_drain()
    engine.pool.flush_all()
    return {
        "committed": committed,
        "ttft_ticks": ttft,
        "lazy_after_first_txn": lazy,
        "summary": summary,
        "digest": _disk_digest(sd.disk),
        "demand": sd.stats.get(INSTANT_DEMAND_RECOVERIES),
        "swept": sd.stats.get(INSTANT_SWEEP_RECOVERIES),
        "stats": sd.stats,
    }


def run_experiment():
    return {mode: run_variant(mode) for mode in MODES}


def build_result():
    runs = run_experiment()
    eager, instant = runs["eager"], runs["instant"]
    speedup = eager["ttft_ticks"] / max(instant["ttft_ticks"], 1)
    images_match = eager["digest"] == instant["digest"]
    result = ExperimentResult(
        "S4",
        "instant restart commits its first post-crash transaction in "
        ">= 3x fewer disk ticks than eager restart and, once the "
        "sweeper drains, leaves a SHA-256 identical disk image",
    )
    table = Table(["mode", "txns", "ttft ticks", "redone", "losers",
                   "CLRs", "lazy pages", "demand", "swept"])
    for mode in MODES:
        row = runs[mode]
        summary = row["summary"]
        table.add_row(mode, row["committed"], row["ttft_ticks"],
                      summary.records_redone,
                      summary.loser_transactions, summary.clrs_written,
                      row["lazy_after_first_txn"], row["demand"],
                      row["swept"])
    result.add_table(
        "time-to-first-transaction (disk ticks, crash -> first commit)",
        table)
    result.record("eager_ttft_ticks", eager["ttft_ticks"])
    result.record("instant_ttft_ticks", instant["ttft_ticks"])
    result.record("ttft_speedup", round(speedup, 2))
    result.record("lazy_pages_after_first_txn",
                  instant["lazy_after_first_txn"])
    result.record("images_match", images_match)
    result.attach_stats(instant["stats"])
    return result.conclude(
        images_match
        and instant["ttft_ticks"] * 3 <= eager["ttft_ticks"]
    )


def main(argv=None):
    return bench_main(build_result, argv)


if __name__ == "__main__":
    raise SystemExit(main())


def test_s4_instant(benchmark):
    result = benchmark.pedantic(build_result, rounds=1, iterations=1)
    print_banner("S4", "instant restart time-to-first-transaction")
    print(result.render())
    assert result.holds
