"""S3 — log-shipping replication: lag and per-ack commit cost.

The USN scheme makes a hot standby cheap: the primary's local logs
k-way merge by LSN alone (Section 3.2.2), so one continuous redo
stream keeps a whole standby complex current.  What the write-ack
level buys — and costs — should then be visible in two numbers:

* **replication lag** (records collected but not yet shipped) at the
  end of a committed workload: zero for ``quorum``/``all`` (the commit
  point ships everything stable), bounded by the in-flight window for
  asynchronous ``local``;
* **commit cost** in fabric messages per commit: ``local`` commits
  pay nothing at the commit point until the window overflows, while
  ``quorum``/``all`` pay the ship + ack round trips synchronously.

Everything is counted, not timed (rule R002), so the table is
byte-stable across runs.
"""

from repro.common.stats import (
    MESSAGES_SENT,
    REPL_ACKS,
    REPL_RECORDS_SHIPPED,
    StatsRegistry,
)
from repro.harness import Table, print_banner
from repro.harness.experiment import ExperimentResult
from repro.replication import ReplicationConfig
from repro.sd.complex import SDComplex

from _common import bench_main

N_COMMITS = 24
N_STANDBYS = 2
WINDOW_RECORDS = 8
BATCH_RECORDS = 4


def build(ack):
    """An SD complex with two instances; replicated unless ack is None."""
    stats = StatsRegistry()
    replicate = None
    if ack is not None:
        replicate = ReplicationConfig(ack=ack,
                                      window_records=WINDOW_RECORDS,
                                      batch_records=BATCH_RECORDS)
    sd = SDComplex(n_data_pages=128, stats=stats, replicate=replicate)
    instances = [sd.add_instance(system_id) for system_id in (1, 2)]
    if ack is not None:
        for index in range(N_STANDBYS):
            sd.replication.add_standby(9 + index)
    return sd, instances


def drive(sd, instances):
    """N_COMMITS alternating single-insert transactions."""
    before = sd.stats.get(MESSAGES_SENT)
    for index in range(N_COMMITS):
        instance = instances[index % len(instances)]
        txn = instance.begin()
        page_id = instance.allocate_page(txn)
        instance.insert(txn, page_id, b"s3 row %02d" % index)
        instance.commit(txn)
    return sd.stats.get(MESSAGES_SENT) - before


def run_experiment():
    rows = []
    for ack in (None, "local", "quorum", "all"):
        sd, instances = build(ack)
        messages = drive(sd, instances)
        if ack is None:
            lag, drained_lag, shipped, acks = "-", "-", 0, 0
        else:
            lag = sd.replication.pending_records()
            sd.replication.drain()
            drained_lag = sd.replication.pending_records()
            shipped = sd.stats.get(REPL_RECORDS_SHIPPED)
            acks = sd.stats.get(REPL_ACKS)
        rows.append((ack or "off", messages,
                     round(messages / N_COMMITS, 2),
                     lag, drained_lag, shipped, acks))
    return rows


def build_result():
    rows = run_experiment()
    result = ExperimentResult(
        "S3",
        "write-ack levels trade commit-point messages for replication "
        "lag: local lag is window-bounded, quorum/all lag is zero",
    )
    table = Table(["ack", "messages", "msgs/commit", "lag",
                   "lag after drain", "records shipped", "acks"])
    for row in rows:
        table.add_row(*row)
    result.add_table(
        f"{N_COMMITS} commits, {N_STANDBYS} standbys, "
        f"window={WINDOW_RECORDS}, batch={BATCH_RECORDS}", table)
    off, local, quorum, all_ = rows
    result.record("off_messages", off[1])
    result.record("local_lag", local[3])
    result.record("quorum_lag", quorum[3])
    result.record("all_lag", all_[3])
    ok = (
        off[1] < local[1] <= quorum[1] <= all_[1]
        and local[3] <= WINDOW_RECORDS and local[4] == 0
        and quorum[3] == 0 and all_[3] == 0
    )
    return result.conclude(ok)


def main(argv=None):
    return bench_main(build_result, argv)


if __name__ == "__main__":
    raise SystemExit(main())


def test_s3_repl(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_banner("S3", "log-shipping replication lag and commit cost")
    table = Table(["ack", "messages", "msgs/commit", "lag",
                   "lag after drain", "records shipped", "acks"])
    for row in rows:
        table.add_row(*row)
    table.show()
    off, local, quorum, all_ = rows
    # Replication off must not send replication traffic at all.
    assert off[5] == 0 and off[6] == 0
    # Asynchronous local: lag bounded by the window, drain empties it.
    assert local[3] <= WINDOW_RECORDS
    assert local[4] == 0
    # Synchronous levels: nothing pending after the last commit.
    assert quorum[3] == 0 and all_[3] == 0
    # Commit-point message cost is ordered by ack strictness.
    assert off[1] < local[1] <= quorum[1] <= all_[1]
