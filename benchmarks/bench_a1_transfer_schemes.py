"""A1 (ablation) — medium vs fast page-transfer schemes.

DESIGN.md calls out the transfer-scheme choice as the design decision
behind the paper's Section 3.1 assumption: the **medium** scheme buys
single-log restart recovery by paying a disk write per cross-system
transfer; the **fast** scheme (Section 5 / [MoNa91]) skips the write
but must redo from the merged local logs at restart.

The ablation drives the same hot-page ping-pong workload under both
schemes and reports the I/O trade plus the recovery cost, verifying
correctness under both.
"""

from repro import SDComplex
from repro.common.stats import (
    DISK_PAGE_WRITES,
    LOG_FORCES,
    message_kind_counter,
)
from repro.harness import Table, print_banner

ROUNDS = 40


def run(scheme):
    sd = SDComplex(n_data_pages=128, transfer_scheme=scheme)
    s1, s2 = sd.add_instance(1), sd.add_instance(2)
    txn = s1.begin()
    page_id = s1.allocate_page(txn)
    slot = s1.insert(txn, page_id, b"base")
    s1.commit(txn)
    for i in range(ROUNDS):
        instance = (s1, s2)[i % 2]
        txn = instance.begin()
        instance.update(txn, page_id, slot, b"r%03d" % i)
        instance.commit(txn)
    writes = sd.stats.get(DISK_PAGE_WRITES)
    transfers = sd.stats.get(message_kind_counter("page_transfer"))
    forces = sd.stats.get(LOG_FORCES)
    # Crash the current owner; recover; verify the last committed value.
    owner = sd.coherency.writer_of(page_id)
    sd.crash_instance(owner)
    summary = sd.restart_instance(owner)
    value = sd.disk.read_page(page_id).read_record(slot)
    assert value == b"r%03d" % (ROUNDS - 1), (scheme, value)
    return writes, transfers, forces, summary


def run_experiment():
    return {scheme: run(scheme) for scheme in ("medium", "fast")}


def test_a1_transfer_schemes(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_banner("A1", f"transfer schemes under {ROUNDS}-round hot-page "
                       "ping-pong")
    table = Table(["scheme", "disk writes", "page transfers",
                   "log forces", "restart redo records",
                   "restart redo source"])
    for scheme, (writes, transfers, forces, summary) in results.items():
        table.add_row(scheme, writes, transfers, forces,
                      summary.records_redone,
                      "local log only" if scheme == "medium"
                      else "merged local logs")
    table.show()
    medium = results["medium"]
    fast = results["fast"]
    assert fast[0] < medium[0], "fast must save the per-transfer writes"
    assert medium[0] >= ROUNDS - 2, "medium pays ~one write per transfer"
    # Fast restart replays the page's full multi-system history.
    assert fast[3].records_redone > medium[3].records_redone
