"""Shared helpers for the experiment benchmarks."""

from __future__ import annotations

from repro import SDComplex
from repro.sd.instance import DbmsInstance


def committed_row(engine, payload=b"v0"):
    """Create one committed record; returns (page_id, slot)."""
    txn = engine.begin()
    page_id = engine.allocate_page(txn)
    slot = engine.insert(txn, page_id, payload)
    engine.commit(txn)
    return page_id, slot


def build_sd(n_instances=2, instance_cls=DbmsInstance, **kwargs):
    complex_ = SDComplex(**kwargs)
    instances = [
        complex_.add_instance(i + 1, instance_cls=instance_cls)
        for i in range(n_instances)
    ]
    return complex_, instances


def section_1_5_scenario(instance_cls, filler_records=50):
    """The paper's Section 1.5 anomaly scenario; returns the value the
    disk holds after S1's restart (and both transactions' LSNs)."""
    complex_ = SDComplex(n_data_pages=128)
    s1 = complex_.add_instance(1, instance_cls=instance_cls,
                               lock_granularity="page")
    s2 = complex_.add_instance(2, instance_cls=instance_cls,
                               lock_granularity="page")
    txn = s2.begin()
    page_id = s2.allocate_page(txn)
    slot = s2.insert(txn, page_id, b"original")
    s2.commit(txn)
    s2.pool.write_page(page_id)
    s2.write_filler(filler_records)
    t2 = s2.begin()
    s2.update(t2, page_id, slot, b"t2-update")
    s2.commit(t2)
    t2_lsn = max(r.lsn for _, r in s2.log.scan() if r.page_id == page_id)
    t1 = s1.begin()
    s1.update(t1, page_id, slot, b"t1-committed")
    s1.commit(t1)
    t1_lsn = max(r.lsn for _, r in s1.log.scan() if r.page_id == page_id)
    complex_.crash_instance(1)
    complex_.restart_instance(1)
    survivor = complex_.disk.read_page(page_id).read_record(slot)
    return survivor, t1_lsn, t2_lsn
