"""Shared helpers for the experiment benchmarks."""

from __future__ import annotations

import argparse
import json
from typing import Callable, List, Optional

from repro import SDComplex
from repro.harness.experiment import ExperimentResult
from repro.sd.instance import DbmsInstance


def committed_row(engine, payload=b"v0"):
    """Create one committed record; returns (page_id, slot)."""
    txn = engine.begin()
    page_id = engine.allocate_page(txn)
    slot = engine.insert(txn, page_id, payload)
    engine.commit(txn)
    return page_id, slot


def build_sd(n_instances=2, instance_cls=DbmsInstance, **kwargs):
    complex_ = SDComplex(**kwargs)
    instances = [
        complex_.add_instance(i + 1, instance_cls=instance_cls)
        for i in range(n_instances)
    ]
    return complex_, instances


def write_bench_json(result: ExperimentResult,
                     path: Optional[str] = None) -> str:
    """Serialize an :class:`ExperimentResult` to ``BENCH_<id>.json``.

    The file round-trips through ``ExperimentResult.from_dict`` —
    ``python -m repro.trace --bench BENCH_E1.json`` regenerates the
    tables the run printed, without re-running it.
    """
    out = path if path is not None else f"BENCH_{result.experiment_id}.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return out


def bench_main(build_result: Callable[[], ExperimentResult],
               argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for a bench module.

    Runs the experiment (``build_result`` returns an
    :class:`ExperimentResult`), prints its rendering, and with
    ``--json [PATH]`` also writes ``BENCH_<id>.json``.  Returns a
    process exit status (1 when the claim does not hold).
    """
    parser = argparse.ArgumentParser(
        description="Run this experiment outside pytest-benchmark."
    )
    parser.add_argument(
        "--json", nargs="?", const="", default=None, metavar="PATH",
        help="also write the result as JSON (default: BENCH_<id>.json)",
    )
    args = parser.parse_args(argv)
    result = build_result()
    print(result.render())
    if args.json is not None:
        out = write_bench_json(result, args.json or None)
        print(f"wrote {out}")
    return 0 if result.holds in (True, None) else 1


def section_1_5_scenario(instance_cls, filler_records=50):
    """The paper's Section 1.5 anomaly scenario; returns the value the
    disk holds after S1's restart (and both transactions' LSNs)."""
    complex_ = SDComplex(n_data_pages=128)
    s1 = complex_.add_instance(1, instance_cls=instance_cls,
                               lock_granularity="page")
    s2 = complex_.add_instance(2, instance_cls=instance_cls,
                               lock_granularity="page")
    txn = s2.begin()
    page_id = s2.allocate_page(txn)
    slot = s2.insert(txn, page_id, b"original")
    s2.commit(txn)
    s2.pool.write_page(page_id)
    s2.write_filler(filler_records)
    t2 = s2.begin()
    s2.update(t2, page_id, slot, b"t2-update")
    s2.commit(t2)
    t2_lsn = max(r.lsn for _, r in s2.log.scan() if r.page_id == page_id)
    t1 = s1.begin()
    s1.update(t1, page_id, slot, b"t1-committed")
    s1.commit(t1)
    t1_lsn = max(r.lsn for _, r in s1.log.scan() if r.page_id == page_id)
    complex_.crash_instance(1)
    complex_.restart_instance(1)
    survivor = complex_.disk.read_page(page_id).read_record(slot)
    return survivor, t1_lsn, t2_lsn
