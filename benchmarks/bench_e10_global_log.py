"""E10 — single global log (VAXcluster) vs private local logs.

Paper claim (Section 4.1 and footnote 2): "a single log that could be
written into by any system directly leads to inefficient usage of
resources because of the need for global synchronization ...  every
write to the global log requires acquiring a global lock to serialize
the space allocation in the log file.  Acquiring a global lock involves
sending and receiving messages."

The bench commits the same per-system transaction load under both
designs and counts global-log lock acquisitions and their messages.
It also demonstrates the record reordering the VAX scheme permits
(tolerable only under force-before-commit + physical logging).
"""

from repro.baselines.global_log import GlobalLogComplex
from repro.common.stats import (
    DISK_PAGE_WRITES,
    GLOBAL_LOG_LOCK_MESSAGES,
    GLOBAL_LOG_LOCKS,
    LOG_FORCES,
    StatsRegistry,
)
from repro.harness import Table, print_banner

from _common import build_sd, committed_row


def run_global_log(n_systems, commits_per_system):
    complex_ = GlobalLogComplex(n_data_pages=256)
    systems = [complex_.add_system(i + 1) for i in range(n_systems)]
    for i, system in enumerate(systems):
        base = complex_.data_start + i * commits_per_system
        for j in range(commits_per_system):
            complex_.format_page(base + j)
    txn = 0
    for j in range(commits_per_system):
        for i, system in enumerate(systems):
            txn += 1
            page = complex_.data_start + i * commits_per_system + j
            system.insert(txn_id=txn, page_id=page, payload=b"p")
            system.commit(txn)
    return (complex_.stats.get(GLOBAL_LOG_LOCKS),
            complex_.stats.get(GLOBAL_LOG_LOCK_MESSAGES),
            complex_.stats.get(DISK_PAGE_WRITES))


def run_usn(n_systems, commits_per_system):
    sd, instances = build_sd(n_systems, n_data_pages=512)
    for instance in instances:
        for _ in range(commits_per_system):
            committed_row(instance)
    return (sd.stats.get(GLOBAL_LOG_LOCKS),
            sd.stats.get(LOG_FORCES),
            sd.stats.get(DISK_PAGE_WRITES))


def run_experiment():
    rows = []
    commits = 20
    for n_systems in (2, 4, 8):
        glocks, gmsgs, gwrites = run_global_log(n_systems, commits)
        ulocks, uforces, uwrites = run_usn(n_systems, commits)
        rows.append((n_systems, commits * n_systems,
                     glocks, gmsgs, gwrites,
                     ulocks, uforces, uwrites))
    return rows


def test_e10_global_log_cost(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_banner("E10", "global shared log vs private local logs")
    table = Table(["systems", "commits",
                   "global-log locks", "lock messages",
                   "page writes (force policy)",
                   "USN global locks", "USN log forces",
                   "USN page writes (no-force)"])
    for row in rows:
        table.add_row(*row)
    table.show()
    for (n_systems, commits, glocks, gmsgs, gwrites,
         ulocks, uforces, uwrites) in rows:
        assert glocks == commits, "one global lock per commit force"
        assert gmsgs == 2 * commits
        assert ulocks == 0, "private local logs take no global lock"
        assert gwrites >= commits, "force policy writes every dirty page"
        assert uwrites < gwrites, "no-force writes less than force"
