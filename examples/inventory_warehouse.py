#!/usr/bin/env python3
"""A small inventory application on the full stack.

Two warehouse sites run DBMS instances over shared disks.  Inventory
rows live in a segmented table (typed via RowCodec); a B-tree indexes
SKU -> row id.  The demo exercises the whole reproduction as an
application substrate: cross-site updates, an index-backed lookup path,
a site crash with staged restart (orders keep flowing during recovery),
a season-end mass delete of the shipments staging table, and a final
invariant verification.

Run:  python examples/inventory_warehouse.py
"""

import struct

from repro import BTree, SDComplex, SegmentedTable
from repro.access.rows import RowCodec
from repro.common.stats import DISK_PAGE_READS
from repro.harness import verify_sd_complex

ROW = RowCodec([("sku", "s"), ("qty", "i"), ("site", "i")])
RID = struct.Struct("<IH")   # (page_id, slot) packed for index payloads


def put_rid(row_id):
    return RID.pack(*row_id)


def get_rid(payload):
    return tuple(RID.unpack(payload))


def main() -> None:
    sd = SDComplex()
    east = sd.add_instance(1)
    west = sd.add_instance(2)

    inventory = SegmentedTable("inventory")
    txn = east.begin()
    index = BTree.create(east, txn, fanout=16)
    skus = [f"SKU-{i:04d}" for i in range(60)]
    for i, sku in enumerate(skus):
        rid = inventory.insert_row(east, txn, ROW.pack(sku, 100, 1))
        index.insert(east, txn, sku.encode(), put_rid(rid))
    east.commit(txn)
    print(f"{len(skus)} SKUs loaded at the east site, indexed by B-tree")

    def pick(site, sku, qty):
        """One order: index lookup, decrement, commit."""
        txn = site.begin()
        rid = get_rid(index.search(site, txn, sku.encode()))
        name, on_hand, _ = ROW.unpack(inventory.read_row(site, txn, rid))
        inventory.update_row(site, txn, rid,
                             ROW.pack(name, on_hand - qty, site.system_id))
        site.commit(txn)
        return on_hand - qty

    # Orders arrive at both sites against overlapping SKUs.
    for i in range(40):
        site = (east, west)[i % 2]
        pick(site, skus[i % 10], 2)
    print("40 orders processed from both sites on 10 hot SKUs")

    # The west site fails mid-business; staged restart keeps the data
    # available to the east site as soon as redo completes.
    txn = west.begin()
    rid = get_rid(index.search(west, txn, skus[0].encode()))
    inventory.update_row(west, txn, rid, ROW.pack(skus[0], 1, 2))
    # ... crash before commit: this update must roll back.
    sd.crash_instance(2)
    staged = sd.begin_staged_restart(2)
    staged.run_redo()
    during = pick(east, skus[5], 1)   # east keeps selling mid-recovery
    print(f"west crashed; east sold one {skus[5]} during the undo window "
          f"(now {during} on hand)")
    staged.run_undo()

    txn = east.begin()
    rid = get_rid(index.search(east, txn, skus[0].encode()))
    _, qty, _ = ROW.unpack(inventory.read_row(east, txn, rid))
    east.commit(txn)
    assert qty != 1, "the uncommitted west update must be gone"
    print(f"west recovered; {skus[0]} stock is {qty} "
          f"(uncommitted update rolled back)")

    # Season end: drop the whole shipments staging table the DB2 way.
    shipments = SegmentedTable("shipments", segment_pages=8)
    txn = east.begin()
    for i in range(120):
        shipments.insert_row(east, txn, ROW.pack(f"SHP-{i}", i, 1))
    east.commit(txn)
    east.pool.flush_all()
    reads_before = sd.stats.get(DISK_PAGE_READS)
    txn = east.begin()
    records = shipments.mass_delete(east, txn)
    east.commit(txn)
    print(f"season-end mass delete: {records} log record(s), "
          f"{sd.stats.get(DISK_PAGE_READS) - reads_before} page reads")

    for instance in (east, west):
        instance.pool.flush_all()
    report = verify_sd_complex(sd, quiesced=True)
    print("invariant verification:", report.summary())
    assert report.ok


if __name__ == "__main__":
    main()
