"""Fault injection and crash-point torture, end to end.

Walks the three layers of ``repro.faults``:

1. aim a one-shot fault with the :class:`FaultPlan` DSL and watch the
   instance degrade to read-only when its log device fails;
2. tear a disk write in half and repair the page with media recovery;
3. run the smoke torture campaign (the same thing
   ``python -m repro.chaos --smoke`` does) and print its table.

Run:  PYTHONPATH=src python examples/chaos_campaign.py
"""

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.common.errors import (            # noqa: E402
    DegradedModeError,
    MediaError,
    TornPageError,
)
from repro.faults import points as fp        # noqa: E402
from repro.faults.campaign import run_campaign  # noqa: E402
from repro.faults.injector import FaultInjector, FaultPlan  # noqa: E402
from repro.recovery.media import recover_page_from_media  # noqa: E402
from repro.sd.complex import SDComplex       # noqa: E402


def degraded_mode_demo():
    print("== 1. log-device failure -> read-only degraded mode ==")
    injector = FaultInjector(FaultPlan(seed=0))
    sd = SDComplex(n_data_pages=64, injector=injector)
    s1 = sd.add_instance(1)

    txn = s1.begin()
    page_id = s1.allocate_page(txn)
    slot = s1.insert(txn, page_id, b"safe")
    other_slot = s1.insert(txn, page_id, b"other")
    s1.commit(txn)

    # Arm a one-shot failure at the *next* log force: the DSL counts
    # hits per point, so "on_hit(current + 1)" means "the next one".
    injector.plan.at(fp.LOG_FORCE).on_hit(
        injector.hit_count(fp.LOG_FORCE) + 1).fail()

    doomed = s1.begin()
    s1.update(doomed, page_id, slot, b"doomed")
    try:
        s1.commit(doomed)
    except DegradedModeError as exc:
        print(f"  commit refused: {exc}")
    print(f"  instance degraded={s1.degraded}; reads still work: "
          f"{s1.read(s1.begin(), page_id, other_slot)!r}")

    sd.crash_instance(1)          # "replace the log device"
    sd.restart_instance(1)
    value = s1.read(s1.begin(), page_id, slot)
    print(f"  after restart the unacknowledged commit rolled back: "
          f"{value!r}\n")
    return sd


def torn_write_demo():
    print("== 2. torn write -> checksum mismatch -> media recovery ==")
    injector = FaultInjector(FaultPlan(seed=0))
    sd = SDComplex(n_data_pages=64, injector=injector)
    s1 = sd.add_instance(1)
    txn = s1.begin()
    page_id = s1.allocate_page(txn)
    slot = s1.insert(txn, page_id, b"precious")
    s1.commit(txn)

    injector.plan.at(fp.DISK_WRITE).on_hit(
        injector.hit_count(fp.DISK_WRITE) + 1).torn()
    try:
        s1.pool.write_page(page_id)
    except TornPageError as exc:
        print(f"  write torn: {exc}")
    try:
        sd.disk.read_page(page_id)
    except MediaError as exc:
        print(f"  read detects it: {exc}")
    recover_page_from_media(page_id, None, sd.local_logs(), disk=sd.disk)
    print(f"  rebuilt from merged logs: "
          f"{sd.disk.read_page(page_id).read_record(slot)!r}\n")


def campaign_demo():
    print("== 3. the smoke torture campaign (python -m repro.chaos) ==")
    for arch in ("sd", "cs"):
        report = run_campaign(arch, seed=0, smoke=True)
        print(report.table())
        print()
    return 0


if __name__ == "__main__":
    degraded_mode_demo()
    torn_write_demo()
    raise SystemExit(campaign_demo())
