#!/usr/bin/env python3
"""The paper's core idea, isolated: clockless monotonic LSNs.

Part 1 replays the Section 1.5 example under the broken pre-paper
scheme (LSN = local log address) and watches a committed update vanish
at restart; then replays it under the USN scheme and watches it
survive.

Part 2 shows the Lamport Local_Max_LSN exchange (Section 3.5) keeping
LSNs close together across systems so the Commit_LSN check keeps
succeeding, even when one system logs 100x more than the other.

Run:  python examples/clockless_lsn_demo.py
"""

from repro import SDComplex
from repro.baselines.naive import NaiveDbmsInstance
from repro.common.stats import COMMIT_LSN_HITS, COMMIT_LSN_MISSES
from repro.sd.instance import DbmsInstance


def section_1_5_scenario(instance_cls, label: str) -> bytes:
    sd = SDComplex(n_data_pages=128)
    s1 = sd.add_instance(1, instance_cls=instance_cls,
                         lock_granularity="page")
    s2 = sd.add_instance(2, instance_cls=instance_cls,
                         lock_granularity="page")

    txn = s2.begin()
    page_id = s2.allocate_page(txn)
    slot = s2.insert(txn, page_id, b"original")
    s2.commit(txn)
    s2.pool.write_page(page_id)

    s2.write_filler(50)            # S2's log is long; S1's is short

    t2 = s2.begin()                # T2 updates P1 in S2 and commits
    s2.update(t2, page_id, slot, b"t2-update")
    s2.commit(t2)
    t2_lsn = max(r.lsn for _, r in s2.log.scan() if r.page_id == page_id)

    t1 = s1.begin()                # T1 updates P1 in S1 and commits
    s1.update(t1, page_id, slot, b"t1-committed")
    s1.commit(t1)
    t1_lsn = max(r.lsn for _, r in s1.log.scan() if r.page_id == page_id)

    sd.crash_instance(1)           # P1 not written to disk by S1
    sd.restart_instance(1)
    survivor = sd.disk.read_page(page_id).read_record(slot)
    print(f"  [{label}] T2's LSN={t2_lsn}, T1's LSN={t1_lsn} "
          f"-> after restart the page holds {survivor!r}")
    return survivor


def commit_lsn_with_and_without_exchange() -> None:
    for piggyback, label in ((False, "no exchange"),
                             (True, "Lamport exchange")):
        sd = SDComplex(n_data_pages=128, piggyback_enabled=piggyback)
        busy = sd.add_instance(1)
        quiet = sd.add_instance(2)
        txn = busy.begin()
        page_id = busy.allocate_page(txn)
        slot = busy.insert(txn, page_id, b"shared")
        busy.commit(txn)
        # The busy system logs heavily; the quiet one barely at all.
        for _ in range(20):
            t = busy.begin()
            busy.update(t, page_id, slot, b"work")
            busy.commit(t)
        if piggyback:
            sd.broadcast_max_lsns()
        # The quiet system reads with the Commit_LSN optimization.
        reader = quiet.begin()
        for _ in range(10):
            quiet.read(reader, page_id, slot, use_commit_lsn=True)
        quiet.commit(reader)
        hits = sd.stats.get(COMMIT_LSN_HITS)
        misses = sd.stats.get(COMMIT_LSN_MISSES)
        print(f"  [{label:16s}] Commit_LSN hits={hits} misses={misses}")


def main() -> None:
    print("Part 1 — the Section 1.5 lost-update anomaly:")
    lost = section_1_5_scenario(NaiveDbmsInstance, "naive LSN=log address")
    kept = section_1_5_scenario(DbmsInstance, "USN scheme (this paper)")
    assert lost == b"t2-update", "naive scheme silently loses T1!"
    assert kept == b"t1-committed"
    print("  -> naive scheme violated durability; USN scheme did not.\n")

    print("Part 2 — Commit_LSN vs LSN-rate skew (Section 3.5):")
    commit_lsn_with_and_without_exchange()
    print("  -> with the exchange, the quiet system's LSNs catch up and "
          "the cheap check keeps succeeding.")


if __name__ == "__main__":
    main()
