#!/usr/bin/env python3
"""An OODBMS-style client-server session (the paper's CS motivation).

Two CAD workstations (clients) check design objects out of an object
server, mutate them in their local caches — assigning LSNs locally,
with no server round trip per log record — and ship log records lazily.
One workstation crashes mid-edit; the server recovers it from the
single log using the client identity carried in every record, undoing
the in-flight edit and preserving everything committed.

Run:  python examples/cs_object_store.py
"""

import json

from repro import CsSystem


def put_object(client, txn, page_id, obj) -> int:
    return client.insert(txn, page_id, json.dumps(obj).encode())


def get_object(client, txn, page_id, slot):
    return json.loads(client.read(txn, page_id, slot).decode())


def set_object(client, txn, page_id, slot, obj) -> None:
    client.update(txn, page_id, slot, json.dumps(obj).encode())


def main() -> None:
    cs = CsSystem()
    alice = cs.add_client(1)
    bob = cs.add_client(2)

    # Alice creates a small assembly of design objects.
    txn = alice.begin()
    page_id = alice.allocate_page(txn)
    bolt = put_object(alice, txn, page_id,
                      {"kind": "bolt", "d_mm": 6, "rev": 1})
    plate = put_object(alice, txn, page_id,
                       {"kind": "plate", "w_mm": 40, "rev": 1})
    alice.commit(txn)
    print(f"alice committed 2 objects on page {page_id} "
          f"(log records buffered locally, shipped at commit)")

    # Bob checks the bolt out (the server recalls the dirty page from
    # Alice's cache first) and revises it.
    txn = bob.begin()
    obj = get_object(bob, txn, page_id, bolt)
    obj["d_mm"], obj["rev"] = 8, 2
    set_object(bob, txn, page_id, bolt, obj)
    bob.commit(txn)
    print("bob committed bolt rev 2; page owner is client",
          cs.server._writer.get(page_id))

    # Bob starts another edit but his workstation dies mid-way, with
    # the dirty page already recalled to the server (uncommitted!).
    txn = bob.begin()
    obj = get_object(bob, txn, page_id, bolt)
    obj["d_mm"], obj["rev"] = 99, 3
    set_object(bob, txn, page_id, bolt, obj)
    bob.send_page_back(page_id)          # ships records + dirty page
    print("bob's workstation crashes with rev 3 uncommitted ...")
    cs.crash_client(2)

    summary = cs.recover_client(2)
    print("server recovered bob:", summary)

    # Alice sees rev 2 — the uncommitted rev 3 was undone by the server.
    txn = alice.begin()
    obj = get_object(alice, txn, page_id, bolt)
    alice.commit(txn)
    print("alice reads bolt:", obj)
    assert obj["rev"] == 2 and obj["d_mm"] == 8

    # Server failure is handled like an SD-complex failure.
    cs.quiesce()
    cs.crash_server()
    cs.restart_server()
    txn = alice.begin()
    assert get_object(alice, txn, page_id, plate)["kind"] == "plate"
    alice.commit(txn)
    print("server crash + restart: all committed objects intact.")

    # The single server log interleaves client streams; per-client LSNs
    # are increasing, which is all recovery needs (Section 3.2.2).
    lsns = {}
    for _, record in cs.server.log.scan():
        if record.system_id and record.lsn:
            lsns.setdefault(record.system_id, []).append(record.lsn)
    for client_id, seq in sorted(lsns.items()):
        print(f"client {client_id} LSN stream (first 8): {seq[:8]}")


if __name__ == "__main__":
    main()
