#!/usr/bin/env python3
"""A small bank running on a shared-disks complex.

Three DBMS instances process transfers between accounts stored on
shared pages.  Mid-workload, one instance fails; its in-flight
transfers roll back at restart, completed ones survive, and the total
balance is conserved throughout — the textbook durability/atomicity
demonstration, here in the multi-system SD setting where LSNs must be
coordinated across private logs.

Run:  python examples/sd_bank.py
"""

import random
import struct

from repro import SDComplex
from repro.common.errors import (
    DeadlockError,
    LockWouldBlock,
    ProtocolError,
    ReproError,
)

N_ACCOUNTS = 24
INITIAL_BALANCE = 1000
N_TRANSFERS = 120


def encode(balance: int) -> bytes:
    return struct.pack("<q", balance)


def decode(payload: bytes) -> int:
    return struct.unpack("<q", payload)[0]


def total_on_disk(sd, accounts) -> int:
    return sum(
        decode(sd.disk.read_page(page_id).read_record(slot))
        for page_id, slot in accounts
    )


def main() -> None:
    rng = random.Random(2026)
    sd = SDComplex()
    instances = [sd.add_instance(i) for i in (1, 2, 3)]

    # Instance 1 sets up the accounts (4 per page).
    setup = instances[0].begin()
    accounts = []
    for i in range(N_ACCOUNTS):
        if i % 4 == 0:
            page_id = instances[0].allocate_page(setup)
        slot = instances[0].insert(setup, page_id, encode(INITIAL_BALANCE))
        accounts.append((page_id, slot))
    instances[0].commit(setup)
    print(f"{N_ACCOUNTS} accounts @ {INITIAL_BALANCE} each")

    def transfer(instance, src, dst, amount) -> bool:
        """One transfer transaction; returns True if committed."""
        txn = instance.begin()
        try:
            src_raw = instance.read(txn, *src)
            dst_raw = instance.read(txn, *dst)
            instance.update(txn, src[0], src[1],
                            encode(decode(src_raw) - amount))
            instance.update(txn, dst[0], dst[1],
                            encode(decode(dst_raw) + amount))
            instance.commit(txn)
            return True
        except (LockWouldBlock, DeadlockError, ProtocolError):
            try:
                instance.rollback(txn)
            except ReproError:
                pass  # txn may already be gone after the primary failure
            return False

    committed = 0
    crashed_at = None
    for i in range(N_TRANSFERS):
        instance = instances[i % 3]
        if instance.crashed:
            continue
        src, dst = rng.sample(accounts, 2)
        if transfer(instance, src, dst, rng.randrange(1, 50)):
            committed += 1
        if i == N_TRANSFERS // 2 and crashed_at is None:
            print(f"!! crashing system 2 after {committed} transfers")
            sd.crash_instance(2)
            crashed_at = i

    print(f"{committed} transfers committed; recovering system 2 ...")
    summary = sd.restart_instance(2)
    print("restart:", summary)

    # Quiesce and audit the books.
    for instance in instances:
        instance.pool.flush_all()
    total = total_on_disk(sd, accounts)
    expected = N_ACCOUNTS * INITIAL_BALANCE
    print(f"total balance on disk: {total} (expected {expected})")
    assert total == expected, "money must be conserved"

    # One more crash of everything, for good measure.
    sd.crash_complex()
    sd.restart_complex()
    assert total_on_disk(sd, accounts) == expected
    print("complex-wide failure recovered; books still balance.")


if __name__ == "__main__":
    main()
