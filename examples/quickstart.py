#!/usr/bin/env python3
"""Quickstart: a two-system shared-disks complex.

Creates the complex of Figure 1 (two DBMS instances, private logs and
buffer pools, one shared disk), runs transactions on both systems
against the same page, crashes one system, and shows that restart
recovery — driven entirely by page_LSN comparisons under the paper's
USN scheme — preserves every committed update.

Run:  python examples/quickstart.py
"""

from repro import PageType, SDComplex


def main() -> None:
    sd = SDComplex()
    s1 = sd.add_instance(1)
    s2 = sd.add_instance(2)
    print("complex:", sd)
    print("S1 clock:", s1.clock.now(), "| S2 clock:", s2.clock.now(),
          "(unsynchronized on purpose)")

    # System 1 creates a page and inserts a record.
    txn = s1.begin()
    page_id = s1.allocate_page(txn, PageType.DATA)
    slot = s1.insert(txn, page_id, b"hello")
    s1.commit(txn)
    print(f"S1 committed 'hello' on page {page_id} slot {slot}")

    # System 2 updates the same record: the coherency layer forces the
    # page to disk and transfers it (the medium page-transfer scheme).
    txn2 = s2.begin()
    s2.update(txn2, page_id, slot, b"world")
    s2.commit(txn2)
    print(f"S2 committed 'world'; page now owned by system "
          f"{sd.coherency.writer_of(page_id)}")

    # The update lives only in S2's buffer pool (no-force policy)...
    print("page_LSN on disk:", sd.disk.page_lsn_on_disk(page_id))

    # ...so crash S2 before it writes the page.
    sd.crash_instance(2)
    summary = sd.restart_instance(2)
    print("restart summary:", summary)

    value = sd.disk.read_page(page_id).read_record(slot)
    print("value after recovery:", value)
    assert value == b"world", "committed update must survive"

    print("\nLSNs assigned (S1 then S2) for this page:")
    for instance in (s1, s2):
        lsns = [r.lsn for _, r in instance.log.scan()
                if r.page_id == page_id]
        print(f"  system {instance.system_id}: {lsns}")
    print("strictly increasing across systems — no clocks involved.")


if __name__ == "__main__":
    main()
