#!/usr/bin/env python3
"""Index churn across systems: the Section 3.4 story, end to end.

A B-tree index lives on the shared disks.  Two DBMS instances take
turns inserting and deleting key ranges; leaves empty out and are
deallocated, page splits reallocate those pages — without reading the
dead versions from disk — and the USN rule keeps every reallocated
page's LSN sequence increasing across systems.  A crash in the middle
proves the whole structure recovers.

Also shows the mass-delete fast path on a segmented table: dropping a
30-page table writes one space-map log record and zero page reads.

Run:  python examples/index_churn.py
"""

from repro import BTree, SDComplex
from repro.common.stats import DISK_PAGE_READS, PAGE_READS_AVOIDED
from repro.access.table import SegmentedTable


def key(i):
    return b"key%05d" % i


def main() -> None:
    sd = SDComplex()
    s1 = sd.add_instance(1)
    s2 = sd.add_instance(2)

    txn = s1.begin()
    tree = BTree.create(s1, txn, fanout=8)
    s1.commit(txn)
    print(f"B-tree created, root page {tree.root_page_id}")

    # Phase 1: both systems load the index.
    for i in range(120):
        instance = (s1, s2)[i % 2]
        txn = instance.begin()
        tree.insert(instance, txn, key(i), b"sys%d" % instance.system_id)
        instance.commit(txn)
    print(f"120 keys loaded from both systems; depth={tree.depth(s1)}")

    # Phase 2: delete a big range — leaves drain and get deallocated.
    txn = s2.begin()
    for i in range(20, 110):
        tree.delete(s2, txn, key(i))
    s2.commit(txn)
    avoided_before = sd.stats.get(PAGE_READS_AVOIDED)

    # Phase 3: refill — splits reallocate the freed pages, read-free.
    for i in range(200, 290):
        instance = (s1, s2)[i % 2]
        txn = instance.begin()
        tree.insert(instance, txn, key(i), b"refill")
        instance.commit(txn)
    avoided = sd.stats.get(PAGE_READS_AVOIDED) - avoided_before
    print(f"refill reallocated pages with {avoided} disk reads avoided")

    # Phase 4: crash the system that owns most index pages; recover.
    sd.crash_instance(2)
    summary = sd.restart_instance(2)
    print("crash + restart:", summary)
    reopened = BTree(tree.root_page_id, fanout=8)
    txn = s1.begin()
    keys = [k for k, _ in reopened.scan(s1, txn)]
    s1.commit(txn)
    expected = sorted([key(i) for i in range(20)] +
                      [key(i) for i in range(110, 120)] +
                      [key(i) for i in range(200, 290)])
    assert keys == expected, (len(keys), len(expected))
    print(f"index intact after recovery: {len(keys)} keys in order")

    # Bonus: the mass-delete fast path on a segmented table.
    table = SegmentedTable("staging", segment_pages=8)
    txn = s1.begin()
    for i in range(200):
        table.insert_row(s1, txn, b"staging row %03d" % i)
    s1.commit(txn)
    s1.pool.flush_all()
    reads_before = sd.stats.get(DISK_PAGE_READS)
    txn = s1.begin()
    records = table.mass_delete(s1, txn)
    s1.commit(txn)
    reads = sd.stats.get(DISK_PAGE_READS) - reads_before
    print(f"mass delete of the staging table: {records} log record(s), "
          f"{reads} data-page reads")
    assert reads == 0


if __name__ == "__main__":
    main()
