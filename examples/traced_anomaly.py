"""The Section 1.5 lost-update anomaly, watched through the tracer.

Runs the E1 scenario twice — once under the naive baseline
(``LSN = log address``) and once under USN LSN assignment — with the
``repro.obs`` tracer attached, then lets the *trace-driven* invariant
checker tell the two apart.  Nothing here inspects the database: the
anomaly is visible in the event stream alone, as a page_LSN stamp that
fails to advance.

Run with:  PYTHONPATH=src python examples/traced_anomaly.py
"""

from repro.obs.capture import capture_e1
from repro.obs.invariants import check_trace, render_violations
from repro.obs.timeline import render_timeline


def show(scheme: str) -> int:
    tracer, summary = capture_e1(scheme)
    events = tracer.events()
    print(f"=== scheme={scheme}: {len(events)} events, "
          f"survivor={summary['survivor']!r} ===")
    print()
    # The interesting part of the timeline is the tail: the crashed
    # instance's restart redo pass and the final page stamps.
    print(render_timeline(events[-18:], column_width=34))
    print()
    violations = check_trace(events)
    print(render_violations(violations))
    print()
    return len(violations)


def main() -> None:
    # Under USN, system 2's log manager assigns
    # LSN = max(page_LSN, Local_Max_LSN) + 1, so its update to the page
    # stamps a *larger* LSN than system 1's committed update -- restart
    # redo screening then does the right thing.
    assert show("usn") == 0

    # Under the naive scheme each system's LSNs are its own log
    # addresses.  System 1 has written almost nothing, so its committed
    # update gets LSN=1 -- stamped over a page already carrying a huge
    # LSN from system 2's long log.  The checker flags that single
    # non-advancing stamp; at restart the committed update is lost.
    assert show("naive") > 0

    print("naive baseline: committed update LOST, flagged from the trace")
    print("USN scheme:     committed update survives, trace checks clean")


if __name__ == "__main__":
    main()
