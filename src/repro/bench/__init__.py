"""``python -m repro.bench`` — the parallel benchmark-suite runner.

Discovers ``benchmarks/bench_*.py``, fans the benches out across a
``multiprocessing`` pool, and aggregates per-bench wall-clock plus
counters into ``BENCH_SUITE.json`` — the repo's perf trajectory file.
Every bench still runs in its *own* single subprocess interpreter, so
the deterministic, byte-identical-trace property of each bench (PR 2)
is untouched; only the suite-level scheduling is parallel.

Two execution modes per bench, picked automatically:

* **standalone** — the module defines ``build_result`` (the
  ``bench_main`` contract): run ``python bench_x.py --json TMP`` and
  harvest the :class:`~repro.harness.experiment.ExperimentResult`'s
  ``holds`` verdict and counter snapshot;
* **pytest** — run ``python -m pytest bench_x.py`` and harvest the
  outcome tallies (passed/failed/skipped) as the bench's counters.

``--compare BASELINE.json`` (after a run) or ``--compare-only A B``
(pure reader, no benches run) flags regressions: a bench that
disappeared, started failing, or got slower than the tolerance allows.
The compare reader is also the round-trip check ``tools/check.sh``
uses on the smoke suite.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.clock import wall_seconds

#: Schema version of BENCH_SUITE.json (bump on incompatible change).
SCHEMA_VERSION = 1

#: Trimmed suite for the pre-PR smoke gate: one standalone bench (E1,
#: exercising the JSON harvest path), one fast pytest bench, the micro
#: bench whose fast-lane speedup assertions gate PR 3's lanes, the
#: S2 TPS headline whose slab/bulk-driver gates cover PR 8's, the
#: S3 replication bench whose lag/ack gates cover PR 9's, and the
#: S4 instant-restart bench whose TTFT gate covers PR 10's.
SMOKE_BENCHES = ("bench_e1_anomaly", "bench_a3_group_commit",
                 "bench_micro", "bench_s2_tps", "bench_s3_repl",
                 "bench_s4_instant")

_SUMMARY_RE = re.compile(r"(\d+) (passed|failed|skipped|error|errors)")


def default_bench_root() -> Path:
    """The repo's ``benchmarks/`` directory (next to ``src/``)."""
    return Path(__file__).resolve().parents[3] / "benchmarks"


def discover(root: Path, only: Optional[Sequence[str]] = None) -> List[Path]:
    """All ``bench_*.py`` under ``root``, sorted; optionally filtered
    to the stem names in ``only`` (order follows ``only``)."""
    found = {path.stem: path for path in sorted(root.glob("bench_*.py"))}
    if only is None:
        return list(found.values())
    missing = [name for name in only if name not in found]
    if missing:
        raise FileNotFoundError(
            f"bench module(s) not found under {root}: {', '.join(missing)}"
        )
    return [found[name] for name in only]


def _src_dir() -> str:
    """Directory to put on PYTHONPATH so subprocesses import repro."""
    return str(Path(__file__).resolve().parents[2])


def _sub_env() -> Dict[str, str]:
    env = dict(os.environ)
    src = _src_dir()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _parse_pytest_summary(output: str) -> Dict[str, int]:
    """Outcome tallies from a ``pytest -q`` tail line."""
    tallies: Dict[str, int] = {}
    for count, outcome in _SUMMARY_RE.findall(output):
        key = "error" if outcome.startswith("error") else outcome
        tallies[key] = tallies.get(key, 0) + int(count)
    return tallies


def run_one(spec: Tuple[str, str]) -> Dict[str, Any]:
    """Pool worker: run one bench in a fresh subprocess and report.

    ``spec`` is ``(name, path)``; the worker itself only schedules and
    times — the bench's simulation work happens in the child
    interpreter, preserving single-process determinism per bench.
    """
    name, path = spec
    source = Path(path).read_text(encoding="utf-8")
    standalone = "def build_result" in source
    env = _sub_env()
    entry: Dict[str, Any] = {"name": name, "mode": "pytest", "counters": {}}
    started = wall_seconds()
    if standalone:
        entry["mode"] = "standalone"
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            out_json = os.path.join(tmp, f"{name}.json")
            proc = subprocess.run(
                [sys.executable, path, "--json", out_json],
                env=env, capture_output=True, text=True,
            )
            entry["returncode"] = proc.returncode
            entry["ok"] = proc.returncode == 0
            if os.path.exists(out_json):
                with open(out_json, "r", encoding="utf-8") as handle:
                    result = json.load(handle)
                entry["holds"] = result.get("holds")
                entry["counters"] = {
                    key: value
                    for key, value in result.get("counters", {}).items()
                    if isinstance(value, int)
                }
    else:
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", path, "-q",
             "-p", "no:cacheprovider"],
            env=env, capture_output=True, text=True,
        )
        entry["returncode"] = proc.returncode
        entry["ok"] = proc.returncode == 0
        entry["counters"] = _parse_pytest_summary(proc.stdout)
    entry["seconds"] = round(wall_seconds() - started, 4)
    if not entry["ok"]:
        tail = (proc.stdout + proc.stderr).strip().splitlines()[-12:]
        entry["detail"] = "\n".join(tail)
    return entry


def run_suite(
    paths: Sequence[Path],
    jobs: Optional[int] = None,
) -> Dict[str, Any]:
    """Run every bench in ``paths`` across a multiprocessing pool.

    Returns the suite document (the ``BENCH_SUITE.json`` payload).
    """
    specs = [(path.stem, str(path)) for path in paths]
    if jobs is None:
        jobs = min(len(specs), os.cpu_count() or 2) or 1
    jobs = max(1, min(jobs, len(specs) or 1))
    if jobs == 1 or len(specs) == 1:
        entries = [run_one(spec) for spec in specs]
    else:
        with multiprocessing.Pool(processes=jobs) as pool:
            entries = pool.map(run_one, specs)
    benches = {
        entry.pop("name"): entry
        for entry in sorted(entries, key=lambda e: str(e["name"]))
    }
    return {
        "schema": SCHEMA_VERSION,
        "jobs": jobs,
        "total_seconds": round(
            sum(b["seconds"] for b in benches.values()), 4
        ),
        "benches": benches,
    }


def write_suite(suite: Dict[str, Any], path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(suite, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_suite(path: str) -> Dict[str, Any]:
    """Read and validate a BENCH_SUITE.json (the --compare reader)."""
    with open(path, "r", encoding="utf-8") as handle:
        suite = json.load(handle)
    if not isinstance(suite, dict) or "benches" not in suite:
        raise ValueError(f"{path}: not a BENCH_SUITE document")
    if suite.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {suite.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    for name, entry in suite["benches"].items():
        if "seconds" not in entry or "ok" not in entry:
            raise ValueError(f"{path}: bench {name!r} missing seconds/ok")
    return suite


def compare(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: float = 0.5,
    abs_slack: float = 0.25,
) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = clean).

    A bench regresses when it disappeared, stopped passing, or its
    wall-clock exceeded ``baseline * (1 + tolerance)`` by more than
    ``abs_slack`` seconds (the absolute slack keeps sub-second benches
    from flagging on scheduler noise).
    """
    problems: List[str] = []
    base_benches = baseline["benches"]
    cur_benches = current["benches"]
    for name, base in sorted(base_benches.items()):
        cur = cur_benches.get(name)
        if cur is None:
            problems.append(f"{name}: present in baseline, missing now")
            continue
        if base.get("ok") and not cur.get("ok"):
            problems.append(f"{name}: passed in baseline, fails now")
        if base.get("holds") and cur.get("holds") is False:
            problems.append(f"{name}: claim held in baseline, fails now")
        allowed = base["seconds"] * (1.0 + tolerance) + abs_slack
        if cur["seconds"] > allowed:
            problems.append(
                f"{name}: {cur['seconds']:.3f}s vs baseline "
                f"{base['seconds']:.3f}s (allowed {allowed:.3f}s)"
            )
    return problems


def render_suite(suite: Dict[str, Any]) -> str:
    """Human-readable table of a suite document."""
    rows = []
    width = max((len(name) for name in suite["benches"]), default=4)
    for name, entry in sorted(suite["benches"].items()):
        status = "ok" if entry.get("ok") else "FAIL"
        holds = entry.get("holds")
        if holds is True:
            status += " holds"
        elif holds is False:
            status = "FAIL claim"
        rows.append(
            f"  {name.ljust(width)}  {entry['seconds']:8.3f}s  "
            f"[{entry['mode']}] {status}"
        )
    header = (
        f"bench suite: {len(suite['benches'])} benches, "
        f"{suite['jobs']} parallel jobs, "
        f"{suite['total_seconds']:.2f}s total bench time"
    )
    return "\n".join([header] + rows)


def render_markdown(
    current: Dict[str, Any],
    baseline: Optional[Dict[str, Any]] = None,
    problems: Optional[List[str]] = None,
) -> str:
    """GitHub-flavoured markdown summary of a suite run.

    With a ``baseline``, each row carries the baseline wall-clock and
    the relative delta — the table CI appends to the job summary so a
    nightly regression is readable without opening the raw logs.
    """
    lines = [
        "### Bench suite",
        "",
        f"{len(current['benches'])} benches, {current['jobs']} parallel "
        f"jobs, {current['total_seconds']:.2f}s total bench time",
        "",
    ]
    if baseline is not None:
        lines += ["| bench | baseline (s) | current (s) | delta | status |",
                  "|---|---:|---:|---:|---|"]
    else:
        lines += ["| bench | seconds | status |", "|---|---:|---|"]
    for name, entry in sorted(current["benches"].items()):
        status = "ok" if entry.get("ok") else "FAIL"
        holds = entry.get("holds")
        if holds is True:
            status += " holds"
        elif holds is False:
            status = "FAIL claim"
        if baseline is None:
            lines.append(f"| {name} | {entry['seconds']:.3f} | {status} |")
            continue
        base = baseline["benches"].get(name)
        if base is None:
            base_s, delta = "-", "new"
        else:
            base_s = f"{base['seconds']:.3f}"
            pct = ((entry["seconds"] - base["seconds"])
                   / max(base["seconds"], 1e-9) * 100.0)
            delta = f"{pct:+.1f}%"
        lines.append(f"| {name} | {base_s} | {entry['seconds']:.3f} | "
                     f"{delta} | {status} |")
    if baseline is not None:
        for name in sorted(set(baseline["benches"])
                           - set(current["benches"])):
            base = baseline["benches"][name]
            lines.append(f"| {name} | {base['seconds']:.3f} | - | gone | "
                         f"MISSING |")
    lines.append("")
    if problems is not None:
        if problems:
            lines.append(f"**{len(problems)} regression(s):**")
            lines.append("")
            lines.extend(f"- {problem}" for problem in problems)
        else:
            lines.append("No bench regressions.")
        lines.append("")
    return "\n".join(lines)


def _write_markdown(
    path: str,
    current: Dict[str, Any],
    baseline: Optional[Dict[str, Any]],
    problems: Optional[List[str]],
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_markdown(current, baseline, problems))
        handle.write("\n")
    print(f"wrote {path}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the benchmarks/ suite in parallel and record "
        "the perf trajectory (BENCH_SUITE.json).",
    )
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="bench directory (default: repo benchmarks/)")
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="suite JSON output (default BENCH_SUITE.json; "
                        "--smoke defaults to a temp file so the gate "
                        "leaves no artifact in the tree)")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="pool size (default: min(benches, cpus))")
    parser.add_argument("--smoke", action="store_true",
                        help=f"run only the smoke subset: "
                        f"{', '.join(SMOKE_BENCHES)}")
    parser.add_argument("--only", nargs="+", default=None, metavar="NAME",
                        help="run only these bench stems")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="after running, compare against a saved "
                        "BENCH_SUITE.json; exit 1 on regression")
    parser.add_argument("--compare-only", nargs=2, default=None,
                        metavar=("BASELINE", "CURRENT"),
                        help="compare two saved suite files without "
                        "running anything; exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="relative slowdown allowed before a bench "
                        "counts as regressed (default 0.5 = +50%%)")
    parser.add_argument("--markdown", default=None, metavar="PATH",
                        help="also write a markdown job-summary table "
                        "(deltas vs the baseline when comparing)")
    return parser


def _report_compare(problems: List[str]) -> int:
    if problems:
        print("bench regressions:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("no bench regressions")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.compare_only is not None:
        baseline = load_suite(args.compare_only[0])
        current = load_suite(args.compare_only[1])
        problems = compare(baseline, current, args.tolerance)
        if args.markdown is not None:
            _write_markdown(args.markdown, current, baseline, problems)
        return _report_compare(problems)
    root = Path(args.root) if args.root else default_bench_root()
    only: Optional[Iterable[str]] = args.only
    if args.smoke:
        only = list(SMOKE_BENCHES)
    paths = discover(root, list(only) if only is not None else None)
    if not paths:
        print(f"no bench_*.py found under {root}", file=sys.stderr)
        return 2
    suite = run_suite(paths, jobs=args.jobs)
    out = args.output
    if out is None:
        if args.smoke:
            # Smoke runs are a gate, not a trajectory update: write to
            # a temp file so no stale artifact lands in the worktree.
            fd, out = tempfile.mkstemp(prefix="BENCH_SUITE.smoke.",
                                       suffix=".json")
            os.close(fd)
        else:
            out = "BENCH_SUITE.json"
    write_suite(suite, out)
    print(render_suite(suite))
    print(f"wrote {out}")
    failed = [
        name for name, entry in suite["benches"].items()
        if not entry.get("ok")
    ]
    for name in failed:
        detail = suite["benches"][name].get("detail", "")
        print(f"-- {name} failed --\n{detail}", file=sys.stderr)
    if args.compare is not None:
        baseline = load_suite(args.compare)
        problems = compare(baseline, suite, args.tolerance)
        if args.markdown is not None:
            _write_markdown(args.markdown, suite, baseline, problems)
        status = _report_compare(problems)
        return status or (1 if failed else 0)
    if args.markdown is not None:
        _write_markdown(args.markdown, suite, None, None)
    return 1 if failed else 0
