"""Entry point for ``python -m repro.bench``."""

from __future__ import annotations

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main())
