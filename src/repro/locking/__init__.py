"""Global locking for the SD complex and the CS server.

Both architectures in the paper need global locking: in SD a global
lock manager coordinates the instances; in CS the server "takes care of
global locking across the clients" (Section 1.3).  Record locking is
assumed throughout (Section 3.1), with page locks used by the
coherency layer and the Section 1.5 anomaly reconstruction.
"""

from repro.locking.lock_manager import (
    LockManager,
    LockMode,
    LockStatus,
    are_compatible,
    page_lock,
    record_lock,
    supremum,
)

__all__ = [
    "LockManager",
    "LockMode",
    "LockStatus",
    "are_compatible",
    "page_lock",
    "record_lock",
    "supremum",
]
