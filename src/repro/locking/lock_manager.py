"""A global lock manager with hierarchical modes and deadlock detection.

Single-threaded simulation semantics: :meth:`LockManager.acquire`
either grants immediately or enqueues the request and reports
``WAITING``; the caller (the workload driver or architecture layer)
reschedules the blocked work and calls :meth:`LockManager.release`
later, which returns the newly granted requests so their owners can
resume.  Deadlocks are detected on demand via the wait-for graph; the
youngest transaction in the cycle is the victim.

Lock names are arbitrary hashable tuples; :func:`record_lock` and
:func:`page_lock` build the conventional ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.common.errors import DeadlockError
from repro.common.stats import LOCK_REQUESTS, LOCK_WAITS, StatsRegistry
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer


class LockMode(enum.IntEnum):
    """Hierarchical lock modes (System R lineage)."""

    IS = 1
    IX = 2
    S = 3
    SIX = 4
    X = 5


# Compatibility as a precomputed bitmask table: ``_COMPAT_MASK[a]`` has
# bit ``b`` set iff modes ``a`` and ``b`` can be held simultaneously.
# ``are_compatible`` is the single hottest predicate in the lock
# manager (every grant/conversion/promotion consults it), and a list
# index plus a shift beats hashing a tuple of two enum members.
def _build_compat_mask() -> List[int]:
    yes = {
        (LockMode.IS, LockMode.IS), (LockMode.IS, LockMode.IX),
        (LockMode.IS, LockMode.S), (LockMode.IS, LockMode.SIX),
        (LockMode.IX, LockMode.IS), (LockMode.IX, LockMode.IX),
        (LockMode.S, LockMode.IS), (LockMode.S, LockMode.S),
        (LockMode.SIX, LockMode.IS),
    }
    masks = [0] * (max(LockMode) + 1)
    for a in LockMode:
        for b in LockMode:
            if (a, b) in yes or (b, a) in yes:
                masks[a] |= 1 << b
    return masks


_COMPAT_MASK: List[int] = _build_compat_mask()

# Least upper bound of two modes (for conversions).
_SUPREMUM: Dict[Tuple[LockMode, LockMode], LockMode] = {}


def _fill_supremum() -> None:
    order = {
        (LockMode.IS, LockMode.IX): LockMode.IX,
        (LockMode.IS, LockMode.S): LockMode.S,
        (LockMode.IS, LockMode.SIX): LockMode.SIX,
        (LockMode.IS, LockMode.X): LockMode.X,
        (LockMode.IX, LockMode.S): LockMode.SIX,
        (LockMode.IX, LockMode.SIX): LockMode.SIX,
        (LockMode.IX, LockMode.X): LockMode.X,
        (LockMode.S, LockMode.SIX): LockMode.SIX,
        (LockMode.S, LockMode.X): LockMode.X,
        (LockMode.SIX, LockMode.X): LockMode.X,
    }
    for a in LockMode:
        _SUPREMUM[(a, a)] = a
        for b in LockMode:
            if (a, b) in order:
                _SUPREMUM[(a, b)] = order[(a, b)]
                _SUPREMUM[(b, a)] = order[(a, b)]


_fill_supremum()


def are_compatible(a: LockMode, b: LockMode) -> bool:
    """Can modes ``a`` and ``b`` be held simultaneously?"""
    return bool(_COMPAT_MASK[a] & (1 << b))


def supremum(a: LockMode, b: LockMode) -> LockMode:
    """The weakest mode at least as strong as both."""
    return _SUPREMUM[(a, b)]


def record_lock(page_id: int, slot: int) -> Tuple[str, int, int]:
    """Lock name for a record (the paper assumes record locking)."""
    return ("record", page_id, slot)


def page_lock(page_id: int) -> Tuple[str, int]:
    """Lock name for a whole page (coherency / Section 1.5 example)."""
    return ("page", page_id)


class LockStatus(enum.Enum):
    GRANTED = "granted"
    WAITING = "waiting"
    WOULD_BLOCK = "would_block"   # try_acquire only: nothing enqueued


@dataclass
class _Request:
    owner: Hashable           # (system_id, txn_id) or any hashable owner
    mode: LockMode
    convert_from: Optional[LockMode] = None


@dataclass
class _LockHead:
    granted: Dict[Hashable, LockMode] = field(default_factory=dict)
    queue: List[_Request] = field(default_factory=list)


class LockManager:
    """Global lock table shared by all systems/clients."""

    def __init__(
        self,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
        shard: Optional[int] = None,
        blockers_fn: Optional[
            Callable[[Hashable], List[Hashable]]] = None,
    ) -> None:
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Pre-resolved handle: LOCK_REQUESTS is bumped on every single
        # acquire, so it skips the registry's per-call string hashing.
        self._requests = self.stats.handle(LOCK_REQUESTS)
        self._table: Dict[Hashable, _LockHead] = {}
        # owner -> resource currently waited for (for the WFG)
        self._waiting_on: Dict[Hashable, Hashable] = {}
        # Shard label: a PartitionedLockManager sets this so traces can
        # be attributed to the shard that emitted them.  None (the
        # monolithic GLM) keeps the event shape byte-identical to
        # pre-sharding traces.
        self.shard = shard
        # Deadlock seam: when this manager is one shard of a
        # partitioned GLM, the facade injects a *global* blockers
        # function here so the DFS in _find_cycle can follow wait-for
        # edges that cross shard boundaries.  Standalone managers walk
        # their own table.
        self._blockers_fn = (
            blockers_fn if blockers_fn is not None else self._blockers)

    def _trace(self, kind: str, **fields: Hashable) -> None:
        # The lock table is global, so its events carry system 0 (the
        # GLM in SD, the server in CS).
        if self.tracer.enabled:
            if self.shard is not None:
                self.tracer.emit(kind, system=0, shard=self.shard, **fields)
            else:
                self.tracer.emit(kind, system=0, **fields)

    # ------------------------------------------------------------------
    def acquire(
        self,
        owner: Hashable,
        resource: Hashable,
        mode: LockMode,
    ) -> LockStatus:
        """Request ``resource`` in ``mode`` for ``owner``.

        Returns GRANTED or WAITING.  Raises :class:`DeadlockError` if
        enqueueing this request closes a cycle in the wait-for graph and
        ``owner`` is chosen as the victim (the youngest, i.e. the one
        with the greatest owner key).
        """
        if self.tracer.enabled:
            # Guarded span: acquire is the lock hot path (PR 3 fast
            # lane), so the attrs dict only materializes when tracing.
            if self.shard is not None:
                with self.tracer.span(
                    ev.SPAN_LOCK_ACQUIRE, resource=resource,
                    mode=mode.name, shard=self.shard,
                ):
                    return self._acquire(owner, resource, mode)
            with self.tracer.span(
                ev.SPAN_LOCK_ACQUIRE, resource=resource, mode=mode.name
            ):
                return self._acquire(owner, resource, mode)
        return self._acquire(owner, resource, mode)

    def _acquire(
        self,
        owner: Hashable,
        resource: Hashable,
        mode: LockMode,
    ) -> LockStatus:
        self._requests.bump()
        head = self._table.get(resource)
        if head is None:
            # Uncontended fast lane: the first request on a free
            # resource always grants — no queue to scan, no
            # compatibility to check.  Same result, stats and trace as
            # the general path below.
            head = _LockHead()
            head.granted[owner] = mode
            self._table[resource] = head
            self._trace(
                ev.LOCK_GRANT, owner=owner, resource=resource,
                mode=mode.name,
            )
            return LockStatus.GRANTED
        if any(r.owner == owner for r in head.queue):
            # Retry of a still-queued request: keep the queue position.
            return LockStatus.WAITING
        held = head.granted.get(owner)
        if held is not None:
            target = supremum(held, mode)
            if target == held:
                return LockStatus.GRANTED
            if self._conversion_compatible(head, owner, target):
                head.granted[owner] = target
                self._trace(
                    ev.LOCK_GRANT, owner=owner, resource=resource,
                    mode=target.name,
                )
                return LockStatus.GRANTED
            request = _Request(owner=owner, mode=target, convert_from=held)
            head.queue.insert(0, request)  # conversions go first
        else:
            if not head.queue and self._grant_compatible(head, mode):
                head.granted[owner] = mode
                self._trace(
                    ev.LOCK_GRANT, owner=owner, resource=resource,
                    mode=mode.name,
                )
                return LockStatus.GRANTED
            request = _Request(owner=owner, mode=mode)
            head.queue.append(request)
        self.stats.incr(LOCK_WAITS)
        self._waiting_on[owner] = resource
        self._trace(
            ev.LOCK_WAIT, owner=owner, resource=resource,
            mode=request.mode.name,
        )
        if self._find_cycle(owner):
            # The requester whose wait closes the cycle is the victim:
            # every other participant is already parked and will never
            # re-enter acquire(), so it is the only one positioned to
            # break the deadlock.
            self._remove_request(resource, owner)
            self._trace(ev.LOCK_DEADLOCK, owner=owner, resource=resource)
            raise DeadlockError(f"{owner} chosen as deadlock victim on {resource}")
        return LockStatus.WAITING

    def try_acquire(
        self,
        owner: Hashable,
        resource: Hashable,
        mode: LockMode,
    ) -> LockStatus:
        """Like :meth:`acquire` but never waits: a conflicting request
        returns WOULD_BLOCK without being enqueued.  Used for
        opportunistic operations such as lock escalation."""
        self._requests.bump()
        head = self._table.get(resource)
        if head is None:
            # Same uncontended fast lane as acquire().
            head = _LockHead()
            head.granted[owner] = mode
            self._table[resource] = head
            self._trace(
                ev.LOCK_GRANT, owner=owner, resource=resource,
                mode=mode.name,
            )
            return LockStatus.GRANTED
        if any(r.owner == owner for r in head.queue):
            return LockStatus.WOULD_BLOCK
        held = head.granted.get(owner)
        if held is not None:
            target = supremum(held, mode)
            if target == held:
                return LockStatus.GRANTED
            if self._conversion_compatible(head, owner, target):
                head.granted[owner] = target
                self._trace(
                    ev.LOCK_GRANT, owner=owner, resource=resource,
                    mode=target.name,
                )
                return LockStatus.GRANTED
        elif not head.queue and self._grant_compatible(head, mode):
            head.granted[owner] = mode
            self._trace(
                ev.LOCK_GRANT, owner=owner, resource=resource,
                mode=mode.name,
            )
            return LockStatus.GRANTED
        if not head.granted and not head.queue:
            del self._table[resource]
        return LockStatus.WOULD_BLOCK

    def release(self, owner: Hashable, resource: Hashable) -> List[Hashable]:
        """Release ``owner``'s lock on ``resource``.

        Returns the owners whose queued requests became granted.
        """
        head = self._table.get(resource)
        if head is None or owner not in head.granted:
            raise KeyError(f"{owner} holds no lock on {resource}")
        del head.granted[owner]
        self._trace(ev.LOCK_RELEASE, owner=owner, resource=resource)
        return self._promote(resource, head)

    def release_all(self, owner: Hashable) -> List[Tuple[Hashable, Hashable]]:
        """Release every lock ``owner`` holds (commit/abort/crash).

        Returns ``(resource, new_owner)`` pairs for promoted waiters.
        """
        promoted: List[Tuple[Hashable, Hashable]] = []
        self._remove_waits(owner)
        self._trace(ev.LOCK_RELEASE_ALL, owner=owner)
        for resource in list(self._table):
            head = self._table[resource]
            if owner in head.granted:
                del head.granted[owner]
                promoted.extend(
                    (resource, new_owner)
                    for new_owner in self._promote(resource, head)
                )
            else:
                before = len(head.queue)
                head.queue = [r for r in head.queue if r.owner != owner]
                if len(head.queue) != before:
                    promoted.extend(
                        (resource, new_owner)
                        for new_owner in self._promote(resource, head)
                    )
        return promoted

    # ------------------------------------------------------------------
    def holds(self, owner: Hashable, resource: Hashable,
              mode: Optional[LockMode] = None) -> bool:
        """Does ``owner`` hold ``resource`` (at least in ``mode``)?"""
        head = self._table.get(resource)
        if head is None:
            return False
        held = head.granted.get(owner)
        if held is None:
            return False
        return mode is None or supremum(held, mode) == held

    def holders(self, resource: Hashable) -> Dict[Hashable, LockMode]:
        head = self._table.get(resource)
        return dict(head.granted) if head else {}

    def waiters(self, resource: Hashable) -> List[Hashable]:
        head = self._table.get(resource)
        return [r.owner for r in head.queue] if head else []

    def locks_of(self, owner: Hashable) -> Dict[Hashable, LockMode]:
        """Every lock ``owner`` currently holds."""
        return {
            resource: head.granted[owner]
            for resource, head in self._table.items()
            if owner in head.granted
        }

    def owners(self) -> Set[Hashable]:
        """Every owner currently holding or awaiting a lock."""
        result: Set[Hashable] = set()
        for head in self._table.values():
            result.update(head.granted)
            result.update(r.owner for r in head.queue)
        return result

    def resources(self) -> List[Hashable]:
        """Every resource with a live lock head (insertion order)."""
        return list(self._table)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _grant_compatible(head: _LockHead, mode: LockMode) -> bool:
        mask = _COMPAT_MASK[mode]
        return all(mask >> held & 1 for held in head.granted.values())

    @staticmethod
    def _conversion_compatible(
        head: _LockHead, owner: Hashable, target: LockMode
    ) -> bool:
        mask = _COMPAT_MASK[target]
        return all(
            mask >> held & 1
            for other, held in head.granted.items()
            if other != owner
        )

    def _promote(self, resource: Hashable, head: _LockHead) -> List[Hashable]:
        granted: List[Hashable] = []
        while head.queue:
            request = head.queue[0]
            if request.convert_from is not None:
                ok = self._conversion_compatible(head, request.owner, request.mode)
            else:
                ok = self._grant_compatible(head, request.mode)
            if not ok:
                break
            head.queue.pop(0)
            head.granted[request.owner] = request.mode
            self._waiting_on.pop(request.owner, None)
            self._trace(
                ev.LOCK_GRANT, owner=request.owner, resource=resource,
                mode=request.mode.name,
            )
            granted.append(request.owner)
        if not head.granted and not head.queue:
            del self._table[resource]
        return granted

    def _remove_request(self, resource: Hashable, owner: Hashable) -> None:
        head = self._table.get(resource)
        if head is not None:
            head.queue = [r for r in head.queue if r.owner != owner]
            if not head.granted and not head.queue:
                del self._table[resource]
        self._waiting_on.pop(owner, None)

    def _remove_waits(self, owner: Hashable) -> None:
        self._waiting_on.pop(owner, None)

    def _blockers(self, owner: Hashable) -> List[Hashable]:
        """Owners that must release or advance before ``owner`` can run."""
        resource = self._waiting_on.get(owner)
        if resource is None:
            return []
        head = self._table.get(resource)
        if head is None:
            return []
        request = next((r for r in head.queue if r.owner == owner), None)
        if request is None:
            return []
        blockers = [
            other for other, held in head.granted.items()
            if other != owner and not are_compatible(request.mode, held)
        ]
        for queued in head.queue:  # FIFO: earlier requests block later ones
            if queued.owner == owner:
                break
            blockers.append(queued.owner)
        return blockers

    def _find_cycle(self, start: Hashable) -> bool:
        """Is ``start`` on a wait-for cycle?  Full DFS over all blocker
        edges (a single-successor walk can miss cycles when a resource
        has several incompatible holders).  The edges come from
        ``_blockers_fn`` so a partitioned GLM can supply the global
        wait-for graph spanning all shards."""
        stack = list(self._blockers_fn(start))
        seen: Set[Hashable] = set()
        while stack:
            current = stack.pop()
            if current == start:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._blockers_fn(current))
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LockManager(resources={len(self._table)}, "
            f"waiting={len(self._waiting_on)})"
        )
