"""``python -m repro.trace`` entry point (see :mod:`repro.obs.cli`)."""

from repro.obs.cli import main, run

__all__ = ["main", "run"]

if __name__ == "__main__":
    raise SystemExit(run())
