"""Log-shipping replication: hot standby over the merged USN stream.

The paper's USN scheme makes log shipping uniquely cheap: every local
log is LSN-sorted, so the primary complex's logs k-way merge by
comparing LSNs alone (Section 3.2.2) and a standby can run one
continuous redo stream against its own disk — Sauer/Härder's REDO-only
recovery as a steady state.  :class:`ReplicationManager` ships the
merged stable stream over the ``net`` seam with configurable write-ack
levels (``local`` / ``quorum`` / ``all``, the RethinkDB-style
durability knob); :class:`StandbyComplex` applies it and, on
:meth:`~StandbyComplex.promote`, runs restart recovery over its
replica logs and flips writable.  See ``docs/replication.md``.
"""

from repro.replication.shipper import (
    ACK_ALL,
    ACK_LEVELS,
    ACK_LOCAL,
    ACK_QUORUM,
    CommitAck,
    NULL_REPLICATION,
    NullReplication,
    ReplicationConfig,
    ReplicationManager,
)
from repro.replication.standby import StandbyComplex

__all__ = [
    "ACK_ALL",
    "ACK_LEVELS",
    "ACK_LOCAL",
    "ACK_QUORUM",
    "CommitAck",
    "NULL_REPLICATION",
    "NullReplication",
    "ReplicationConfig",
    "ReplicationManager",
    "StandbyComplex",
]
