"""The hot standby: continuous redo over shipped USN log records.

A :class:`StandbyComplex` owns its own disk (same geometry as the
primary, space maps formatted by the same volume-initialisation step)
and one **replica log** per primary instance.  Every shipped record is
appended verbatim to its source's replica log
(:meth:`~repro.wal.log_manager.LogManager.append_raw`, the Section 3.1
"append them, as they are" discipline), forced, and — for
page-oriented records — replayed through the standard redo test
``record.LSN > page_LSN`` (Section 3.2.1) straight against the
standby's disk.  That loop *is* restart recovery's redo pass run as a
steady state, so the standby emits the same ``RECOVERY_REDO`` /
``RECOVERY_SKIP`` events and stays under the trace checker's
redo-screening invariant.

Apply order is the primary's merged LSN order, which is sufficient:
per-page LSNs are strictly increasing across the complex (invariant
I1), so all records for one page arrive in increasing-LSN order, and
records for different pages commute.

:meth:`promote` is failover: an optional final catch-up from whatever
stable primary logs survived, then ARIES restart recovery *per replica
log* (redo is a no-op thanks to continuous apply; undo compensates the
in-flight transactions the dead primary left behind), and finally a
fresh writable :class:`~repro.sd.complex.SDComplex` is built over the
standby's disk with its Lamport clock seeded above every applied LSN.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.buffer.buffer_pool import BufferPool
from repro.common.lsn import Lsn
from repro.common.stats import (
    REPL_APPLY_SKIPPED,
    REPL_PROMOTIONS,
    REPL_RECORDS_APPLIED,
    StatsRegistry,
)
from repro.faults import points as fp
from repro.faults.injector import NullFaultInjector
from repro.obs import events as ev
from repro.obs.tracer import NullTracer
from repro.recovery.apply import apply_redo
from repro.storage.disk import SharedDisk
from repro.storage.page import Page, PageType
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sd.complex import SDComplex


class _RecoverySite:
    """Duck-typed instance for :func:`restart_recovery` over one
    replica log: the log, a pool on the standby's disk, the *source*
    system's id (so CLRs land in the right replica log with the right
    attribution), and the standby's tracer."""

    def __init__(self, system_id: int, log: LogManager, pool: BufferPool,
                 tracer: NullTracer) -> None:
        self.system_id = system_id
        self.log = log
        self.pool = pool
        self.tracer = tracer


class StandbyComplex:
    """A warm replica of one primary complex, fed by the log shipper."""

    def __init__(
        self,
        system_id: int,
        primary: "SDComplex",
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
        injector: Optional[NullFaultInjector] = None,
    ) -> None:
        if system_id <= 0:
            raise ValueError("system ids must be positive")
        self.system_id = system_id
        # Geometry is copied, seams are shared (overridable so a
        # reference replay can run silently next to the real standby).
        self._smp_start = primary.space_map.smp_start
        self._data_start = primary.space_map.data_start
        self._n_data_pages = primary.space_map.n_data_pages
        self.stats = stats if stats is not None else primary.stats
        self.tracer = tracer if tracer is not None else primary.tracer
        self.injector = (injector if injector is not None
                         else primary.injector)
        self.disk = SharedDisk(capacity=primary.disk.capacity,
                               stats=self.stats, tracer=self.tracer,
                               injector=self.injector,
                               slab=primary.disk.slab)
        self._format_space_maps(primary)
        #: One replica log per primary instance, keyed by source id.
        self._replica_logs: Dict[int, LogManager] = {}
        #: Highest LSN appended per source (duplicate screen: a
        #: re-shipped batch after a lost-ack retry must not re-append).
        self._last_lsn: Dict[int, int] = {}
        #: Highest LSN applied/absorbed overall — the cumulative ack.
        self.applied_max_lsn: Lsn = 0
        self.promoted = False

    def _format_space_maps(self, primary: "SDComplex") -> None:
        """Run the volume-initialisation step the primary ran.

        The primary's SMP formatting is *not* logged (volume init
        predates the log), so it cannot arrive through the shipped
        stream; the standby formats its own volume identically.
        """
        for smp_page_id in primary.space_map.smp_page_ids():
            page = Page()
            page.format(smp_page_id, PageType.SPACE_MAP)
            self.disk.write_page(page)

    def _replica_log(self, source_id: int) -> LogManager:
        log = self._replica_logs.get(source_id)
        if log is None:
            log = LogManager(source_id, stats=self.stats,
                             tracer=self.tracer, injector=self.injector)
            self._replica_logs[source_id] = log
        return log

    def replica_logs(self) -> List[LogManager]:
        """The replica logs in source-id order (verification input)."""
        return [self._replica_logs[sid]
                for sid in sorted(self._replica_logs)]

    def replica_snapshot(self) -> Dict[int, bytes]:
        """Serialized replica-log contents per source id.

        Taken *before* :meth:`promote` it captures exactly the shipped
        stream (promotion appends CLR/END records); the failover drill
        feeds it to a fresh standby to build the reference image.
        """
        out: Dict[int, bytes] = {}
        for sid in sorted(self._replica_logs):
            out[sid] = b"".join(
                record.to_bytes()
                for _, record in self._replica_logs[sid].scan())
        return out

    # ------------------------------------------------------------------
    # continuous redo
    # ------------------------------------------------------------------
    def receive(self, batch: Iterable[Tuple[int, bytes]]) -> int:
        """Apply one shipped batch; returns records newly applied.

        Each item is ``(source system id, serialized record bytes)``
        and may carry one record or a whole stream.  Per record: screen
        duplicates by per-source LSN (re-ships after a lost ack are
        no-ops), append verbatim to the source's replica log, and for
        page-oriented records run the redo test against the standby's
        disk.  Replica logs are forced before returning, so the ack the
        caller derives from :attr:`applied_max_lsn` means *durable on
        the standby*.
        """
        items = list(batch)
        if self.injector.enabled:
            self.injector.fire(fp.REPL_APPLY, system=self.system_id,
                               standby=self.system_id, items=len(items))
        applied = 0
        touched: List[LogManager] = []
        for source_id, data in items:
            for _, record in LogRecord.parse_stream(data):
                if record.lsn <= self._last_lsn.get(source_id, 0):
                    continue  # duplicate re-ship
                log = self._replica_log(source_id)
                log.append_raw(record.to_bytes())
                if not touched or touched[-1] is not log:
                    touched.append(log)
                self._last_lsn[source_id] = int(record.lsn)
                self._apply_record(record)
                applied += 1
                if record.lsn > self.applied_max_lsn:
                    self.applied_max_lsn = record.lsn
        for log in touched:
            log.force()
        return applied

    def _apply_record(self, record: LogRecord) -> None:
        """The standing redo pass: one record against the disk image."""
        if not record.is_page_oriented():
            return
        page = self.disk.read_page(record.page_id)
        if record.lsn > page.page_lsn:
            page_lsn_prev = page.page_lsn
            apply_redo(page, record)
            self.disk.write_page(page)
            self.stats.incr(REPL_RECORDS_APPLIED)
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.RECOVERY_REDO, system=self.system_id,
                    page=record.page_id, lsn=int(record.lsn),
                    page_lsn_prev=int(page_lsn_prev),
                )
        else:
            self.stats.incr(REPL_APPLY_SKIPPED)
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.RECOVERY_SKIP, system=self.system_id,
                    page=record.page_id, lsn=int(record.lsn),
                    page_lsn=int(page.page_lsn),
                )

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def promote(self, salvaged_logs: Optional[Iterable[LogManager]] = None
                ) -> "SDComplex":
        """Final catch-up, restart recovery, flip writable.

        ``salvaged_logs`` optionally carries the dead primary's local
        logs when their stable prefixes survived (the shared-disks
        case): their merged stable stream is applied first, closing
        the replication lag entirely.  Without salvage the standby
        promotes on what it holds — the disaster-recovery case whose
        loss the ack levels bound.

        Returns a writable :class:`~repro.sd.complex.SDComplex` built
        over the standby's disk, with one instance (this standby's
        id) whose Lamport clock is seeded above every LSN the standby
        ever absorbed.
        """
        from repro.recovery.aries import restart_recovery
        from repro.sd.complex import SDComplex

        with self.tracer.span(ev.SPAN_PROMOTE, system=self.system_id,
                              standby=self.system_id):
            if salvaged_logs is not None:
                self._final_catch_up(salvaged_logs)
            for sid in sorted(self._replica_logs):
                log = self._replica_logs[sid]
                log.force()
                pool = BufferPool(self.disk, log, tracer=self.tracer,
                                  injector=self.injector)
                site = _RecoverySite(sid, log, pool, self.tracer)
                restart_recovery(site)
                pool.flush_all()
            seed = self.applied_max_lsn
            for log in self._replica_logs.values():
                log.force()
                if log.local_max_lsn > seed:
                    seed = log.local_max_lsn
            promoted = SDComplex(
                n_data_pages=self._n_data_pages,
                data_start=self._data_start,
                smp_start=self._smp_start,
                disk=self.disk,
                stats=self.stats, tracer=self.tracer,
                injector=self.injector,
            )
            instance = promoted.add_instance(self.system_id)
            instance.log.observe_remote_max(seed)
            self.promoted = True
            self.stats.incr(REPL_PROMOTIONS)
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.REPL_PROMOTE, system=self.system_id,
                    applied_max_lsn=int(seed),
                    sources=len(self._replica_logs),
                )
        return promoted

    def _final_catch_up(self, salvaged_logs: Iterable[LogManager]) -> None:
        """Apply the salvaged stable stream (duplicates screen out)."""
        from repro.wal.merge import merge_local_logs

        items: List[Tuple[int, bytes]] = []
        for addr, record in merge_local_logs(list(salvaged_logs),
                                             stats=self.stats,
                                             stable_only=True):
            items.append((addr.system_id, record.to_bytes()))
        if items:
            self.receive(items)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StandbyComplex(system={self.system_id}, "
            f"sources={sorted(self._replica_logs)}, "
            f"applied_max_lsn={self.applied_max_lsn})"
        )
