"""The primary-side log shipper and write-acknowledgement tracking.

One :class:`ReplicationManager` hangs off an
:class:`~repro.sd.complex.SDComplex` (``replicate=`` seam).  It keeps a
byte cursor into every instance's local log, collects newly *stable*
records through :func:`~repro.wal.merge.merge_local_logs` (LSN-only
comparisons — the Section 3.2.2 discipline), and ships them in bounded
batches over the network fabric to every attached
:class:`~repro.replication.standby.StandbyComplex`.

Only forced records ever leave the primary (``stable_only=True``):
shipping the volatile tail would let a standby hold records the
primary itself loses in a crash, inverting the durability order.

Write-ack levels (the adjustable-durability knob):

* ``local``  — the commit is acknowledged by the primary's log force
  alone; shipping is asynchronous and only the overflow beyond the
  in-flight window is pushed out at commit.
* ``quorum`` — the commit point ships everything stable and waits for
  a majority of {primary} ∪ standbys to hold the commit record.
* ``all``    — every attached standby must hold it.

"Waits" is one bounded synchronous round per standby (retry with
deterministic backoff via :func:`~repro.faults.policy.run_with_retry`);
a standby that cannot be reached is disconnected and the commit
proceeds with the acks it has — the primary enters **ack-degraded**
mode (trace event + counter) rather than stalling.  Every commit's ack
decision is recorded as a :class:`CommitAck`, which the failover drill
audits against what survives promotion.

Disabled replication is the shared :data:`NULL_REPLICATION` object
(``enabled=False``), so ``replicate=None`` stacks stay byte-identical
to pre-replication runs per the equivalence discipline.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.common.errors import (
    FaultInjectedError,
    ReproError,
    RetryExhaustedError,
)
from repro.common.lsn import Lsn
from repro.common.stats import (
    REPL_ACKS,
    REPL_BATCHES_SHIPPED,
    REPL_COMMITS_ACKED,
    REPL_DEGRADED_ENTRIES,
    REPL_RECORDS_SHIPPED,
    REPL_SHIP_RETRIES,
)
from repro.faults import points as fp
from repro.faults.injector import FAIL
from repro.faults.policy import RetryPolicy, run_with_retry
from repro.obs import events as ev
from repro.replication.standby import StandbyComplex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sd.complex import SDComplex

ACK_LOCAL = "local"
ACK_QUORUM = "quorum"
ACK_ALL = "all"
ACK_LEVELS = (ACK_LOCAL, ACK_QUORUM, ACK_ALL)

#: A shipped unit: (source system id, serialized record bytes).
ShipItem = Tuple[int, bytes]


class ReplicationConfig:
    """Tuning knobs for one primary's log shipping."""

    def __init__(
        self,
        ack: str = ACK_QUORUM,
        window_records: int = 64,
        batch_records: int = 8,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if ack not in ACK_LEVELS:
            raise ValueError(f"ack must be one of {ACK_LEVELS}, got {ack!r}")
        if window_records < 1:
            raise ValueError("window_records must be >= 1")
        if batch_records < 1:
            raise ValueError("batch_records must be >= 1")
        self.ack = ack
        self.window_records = window_records
        self.batch_records = batch_records
        self.retry = retry if retry is not None else RetryPolicy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReplicationConfig(ack={self.ack!r}, "
            f"window_records={self.window_records}, "
            f"batch_records={self.batch_records})"
        )


class CommitAck:
    """The recorded ack decision for one committed transaction."""

    __slots__ = ("system", "txn", "lsn", "level", "satisfied")

    def __init__(self, system: int, txn: int, lsn: int, level: str,
                 satisfied: bool) -> None:
        self.system = system
        self.txn = txn
        self.lsn = lsn
        self.level = level
        self.satisfied = satisfied

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CommitAck(system={self.system}, txn={self.txn}, "
            f"lsn={self.lsn}, level={self.level!r}, "
            f"satisfied={self.satisfied})"
        )


class NullReplication:
    """The zero-cost default: replication switched off.

    Mirrors :data:`~repro.obs.tracer.NULL_TRACER` /
    :data:`~repro.faults.injector.NULL_INJECTOR`: call sites guard on
    ``enabled``, so a ``replicate=None`` stack pays one attribute read
    and emits nothing.
    """

    enabled: bool = False

    def on_commit(self, system: int, txn: int, lsn: Lsn) -> bool:
        """No-op commit hook (never called behind the guard)."""
        return True

    def add_standby(self, system_id: int) -> "StandbyComplex":
        raise ReproError("replication is not enabled on this complex")


#: Shared process-wide null replication; safe because it holds no state.
NULL_REPLICATION = NullReplication()


class _StandbyLink:
    """Primary-side state for one attached standby."""

    __slots__ = ("standby", "acked_lsn", "connected", "degraded")

    def __init__(self, standby: StandbyComplex) -> None:
        self.standby = standby
        self.acked_lsn: int = 0
        self.connected = True
        self.degraded = False

    @property
    def system_id(self) -> int:
        return self.standby.system_id


class ReplicationManager(NullReplication):
    """Ships the primary's merged stable log stream to its standbys."""

    enabled = True

    def __init__(self, primary: "SDComplex",
                 config: Optional[ReplicationConfig] = None) -> None:
        self.primary = primary
        self.config = config if config is not None else ReplicationConfig()
        self.stats = primary.stats
        self.tracer = primary.tracer
        self.injector = primary.injector
        self.network = primary.network
        #: Per-source byte offset already collected into the pending
        #: queue (the ship cursor into each local log).
        self._shipped_offsets: Dict[int, int] = {}
        #: Collected-but-unshipped records, in merged LSN order.
        self._pending: Deque[ShipItem] = deque()
        self._links: Dict[int, _StandbyLink] = {}
        #: Every commit-point ack decision, in commit order (the
        #: failover drill's loss audit reads this).
        self.commit_acks: List[CommitAck] = []

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_standby(self, system_id: int) -> StandbyComplex:
        """Attach a new standby complex mirroring the primary geometry."""
        if system_id in self._links:
            raise ReproError(f"standby {system_id} already attached")
        if system_id in self.primary.instances:
            raise ReproError(
                f"system {system_id} is a primary instance, not a standby")
        standby = StandbyComplex(system_id, self.primary)
        self._links[system_id] = _StandbyLink(standby)
        return standby

    def standbys(self) -> Dict[int, StandbyComplex]:
        return {sid: link.standby for sid, link in self._links.items()}

    def acked_lsn(self, system_id: int) -> int:
        """The cumulative LSN the standby last acknowledged."""
        return self._links[system_id].acked_lsn

    def connected(self, system_id: int) -> bool:
        return self._links[system_id].connected

    @property
    def ack_degraded(self) -> bool:
        """Is any standby currently behind on acks / unreachable?"""
        return any(link.degraded for link in self._links.values())

    def pending_records(self) -> int:
        """Collected records not yet shipped (the replication lag, in
        records, against the primary's stable log boundary)."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # the commit hook
    # ------------------------------------------------------------------
    def on_commit(self, system: int, txn: int, lsn: Lsn) -> bool:
        """Enforce the configured ack level for one forced commit.

        Called by :meth:`DbmsInstance._commit` right after the commit
        log force (the record at ``lsn`` is stable locally).  Returns
        whether the level was satisfied; the commit proceeds either way
        — an unsatisfied level degrades, never stalls.
        """
        self._collect()
        level = self.config.ack
        if level == ACK_LOCAL:
            # Asynchronous shipping: only the overflow beyond the
            # in-flight window leaves at the commit point, so the
            # unshipped tail — the most a crash can lose — stays
            # bounded by window_records.
            self._flush(limit=self.config.window_records)
            satisfied = True
            self._note_link_health()
        else:
            self._flush(limit=0)
            satisfied = self._await_acks(int(lsn), level)
        ack = CommitAck(system, txn, int(lsn), level, satisfied)
        self.commit_acks.append(ack)
        if satisfied:
            self.stats.incr(REPL_COMMITS_ACKED)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.REPL_COMMIT_ACK, system=system, txn=txn, lsn=int(lsn),
                level=level, satisfied=satisfied,
            )
        return satisfied

    def drain(self) -> int:
        """Collect and ship everything stable; returns records shipped.

        The between-commits pump (benchmarks call it to simulate an
        idle-time shipper tick; ``local`` mode relies on it to keep lag
        near zero when commits are sparse).
        """
        self._collect()
        shipped = len(self._pending)
        self._flush(limit=0)
        return shipped - len(self._pending)

    # ------------------------------------------------------------------
    # collect / ship
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        """Pull newly stable records from the merged local logs."""
        from repro.wal.merge import merge_local_logs

        logs = self.primary.local_logs()
        if not logs:
            return
        for addr, record in merge_local_logs(
                logs, stats=self.stats,
                from_offsets=dict(self._shipped_offsets),
                stable_only=True):
            data = record.to_bytes()
            self._pending.append((addr.system_id, data))
            self._shipped_offsets[addr.system_id] = addr.offset + len(data)

    def _flush(self, limit: int) -> None:
        """Ship pending records until at most ``limit`` remain."""
        links = [link for link in self._links.values() if link.connected]
        while len(self._pending) > limit:
            batch: List[ShipItem] = []
            while self._pending and len(batch) < self.config.batch_records:
                batch.append(self._pending.popleft())
            for link in links:
                if link.connected:
                    self._ship_to(link, batch)

    def _ship_to(self, link: _StandbyLink, batch: List[ShipItem]) -> None:
        """Ship one batch to one standby, with bounded retry/backoff.

        An injected ``fail`` at ``repl.ship`` (or anywhere inside the
        standby's apply) is retried under the configured policy;
        exhaustion disconnects the standby — crash-flavoured injections
        propagate untouched, they are the drill's kill signal.
        """
        nbytes = sum(len(data) for _, data in batch)

        def attempt() -> None:
            if self.injector.enabled:
                self.injector.fire(fp.REPL_SHIP, system=link.system_id,
                                   standby=link.system_id,
                                   records=len(batch))
            self.network.message(0, link.system_id, "repl.ship", nbytes)
            link.standby.receive(batch)

        def note_retry(_attempt: int) -> None:
            self.stats.incr(REPL_SHIP_RETRIES)

        try:
            run_with_retry(
                self.config.retry, attempt,
                retryable=FaultInjectedError,
                stats=self.stats, on_retry=note_retry,
                label=f"repl.ship->{link.system_id}",
                should_retry=lambda exc: getattr(exc, "action", "") == FAIL,
            )
        except RetryExhaustedError:
            self._disconnect(link, "ship retry budget exhausted")
            return
        self.stats.incr(REPL_BATCHES_SHIPPED)
        self.stats.incr(REPL_RECORDS_SHIPPED, len(batch))
        if self.tracer.enabled:
            max_lsn = link.standby.applied_max_lsn
            self.tracer.emit(
                ev.REPL_SHIP, system=0, standby=link.system_id,
                records=len(batch), nbytes=nbytes, max_lsn=int(max_lsn),
            )
        self._ack(link)

    def _ack(self, link: _StandbyLink) -> None:
        """One standby→primary ack round trip (cumulative applied LSN).

        An injected ``fail`` at ``repl.ack`` models a lost ack: the
        shipped records survive on the standby, the primary's view of
        its progress simply does not advance until the next round.
        """
        try:
            if self.injector.enabled:
                self.injector.fire(fp.REPL_ACK, system=link.system_id,
                                   standby=link.system_id)
        except FaultInjectedError as exc:
            if exc.action != FAIL:
                raise
            return
        self.network.message(link.system_id, 0, "repl.ack", 16)
        link.acked_lsn = int(link.standby.applied_max_lsn)
        self.stats.incr(REPL_ACKS)
        if self.tracer.enabled:
            self.tracer.emit(ev.REPL_ACK, system=0,
                             standby=link.system_id, lsn=link.acked_lsn)

    # ------------------------------------------------------------------
    # ack accounting
    # ------------------------------------------------------------------
    def _await_acks(self, commit_lsn: int, level: str) -> bool:
        """Has ``level`` been met for the commit record at ``commit_lsn``?

        Everything stable — the commit record included — has been
        shipped by the preceding ``_flush(limit=0)``, so a connected
        standby that acked ``>= commit_lsn`` holds the commit record.
        Standbys whose recorded ack lags get one probe round trip (the
        earlier ack may simply have been lost).
        """
        for _, link in sorted(self._links.items()):
            if link.connected and link.acked_lsn < commit_lsn:
                self._ack(link)
        holders = [link for link in self._links.values()
                   if link.connected and link.acked_lsn >= commit_lsn]
        if level == ACK_ALL:
            satisfied = len(holders) == len(self._links)
        else:  # quorum over {primary} ∪ standbys; the primary's own
            # log force is its vote.
            votes = len(holders) + 1
            total = len(self._links) + 1
            satisfied = votes * 2 > total
        self._note_link_health(commit_lsn)
        return satisfied

    def _note_link_health(self, commit_lsn: Optional[int] = None) -> None:
        """Flip per-standby ack-degraded state and emit the events."""
        for _, link in sorted(self._links.items()):
            behind = (not link.connected
                      or (commit_lsn is not None
                          and link.acked_lsn < commit_lsn))
            if behind and not link.degraded:
                link.degraded = True
                self.stats.incr(REPL_DEGRADED_ENTRIES)
                if self.tracer.enabled:
                    reason = ("disconnected" if not link.connected
                              else "ack behind commit")
                    self.tracer.emit(
                        ev.REPL_DEGRADED_ENTER, system=0,
                        standby=link.system_id, reason=reason,
                    )
            elif not behind and link.degraded:
                link.degraded = False
                if self.tracer.enabled:
                    self.tracer.emit(ev.REPL_DEGRADED_EXIT, system=0,
                                     standby=link.system_id)

    def _disconnect(self, link: _StandbyLink, reason: str) -> None:
        if not link.connected:
            return
        link.connected = False
        if not link.degraded:
            link.degraded = True
            self.stats.incr(REPL_DEGRADED_ENTRIES)
            if self.tracer.enabled:
                self.tracer.emit(ev.REPL_DEGRADED_ENTER, system=0,
                                 standby=link.system_id, reason=reason)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReplicationManager(ack={self.config.ack!r}, "
            f"standbys={sorted(self._links)}, "
            f"pending={len(self._pending)})"
        )
