"""``python -m repro`` — a one-minute guided demonstration.

Runs a compact end-to-end tour of the reproduction: the shared-disks
complex with clockless LSNs, a crash/restart, the Section 1.5 anomaly
under the naive scheme, the client-server deployment, and an invariant
verification pass.  For the full experiment suite run
``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import sys

from repro import CsSystem, SDComplex, __version__
from repro.baselines.naive import NaiveDbmsInstance
from repro.harness import verify_cs_system, verify_sd_complex


def demo_sd() -> None:
    print("-- shared disks: two systems, private logs, one disk")
    sd = SDComplex()
    s1, s2 = sd.add_instance(1), sd.add_instance(2)
    txn = s1.begin()
    page_id = s1.allocate_page(txn)
    slot = s1.insert(txn, page_id, b"hello")
    s1.commit(txn)
    txn = s2.begin()
    s2.update(txn, page_id, slot, b"world")
    s2.commit(txn)
    sd.crash_instance(2)
    summary = sd.restart_instance(2)
    value = sd.disk.read_page(page_id).read_record(slot)
    print(f"   S1 wrote, S2 overwrote, S2 crashed; after ARIES restart "
          f"the page holds {value!r} (redo: {summary.records_redone})")
    report = verify_sd_complex(sd)
    print(f"   invariants: {report.summary()}")
    assert value == b"world" and report.ok


def demo_anomaly() -> None:
    print("-- the Section 1.5 anomaly, naive scheme vs USN")
    for label, cls in (("naive", NaiveDbmsInstance), ("USN", None)):
        sd = SDComplex(n_data_pages=128)
        kwargs = {"lock_granularity": "page"}
        if cls is not None:
            kwargs["instance_cls"] = cls
        s1 = sd.add_instance(1, **kwargs)
        s2 = sd.add_instance(2, **kwargs)
        txn = s2.begin()
        page_id = s2.allocate_page(txn)
        slot = s2.insert(txn, page_id, b"orig")
        s2.commit(txn)
        s2.pool.write_page(page_id)
        s2.write_filler(50)
        t2 = s2.begin()
        s2.update(t2, page_id, slot, b"t2")
        s2.commit(t2)
        t1 = s1.begin()
        s1.update(t1, page_id, slot, b"t1-committed")
        s1.commit(t1)
        sd.crash_instance(1)
        sd.restart_instance(1)
        survivor = sd.disk.read_page(page_id).read_record(slot)
        verdict = "LOST a committed update" if survivor != b"t1-committed" \
            else "preserved the committed update"
        print(f"   {label:5s}: restart {verdict} ({survivor!r})")


def demo_cs() -> None:
    print("-- client-server: local LSNs, single log, server recovery")
    cs = CsSystem()
    alice, bob = cs.add_client(1), cs.add_client(2)
    txn = alice.begin()
    page_id = alice.allocate_page(txn)
    slot = alice.insert(txn, page_id, b"v1")
    alice.commit(txn)
    txn = bob.begin()
    bob.update(txn, page_id, slot, b"v2")
    bob.commit(txn)
    cs.crash_client(2)
    summary = cs.recover_client(2)
    cs.quiesce()
    value = cs.server.disk.read_page(page_id).read_record(slot)
    print(f"   bob crashed after committing; the server recovered him "
          f"from its log (redo: {summary.records_redone}); disk holds "
          f"{value!r}")
    report = verify_cs_system(cs, quiesced=True)
    print(f"   invariants: {report.summary()}")
    assert value == b"v2" and report.ok


def main() -> int:
    print(f"repro {__version__} — Mohan & Narang (ICDCS 1992), reproduced")
    print("clockless monotonic LSNs for shared-disks and client-server "
          "DBMS recovery\n")
    demo_sd()
    demo_anomaly()
    demo_cs()
    print("\nAll demos passed.  Next steps: pytest tests/ ; "
          "pytest benchmarks/ --benchmark-only -s ; see examples/.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
