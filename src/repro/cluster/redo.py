"""Parallel partitioned restart redo.

Redo is embarrassingly parallel *across pages*: the page_LSN test and
``apply_redo`` touch nothing but the page image and the record, and a
page's records must merely be replayed in log order — the order
*between* pages is immaterial (the serial pass happens to interleave
them only because it walks the log once).  So the pass partitions the
redo targets by ``page_id % parallelism`` and replays each partition on
its own thread over private state:

* the **parent** builds the per-page record lists (one deterministic
  scan of the local log, or of the merged local logs under the fast
  transfer scheme) and reads each target page image from the shared
  disk;
* each **worker** owns a disjoint set of pages; it applies the exact
  serial screening (``record.lsn > page_lsn``) and mutates only its own
  page images and private counters/event buffers — no shared registry,
  tracer or pool is touched from a worker thread;
* after the join, the parent writes the modified images back to the
  shared disk (WAL is satisfied: every covering record came from a
  stable log), emits the buffered ``RECOVERY_REDO``/``RECOVERY_SKIP``
  events in partition order, and folds the counts into the
  :class:`~repro.recovery.aries.RestartSummary`.

Serial equivalence: per page, the same records pass the same screening
in the same order, so the final page images are byte-identical to the
serial pass followed by a flush — the property
``tests/test_parallel_redo.py`` asserts across parallelism levels and
``docs/scaleout.md`` argues in full.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Collection, Dict, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recovery.aries import RestartSummary
    from repro.sd.instance import DbmsInstance
    from repro.wal.log_manager import LogManager

from repro.common.stats import (
    CLUSTER_REDO_PARALLEL_RUNS,
    CLUSTER_REDO_PARTITIONS,
)
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER
from repro.recovery.apply import apply_redo
from repro.storage.page import Page
from repro.wal.records import LogRecord


def partition_of(page_id: int, n_partitions: int) -> int:
    """The redo partition a page belongs to (stable, trivially even)."""
    return page_id % n_partitions


@dataclass
class _Partition:
    """One worker's share: disjoint pages, records in log order."""

    index: int
    pages: List[Tuple[int, Page, List[LogRecord]]] = field(
        default_factory=list)


@dataclass
class _Outcome:
    """A worker's privately accumulated results."""

    redone: int = 0
    skipped: int = 0
    #: (was_redo, page_id, lsn, other_lsn) in replay order, where
    #: other_lsn is page_lsn_prev for redos and page_lsn for skips.
    events: List[Tuple[bool, int, int, int]] = field(default_factory=list)
    modified: List[int] = field(default_factory=list)


def _replay(partition: _Partition, sabotage: bool) -> _Outcome:
    """Replay one partition (runs on a worker thread; private state
    only — the pages in ``partition`` belong to this worker alone)."""
    out = _Outcome()
    for page_id, page, records in partition.pages:
        touched = False
        for record in records:
            if sabotage or record.lsn > page.page_lsn:
                page_lsn_prev = page.page_lsn
                apply_redo(page, record)
                touched = True
                out.redone += 1
                out.events.append(
                    (True, page_id, int(record.lsn), int(page_lsn_prev)))
            else:
                out.skipped += 1
                out.events.append(
                    (False, page_id, int(record.lsn), int(page.page_lsn)))
        if touched:
            out.modified.append(page_id)
    return out


def replay_partitioned(
    instance: "DbmsInstance",
    per_page: Dict[int, List[LogRecord]],
    parallelism: int,
    summary: "RestartSummary",
    sabotage: bool = False,
) -> None:
    """Partition ``per_page`` and replay it across ``parallelism``
    threads, then write back, trace and account — see the module
    docstring for the split of work between parent and workers.

    ``per_page`` maps page_id -> that page's redo-candidate records in
    log order (the caller has already applied the scan-level screening
    — RecAddr bounds for local redo, the target set for merged redo).
    ``summary`` is the caller's RestartSummary; ``records_redone`` and
    ``redo_skipped_by_lsn`` are folded in.
    """
    disk = instance.pool.disk
    tracer = getattr(instance, "tracer", NULL_TRACER)
    stats = getattr(instance, "stats", None)
    total_records = sum(len(records) for records in per_page.values())

    partitions: Dict[int, _Partition] = {}
    for page_id in sorted(per_page):
        records = per_page[page_id]
        if not records:
            continue
        index = partition_of(page_id, parallelism)
        part = partitions.get(index)
        if part is None:
            part = _Partition(index=index)
            partitions[index] = part
        # The parent reads the image; the worker owns it until the
        # join.  A borrowed copy-on-write view suffices: workers whose
        # records all screen out (``lsn <= page_lsn``) never copy the
        # page at all, and the first ``apply_redo`` detaches a private
        # image — partitions are page-disjoint, so no two workers
        # touch the same window.
        page = disk.read_page_view(page_id)
        part.pages.append((page_id, page, records))
    ordered = [partitions[i] for i in sorted(partitions)]

    if tracer.enabled:
        tracer.emit(
            ev.CLUSTER_REDO_PLAN, system=instance.system_id,
            partitions=len(ordered), parallelism=parallelism,
            records=total_records,
        )
    if stats is not None:
        stats.incr(CLUSTER_REDO_PARALLEL_RUNS)
        stats.incr(CLUSTER_REDO_PARTITIONS, len(ordered))
    if not ordered:
        return

    with ThreadPoolExecutor(max_workers=parallelism) as pool:
        outcomes = list(
            pool.map(lambda part: _replay(part, sabotage), ordered))

    # Post-join, single-threaded: deterministic trace emission (partition
    # order, then log order within each page), disk write-back of the
    # modified images, and summary accounting.  Each partition's buffered
    # events land inside a redo_part span so the profiler can attribute
    # the replay cost per partition.
    for part, out in zip(ordered, outcomes):
        if tracer.enabled:
            with tracer.span(
                ev.SPAN_REDO_PART, system=instance.system_id,
                partition=part.index,
            ):
                for was_redo, page_id, lsn, other in out.events:
                    if was_redo:
                        tracer.emit(
                            ev.RECOVERY_REDO, system=instance.system_id,
                            page=page_id, lsn=lsn, page_lsn_prev=other,
                        )
                    else:
                        tracer.emit(
                            ev.RECOVERY_SKIP, system=instance.system_id,
                            page=page_id, lsn=lsn, page_lsn=other,
                        )
                tracer.emit(
                    ev.CLUSTER_REDO_PART, system=instance.system_id,
                    partition=part.index, pages=len(part.pages),
                    records=sum(len(r) for _, _, r in part.pages),
                    redone=out.redone, skipped=out.skipped,
                )
        summary.records_redone += out.redone
        summary.redo_skipped_by_lsn += out.skipped
    modified = {
        page_id: page
        for part in ordered
        for page_id, page, _ in part.pages
    }
    for part, out in zip(ordered, outcomes):
        for page_id in out.modified:
            disk.write_page(modified[page_id])


def collect_local_redo(
    log: "LogManager", dpt: Dict[int, Tuple[int, int]], redo_start: int
) -> Dict[int, List[LogRecord]]:
    """Per-page redo candidates for single-log restart: exactly the
    records the serial pass would consider (page in the DPT, record at
    or after the page's RecAddr)."""
    per_page: Dict[int, List[LogRecord]] = {}
    for addr, record in log.scan(from_offset=redo_start):
        if not record.is_page_oriented():
            continue
        entry = dpt.get(record.page_id)
        if entry is None or addr.offset < entry[1]:
            continue
        per_page.setdefault(record.page_id, []).append(record)
    return per_page


def collect_merged_redo(
    all_logs: Sequence["LogManager"], targets: Collection[int],
) -> Dict[int, List[LogRecord]]:
    """Per-page redo candidates for merged-log (fast scheme) restart:
    the deterministic k-way merge filtered to the target pages."""
    from repro.wal.merge import merge_local_logs

    per_page: Dict[int, List[LogRecord]] = {}
    for _, record in merge_local_logs(all_logs):
        if record.is_page_oriented() and record.page_id in targets:
            per_page.setdefault(record.page_id, []).append(record)
    return per_page
