"""Scale-out machinery for the SD complex.

The paper's Section 2 global lock manager is a single logical service;
this package lets the reproduction run it as K independent shards
(:mod:`repro.cluster.glm`), build N-instance complexes from a config
(:mod:`repro.cluster.config`), and replay restart redo partitioned by
page across a thread pool (:mod:`repro.cluster.redo`).  See
``docs/scaleout.md`` for the sharding scheme and the serial-equivalence
argument.
"""

from repro.cluster.config import ClusterConfig, build_cluster
from repro.cluster.glm import PartitionedLockManager, shard_of

__all__ = [
    "ClusterConfig",
    "PartitionedLockManager",
    "build_cluster",
    "shard_of",
]
