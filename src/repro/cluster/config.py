"""Config-driven construction of an N-instance scale-out complex."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.stats import StatsRegistry
from repro.faults.injector import NullFaultInjector
from repro.obs.tracer import NullTracer
from repro.sd.complex import SDComplex


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of a scale-out SD complex.

    The defaults are the scale-out baseline the ISSUE asks for: four
    instances, four GLM shards, four-way parallel restart redo.
    ``lock_shards == 1`` / ``redo_parallelism == 1`` degrade to the
    monolithic GLM and the serial redo pass, so a one-instance config
    reproduces the classic complex exactly.
    """

    n_instances: int = 4
    lock_shards: int = 4
    redo_parallelism: int = 4
    n_data_pages: int = 512
    transfer_scheme: str = "medium"
    piggyback_enabled: bool = True
    #: Storage-spine flavour; ``False`` selects the classic
    #: dict-of-bytes disk (the slab-vs-classic equality sweeps).
    slab: bool = True

    def __post_init__(self) -> None:
        if self.n_instances < 1:
            raise ValueError("a cluster needs at least one instance")
        if self.lock_shards < 1:
            raise ValueError("lock_shards must be >= 1")
        if self.redo_parallelism < 1:
            raise ValueError("redo_parallelism must be >= 1")


def build_cluster(
    config: ClusterConfig,
    stats: Optional[StatsRegistry] = None,
    tracer: Optional[NullTracer] = None,
    injector: Optional[NullFaultInjector] = None,
) -> SDComplex:
    """An :class:`SDComplex` with ``config.n_instances`` instances,
    a ``config.lock_shards``-way GLM and partitioned restart redo."""
    sd = SDComplex(
        n_data_pages=config.n_data_pages,
        transfer_scheme=config.transfer_scheme,
        piggyback_enabled=config.piggyback_enabled,
        lock_shards=config.lock_shards,
        redo_parallelism=config.redo_parallelism,
        slab=config.slab,
        stats=stats,
        tracer=tracer,
        injector=injector,
    )
    for system_id in range(1, config.n_instances + 1):
        sd.add_instance(system_id)
    return sd
