"""A partitioned global lock manager.

The lock name space is hashed into ``n_shards`` partitions, each
served by an independent :class:`~repro.locking.lock_manager.LockManager`
(so PR 3's uncontended fast lane survives per shard).  The
:class:`PartitionedLockManager` facade speaks the exact protocol the
monolithic GLM speaks — ``acquire`` / ``try_acquire`` / ``release`` /
``release_all`` / ``holds`` / ``holders`` / ``waiters`` / ``locks_of``
/ ``owners`` / ``resources`` — so :class:`repro.sd.complex.SDComplex`
and :class:`repro.cs.server.CsServer` swap it in transparently.

Two things genuinely cross shards:

* **Deadlock detection.**  A wait-for cycle can span shards (txn A
  waits on a shard-0 resource held by B, B waits on a shard-1 resource
  held by A); a per-shard DFS would never see it.  Each shard is
  therefore constructed with a ``blockers_fn`` that unions blocker
  edges over *all* shards, so the victim choice is identical to the
  monolithic manager's.
* **Fault injection.**  ``acquire`` consults the injector at the
  :data:`~repro.faults.points.GLM_ACQUIRE` point with the target shard
  in context, so a chaos plan can kill one shard's traffic
  deterministically.

Routing uses CRC-32 of ``repr(resource)`` — **not** Python's builtin
``hash``, which is salted per process and would break cross-run
determinism of shard assignment (and with it byte-identical traces).
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.common.stats import (
    CLUSTER_CROSS_SHARD_CHECKS,
    StatsRegistry,
    glm_shard_counter,
)
from repro.faults import points as fpoints
from repro.faults.injector import NULL_INJECTOR, NullFaultInjector
from repro.locking.lock_manager import LockManager, LockMode, LockStatus
from repro.obs.tracer import NULL_TRACER, NullTracer


def shard_of(resource: Hashable, n_shards: int) -> int:
    """The shard index serving ``resource``.

    Deterministic across processes and runs: CRC-32 over the
    resource's ``repr`` (lock names are tuples of strings and ints, so
    their reprs are stable).  ``n_shards == 1`` short-circuits to 0.
    """
    if n_shards <= 1:
        return 0
    return zlib.crc32(repr(resource).encode("utf-8")) % n_shards


class PartitionedLockManager:
    """K independent lock-table shards behind the monolithic GLM API."""

    def __init__(
        self,
        n_shards: int,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
        injector: Optional[NullFaultInjector] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("a partitioned GLM needs at least one shard")
        self.n_shards = n_shards
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.shards: List[LockManager] = [
            LockManager(
                stats=self.stats,
                tracer=self.tracer,
                shard=index,
                blockers_fn=self._global_blockers,
            )
            for index in range(n_shards)
        ]
        self._shard_requests = [
            self.stats.handle(glm_shard_counter(index))
            for index in range(n_shards)
        ]
        self._cross_checks = self.stats.handle(CLUSTER_CROSS_SHARD_CHECKS)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_index(self, resource: Hashable) -> int:
        """The shard index ``resource`` routes to."""
        return shard_of(resource, self.n_shards)

    def _route(self, resource: Hashable) -> LockManager:
        index = shard_of(resource, self.n_shards)
        self._shard_requests[index].bump()
        return self.shards[index]

    # ------------------------------------------------------------------
    # the lock protocol (mirrors LockManager)
    # ------------------------------------------------------------------
    def acquire(
        self, owner: Hashable, resource: Hashable, mode: LockMode
    ) -> LockStatus:
        if self.injector.enabled:
            index = shard_of(resource, self.n_shards)
            self.injector.fire(
                fpoints.GLM_ACQUIRE, shard=index,
            )
        return self._route(resource).acquire(owner, resource, mode)

    def try_acquire(
        self, owner: Hashable, resource: Hashable, mode: LockMode
    ) -> LockStatus:
        return self._route(resource).try_acquire(owner, resource, mode)

    def release(self, owner: Hashable, resource: Hashable) -> List[Hashable]:
        shard = self.shards[shard_of(resource, self.n_shards)]
        return shard.release(owner, resource)

    def release_all(self, owner: Hashable) -> List[Tuple[Hashable, Hashable]]:
        promoted: List[Tuple[Hashable, Hashable]] = []
        for shard in self.shards:
            promoted.extend(shard.release_all(owner))
        return promoted

    # ------------------------------------------------------------------
    # read-only views
    # ------------------------------------------------------------------
    def holds(self, owner: Hashable, resource: Hashable,
              mode: Optional[LockMode] = None) -> bool:
        shard = self.shards[shard_of(resource, self.n_shards)]
        return shard.holds(owner, resource, mode)

    def holders(self, resource: Hashable) -> Dict[Hashable, LockMode]:
        shard = self.shards[shard_of(resource, self.n_shards)]
        return shard.holders(resource)

    def waiters(self, resource: Hashable) -> List[Hashable]:
        shard = self.shards[shard_of(resource, self.n_shards)]
        return shard.waiters(resource)

    def locks_of(self, owner: Hashable) -> Dict[Hashable, LockMode]:
        merged: Dict[Hashable, LockMode] = {}
        for shard in self.shards:
            merged.update(shard.locks_of(owner))
        return merged

    def owners(self) -> Set[Hashable]:
        merged: Set[Hashable] = set()
        for shard in self.shards:
            merged.update(shard.owners())
        return merged

    def resources(self) -> List[Hashable]:
        merged: List[Hashable] = []
        for shard in self.shards:
            merged.extend(shard.resources())
        return merged

    # ------------------------------------------------------------------
    # the cross-shard wait-for graph
    # ------------------------------------------------------------------
    def _global_blockers(self, owner: Hashable) -> List[Hashable]:
        """Blocker edges for ``owner`` across every shard.

        The workload driver parks an owner on at most one acquire at a
        time, so at most one shard has a live wait for it — but the
        owners *blocking* it may hold their other locks anywhere, and
        the DFS in each shard's ``_find_cycle`` re-enters this function
        for every visited owner, stitching the per-shard graphs into
        one.
        """
        self._cross_checks.bump()
        blockers: List[Hashable] = []
        for shard in self.shards:
            blockers.extend(shard._blockers(owner))
        return blockers

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartitionedLockManager(n_shards={self.n_shards}, "
            f"resources={sum(len(s.resources()) for s in self.shards)})"
        )
