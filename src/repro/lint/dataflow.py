"""Intraprocedural dataflow on the :mod:`repro.lint.cfg` graphs.

One generic forward worklist solver plus the two concrete analyses the
flow-aware rules share:

* **reaching definitions** — which assignment sites can define each
  local name at a program point (R012 uses it to decide whether a loop
  iterable is a ``set``/``dict`` built earlier in the function);
* **lockset** — the set of lock receivers held at a program point,
  as a *may* analysis (union join: "possibly still held", what R009
  needs at the exits) or a *must* analysis (intersection join:
  "definitely held", what R010 needs at each shared mutation).

States are immutable (frozensets / tuples of pairs) so the solver can
compare them for the fixpoint test; the worklist is processed in block
id order, which makes every run — and therefore every finding order —
deterministic.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.lint.cfg import CFG, Payload, WithEnter, WithExit, block_calls
from repro.lint.engine import dotted, terminal_name

State = TypeVar("State")


def solve_forward(
    cfg: CFG,
    entry_state: State,
    bottom: State,
    join: Callable[[State, State], State],
    transfer: Callable[[int, State], State],
) -> Dict[int, Tuple[State, State]]:
    """Run a forward analysis to fixpoint.

    ``transfer(block_id, in_state)`` returns the block's out-state.
    Normal edges propagate the predecessor's *out*-state; exception
    edges propagate its *in*-state (the raising statement's effects
    never happened).  Not-yet-reached predecessors contribute the join
    *identity* (they are simply skipped), which makes the iteration
    optimistic — a must analysis (intersection join) converges to the
    greatest fixpoint instead of being poisoned by loop back-edges.
    Blocks the entry never reaches report ``bottom``.  Returns
    ``{block_id: (in_state, out_state)}``.
    """
    preds = cfg.preds()
    in_states: Dict[int, Optional[State]] = {b.id: None for b in cfg.blocks}
    out_states: Dict[int, Optional[State]] = {b.id: None for b in cfg.blocks}
    in_states[cfg.entry] = entry_state
    out_states[cfg.entry] = transfer(cfg.entry, entry_state)
    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            if block.id == cfg.entry:
                continue
            state: Optional[State] = None
            for pred, via_exception in sorted(preds[block.id]):
                carried = (
                    in_states[pred] if via_exception else out_states[pred]
                )
                if carried is None:
                    continue  # not reached yet: join identity
                state = carried if state is None else join(state, carried)
            if state is None:
                continue  # unreachable (so far)
            new_out = transfer(block.id, state)
            if state != in_states[block.id] or new_out != out_states[block.id]:
                in_states[block.id] = state
                out_states[block.id] = new_out
                changed = True
    return {
        b.id: (
            in_states[b.id] if in_states[b.id] is not None else bottom,
            out_states[b.id] if out_states[b.id] is not None else bottom,
        )
        for b in cfg.blocks
    }


# ----------------------------------------------------------------------
# reaching definitions
# ----------------------------------------------------------------------
def _assigned_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _assigned_names(element)
    elif isinstance(target, ast.Starred):
        yield from _assigned_names(target.value)


def payload_definitions(
    payload: Payload,
) -> Iterator[Tuple[str, Optional[ast.AST]]]:
    """``(name, value_expr)`` pairs one payload statement defines.

    ``value_expr`` is the whole RHS for plain assignments and ``None``
    when the bound value is opaque (loop elements, ``with ... as``,
    unpacked tuples, aug-assign results).
    """
    if isinstance(payload, WithEnter):
        for item in payload.node.items:  # type: ignore[attr-defined]
            if item.optional_vars is not None:
                for name in _assigned_names(item.optional_vars):
                    yield name, None
        return
    if isinstance(payload, WithExit):
        return
    stmt = payload
    if isinstance(stmt, ast.Assign):
        simple = len(stmt.targets) == 1 and isinstance(stmt.targets[0],
                                                       ast.Name)
        for target in stmt.targets:
            for name in _assigned_names(target):
                yield name, stmt.value if simple else None
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name) and stmt.value is not None:
            yield stmt.target.id, stmt.value
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            yield stmt.target.id, None
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in _assigned_names(stmt.target):
            yield name, None
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        yield stmt.name, None
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            yield (alias.asname or alias.name).split(".")[0], None


class ReachingDefinitions:
    """Reaching definitions over a CFG.

    A definition site is identified by ``(block_id, name)`` and carries
    the defining value expression (or ``None`` when opaque).  Function
    parameters reach with a ``None`` value from the entry.
    """

    def __init__(self, cfg: CFG, func: ast.AST) -> None:
        self.cfg = cfg
        #: (block_id | "<param>", name) -> value expression of that def.
        self.def_values: Dict[Tuple[object, str], Optional[ast.AST]] = {}
        gen: Dict[int, Dict[str, Tuple[object, str]]] = {}
        for block in cfg.blocks:
            local: Dict[str, Tuple[object, str]] = {}
            for payload in block.stmts:
                for name, value in payload_definitions(payload):
                    key = (block.id, name)
                    local[name] = key
                    self.def_values[key] = value
            gen[block.id] = local

        params: List[str] = []
        args = getattr(func, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                params.append(arg.arg)
            if args.vararg:
                params.append(args.vararg.arg)
            if args.kwarg:
                params.append(args.kwarg.arg)
        entry_state = frozenset(("<param>", name) for name in params)
        for name in params:
            self.def_values[("<param>", name)] = None

        def join(
            a: FrozenSet[Tuple[object, str]],
            b: FrozenSet[Tuple[object, str]],
        ) -> FrozenSet[Tuple[object, str]]:
            return a | b

        def transfer(
            block_id: int, state: FrozenSet[Tuple[object, str]]
        ) -> FrozenSet[Tuple[object, str]]:
            local = gen[block_id]
            if not local:
                return state
            killed = set(local)
            kept = {d for d in state if d[1] not in killed}
            kept.update(local.values())
            return frozenset(kept)

        self.states = solve_forward(
            cfg, entry_state, frozenset(), join, transfer
        )

    def values_at(self, block_id: int, name: str) -> List[Optional[ast.AST]]:
        """Value expressions of every definition of ``name`` that can
        reach the *entry* of ``block_id`` (deterministic order)."""
        in_state, _ = self.states[block_id]
        keys = sorted(
            (d for d in in_state if d[1] == name),
            key=lambda d: (str(d[0]), d[1]),
        )
        return [self.def_values.get(k) for k in keys]


# ----------------------------------------------------------------------
# lockset
# ----------------------------------------------------------------------
_ACQUIRE_METHODS = frozenset({"acquire"})
_RELEASE_METHODS = frozenset({"release"})
_RELEASE_ALL_METHODS = frozenset({"release_all"})


def _call_receiver_dotted(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return dotted(call.func.value)
    return None


class LocksetAnalysis:
    """Which lock receivers are held at each program point.

    ``is_lockish(terminal_receiver_name)`` decides whether an
    ``acquire``/``release`` receiver (or a ``with`` context expression)
    participates.  Lock keys are the dotted receiver (``self._lock``) —
    ``with`` acquisitions get a ``with:``-prefixed key so they never
    collide with explicit acquire/release bookkeeping.

    ``must=True`` joins by intersection ("definitely held" — sound for
    *is this mutation protected*); ``must=False`` joins by union
    ("possibly held" — sound for *can this lock leak out*).
    """

    def __init__(
        self,
        cfg: CFG,
        is_lockish: Callable[[Optional[str]], bool],
        must: bool = False,
    ) -> None:
        self.cfg = cfg
        self.is_lockish = is_lockish
        self.must = must
        self.states = solve_forward(
            cfg,
            frozenset(),
            frozenset(),
            self._join,
            self._transfer,
        )

    def _join(
        self, a: FrozenSet[str], b: FrozenSet[str]
    ) -> FrozenSet[str]:
        # The solver seeds unreached blocks with the empty set; for a
        # must-analysis the empty set is also the sound answer at any
        # join (never claim protection that one path lacks).
        return (a & b) if self.must else (a | b)

    def _transfer(
        self, block_id: int, state: FrozenSet[str]
    ) -> FrozenSet[str]:
        held = set(state)
        for payload in self.cfg.block(block_id).stmts:
            if isinstance(payload, WithEnter):
                for item in payload.node.items:  # type: ignore[attr-defined]
                    if self.is_lockish(terminal_name(item.context_expr)):
                        held.add("with:" + dotted(item.context_expr))
                continue
            if isinstance(payload, WithExit):
                for item in payload.node.items:  # type: ignore[attr-defined]
                    held.discard("with:" + dotted(item.context_expr))
                continue
            for call in block_calls(payload):
                name = terminal_name(call.func)
                receiver = _call_receiver_dotted(call)
                if receiver is None:
                    continue
                receiver_terminal = terminal_name(
                    call.func.value  # type: ignore[union-attr]
                )
                if not self.is_lockish(receiver_terminal):
                    continue
                if name in _ACQUIRE_METHODS:
                    held.add(receiver)
                elif name in _RELEASE_METHODS:
                    held.discard(receiver)
                elif name in _RELEASE_ALL_METHODS:
                    held = {k for k in held if k.startswith("with:")}
        return frozenset(held)

    def held_at_exit(self) -> Dict[str, List[int]]:
        """Lock keys possibly held at either exit -> the exit block ids
        where they are held (``exit_id`` = normal, ``raise_id`` =
        escaping exception)."""
        out: Dict[str, List[int]] = {}
        for exit_id in self.cfg.exit_blocks():
            in_state, _ = self.states[exit_id]
            for key in sorted(in_state):
                out.setdefault(key, []).append(exit_id)
        return out

    def held_before(self, block_id: int) -> FrozenSet[str]:
        return self.states[block_id][0]
