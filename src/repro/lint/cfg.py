"""Per-function control-flow graphs for the flow-aware rules.

The graph is statement-granular: every statement of the function body
becomes one :class:`Block` (compound statements contribute a *header*
block — the ``if`` test, the loop header, the ``with`` items — and
their bodies become sub-graphs).  Two synthetic blocks terminate every
graph:

* ``exit_id`` — normal completion: every ``return`` and the fall-off
  end of the body lead here;
* ``raise_id`` — an exception escaping the function: ``raise``
  statements and call-bearing statements with no enclosing handler
  lead here.

Exception edges are deliberately approximate in the usual linter way:
only statements that *contain a call* or are a ``raise`` are treated as
may-raise (attribute errors from plain loads are ignored — modelling
every expression as throwing would drown the lockset rules in paths
that never happen).  ``try``/``finally`` is modelled with **two copies**
of the finally suite — one entered on normal completion, one on the
exception path — so a may-analysis does not conflate "ran the finally
and carried on" with "ran the finally and propagated".  ``with`` blocks
get :class:`WithEnter`/:class:`WithExit` marker pseudo-statements so an
abstract state (e.g. the lockset) can react to scope entry/exit on both
the normal and the exception path, exactly like a context manager's
``__exit__``.

Known approximations, all conservative for may-analyses: ``return``
routes through the innermost ``finally`` copy only (not the whole
enclosing chain), and a handler is assumed reachable from any may-raise
statement of its ``try`` body regardless of exception type.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)


@dataclass(frozen=True)
class WithEnter:
    """Pseudo-statement: the moment a ``with`` body is entered."""

    node: ast.AST  # the ast.With / ast.AsyncWith


@dataclass(frozen=True)
class WithExit:
    """Pseudo-statement: ``__exit__`` running (normal or exceptional)."""

    node: ast.AST


Payload = Union[ast.stmt, WithEnter, WithExit]


@dataclass
class Block:
    """One CFG node: at most one payload statement plus its out-edges.

    ``succs`` are taken after the payload completes normally;
    ``exc_succs`` are taken when the payload itself raises — a
    dataflow must propagate the block's *in*-state along them (the
    raising statement's effects never happened, e.g. an ``acquire``
    that throws never granted the lock).
    """

    id: int
    stmts: List[Payload] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    exc_succs: List[int] = field(default_factory=list)

    def add_succ(self, block_id: int) -> None:
        if block_id not in self.succs:
            self.succs.append(block_id)

    def add_exc_succ(self, block_id: int) -> None:
        if block_id not in self.exc_succs:
            self.exc_succs.append(block_id)


class CFG:
    """The control-flow graph of one function definition."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.entry: int = self._new()
        self.exit_id: int = self._new()
        self.raise_id: int = self._new()

    def _new(self) -> int:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block.id

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def preds(self) -> Dict[int, List[Tuple[int, bool]]]:
        """Predecessors per block as ``(pred_id, via_exception)`` pairs."""
        out: Dict[int, List[Tuple[int, bool]]] = {
            b.id: [] for b in self.blocks
        }
        for block in self.blocks:
            for succ in block.succs:
                out[succ].append((block.id, False))
            for succ in block.exc_succs:
                out[succ].append((block.id, True))
        return out

    def exit_blocks(self) -> List[int]:
        """Both synthetic exits, normal first."""
        return [self.exit_id, self.raise_id]


class _Frame:
    """Per-construct context the builder threads while recursing."""

    __slots__ = ("break_to", "continue_to", "exc_targets", "finally_stmts")

    def __init__(
        self,
        break_to: Optional[int] = None,
        continue_to: Optional[int] = None,
        exc_targets: Optional[List[int]] = None,
        finally_stmts: Optional[Sequence[ast.stmt]] = None,
    ) -> None:
        self.break_to = break_to
        self.continue_to = continue_to
        self.exc_targets = exc_targets or []
        self.finally_stmts = finally_stmts


#: Predicate deciding whether a given call expression may raise.
CallPredicate = Callable[[ast.Call], bool]


def _stmt_headers(stmt: ast.stmt) -> List[ast.AST]:
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]


def _may_raise(
    stmt: ast.stmt, call_may_raise: Optional[CallPredicate]
) -> bool:
    """Does this statement (header only, for compounds) contain a call?

    ``call_may_raise(call)`` lets a rule declare certain calls
    non-raising (R009 excludes the lock protocol itself, so a bare
    ``release()`` does not manufacture a lock-held exception path).
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for header in _stmt_headers(stmt):
        for node in ast.walk(header):
            if isinstance(node, ast.Call):
                if call_may_raise is None or call_may_raise(node):
                    return True
    return False


class _Builder:
    def __init__(
        self,
        func: ast.AST,
        call_may_raise: Optional[CallPredicate] = None,
    ) -> None:
        self.cfg = CFG()
        self.call_may_raise = call_may_raise
        body = getattr(func, "body", [])
        last = self._build_body(
            body, self.cfg.entry, [_Frame(exc_targets=[self.cfg.raise_id])]
        )
        if last is not None:
            self.cfg.block(last).add_succ(self.cfg.exit_id)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _new_block(self, *payload: Payload) -> int:
        block_id = self.cfg._new()
        self.cfg.block(block_id).stmts.extend(payload)
        return block_id

    def _connect(self, src: Optional[int], dst: int) -> None:
        if src is not None:
            self.cfg.block(src).add_succ(dst)

    def _exc_edges(self, block_id: int, frames: List[_Frame]) -> None:
        """Wire a may-raise block to every enclosing exception target."""
        for target in self._current_exc_targets(frames):
            self.cfg.block(block_id).add_exc_succ(target)

    def _current_exc_targets(self, frames: List[_Frame]) -> List[int]:
        for frame in reversed(frames):
            if frame.exc_targets:
                return frame.exc_targets
        return [self.cfg.raise_id]

    def _innermost(self, frames: List[_Frame], attr: str) -> Optional[int]:
        for frame in reversed(frames):
            value = getattr(frame, attr)
            if value is not None:
                return int(value)
        return None

    # ------------------------------------------------------------------
    # recursive construction
    # ------------------------------------------------------------------
    def _build_body(
        self, stmts: Sequence[ast.stmt], pred: Optional[int],
        frames: List[_Frame],
    ) -> Optional[int]:
        """Build a straight-line suite; returns the open tail block (or
        None when every path out of the suite jumped away)."""
        current = pred
        for stmt in stmts:
            if current is None:
                break  # unreachable code after return/raise/...
            current = self._build_stmt(stmt, current, frames)
        return current

    def _build_stmt(
        self, stmt: ast.stmt, pred: int, frames: List[_Frame]
    ) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, pred, frames)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, pred, frames)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, pred, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, pred, frames)
        if isinstance(stmt, ast.Return):
            block = self._new_block(stmt)
            self._connect(pred, block)
            if _may_raise(stmt, self.call_may_raise):
                self._exc_edges(block, frames)
            self._route_through_finally(block, frames, self.cfg.exit_id)
            return None
        if isinstance(stmt, ast.Raise):
            block = self._new_block(stmt)
            self._connect(pred, block)
            self._exc_edges(block, frames)
            return None
        if isinstance(stmt, ast.Break):
            block = self._new_block(stmt)
            self._connect(pred, block)
            target = self._innermost(frames, "break_to")
            self._route_through_finally(
                block, frames, target if target is not None else self.cfg.exit_id
            )
            return None
        if isinstance(stmt, ast.Continue):
            block = self._new_block(stmt)
            self._connect(pred, block)
            target = self._innermost(frames, "continue_to")
            self._route_through_finally(
                block, frames, target if target is not None else self.cfg.exit_id
            )
            return None
        # Simple statement (incl. nested def/class, which we do not enter).
        block = self._new_block(stmt)
        self._connect(pred, block)
        if _may_raise(stmt, self.call_may_raise):
            self._exc_edges(block, frames)
        return block

    def _route_through_finally(
        self, block: int, frames: List[_Frame], target: int
    ) -> None:
        """A jump (return/break/continue) runs the innermost pending
        ``finally`` suite before reaching its target."""
        for index in range(len(frames) - 1, -1, -1):
            frame = frames[index]
            if frame.finally_stmts is not None:
                entry = self._new_block()
                self._connect(block, entry)
                outer = frames[:index] or [_Frame(
                    exc_targets=[self.cfg.raise_id])]
                tail = self._build_body(
                    list(frame.finally_stmts), entry, outer
                )
                if tail is not None:
                    self._connect(tail, target)
                return
        self._connect(block, target)

    def _build_if(
        self, stmt: ast.If, pred: int, frames: List[_Frame]
    ) -> Optional[int]:
        header = self._new_block(stmt)
        self._connect(pred, header)
        if _may_raise(stmt, self.call_may_raise):
            self._exc_edges(header, frames)
        join = self._new_block()
        then_tail = self._build_body(stmt.body, header, frames)
        if then_tail is not None:
            self._connect(then_tail, join)
        if stmt.orelse:
            else_tail = self._build_body(stmt.orelse, header, frames)
            if else_tail is not None:
                self._connect(else_tail, join)
        else:
            self._connect(header, join)
        return join if self.cfg.block(join).succs or self._has_preds(join) \
            else None

    def _has_preds(self, block_id: int) -> bool:
        return any(
            block_id in b.succs or block_id in b.exc_succs
            for b in self.cfg.blocks
        )

    def _build_loop(
        self,
        stmt: Union[ast.While, ast.For, ast.AsyncFor],
        pred: int,
        frames: List[_Frame],
    ) -> Optional[int]:
        header = self._new_block(stmt)
        self._connect(pred, header)
        if _may_raise(stmt, self.call_may_raise):
            self._exc_edges(header, frames)
        after = self._new_block()
        loop_frames = frames + [_Frame(break_to=after, continue_to=header)]
        body_tail = self._build_body(stmt.body, header, loop_frames)
        if body_tail is not None:
            self._connect(body_tail, header)  # back edge
        if stmt.orelse:
            else_tail = self._build_body(stmt.orelse, header, frames)
            if else_tail is not None:
                self._connect(else_tail, after)
        else:
            self._connect(header, after)  # loop may not run / may finish
        return after

    def _build_with(
        self,
        stmt: Union[ast.With, ast.AsyncWith],
        pred: int,
        frames: List[_Frame],
    ) -> Optional[int]:
        enter = self._new_block(stmt, WithEnter(stmt))
        self._connect(pred, enter)
        if _may_raise(stmt, self.call_may_raise):
            self._exc_edges(enter, frames)
        # Exceptional __exit__: body raise-edges land here, then the
        # exception keeps propagating outward.
        exc_exit = self._new_block(WithExit(stmt))
        for target in self._current_exc_targets(frames):
            self.cfg.block(exc_exit).add_succ(target)
        body_frames = frames + [_Frame(exc_targets=[exc_exit])]
        body_tail = self._build_body(stmt.body, enter, body_frames)
        after: Optional[int] = None
        if body_tail is not None:
            normal_exit = self._new_block(WithExit(stmt))
            self._connect(body_tail, normal_exit)
            after = self._new_block()
            self._connect(normal_exit, after)
        return after

    def _build_try(
        self, stmt: ast.Try, pred: int, frames: List[_Frame]
    ) -> Optional[int]:
        after = self._new_block()
        has_finally = bool(stmt.finalbody)

        # The exceptional finally copy: handlers that re-raise (and
        # unhandled exceptions) run it, then propagate outward.
        exc_final_entry: Optional[int] = None
        if has_finally:
            exc_final_entry = self._new_block()
            tail = self._build_body(stmt.finalbody, exc_final_entry, frames)
            if tail is not None:
                for target in self._current_exc_targets(frames):
                    self.cfg.block(tail).add_succ(target)

        # Handler entries: exceptions in the try body land on each.
        handler_entries: List[int] = []
        for handler in stmt.handlers:
            handler_entries.append(self._new_block())
        body_exc_targets = list(handler_entries)
        if exc_final_entry is not None:
            # No matching handler (or a raising handler body): the
            # finally still runs on the way out.
            body_exc_targets.append(exc_final_entry)
        elif not handler_entries:
            body_exc_targets.extend(self._current_exc_targets(frames))

        body_frames = frames + [
            _Frame(
                exc_targets=body_exc_targets,
                finally_stmts=stmt.finalbody if has_finally else None,
            )
        ]
        body_tail = self._build_body(stmt.body, pred, body_frames)
        if body_tail is not None and stmt.orelse:
            body_tail = self._build_body(stmt.orelse, body_tail, body_frames)

        # Handler bodies: their own exceptions go to the exceptional
        # finally (or outward); normal completion goes to the normal
        # finally (or straight to after).
        handler_exc = (
            [exc_final_entry] if exc_final_entry is not None
            else self._current_exc_targets(frames)
        )
        handler_tails: List[int] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            h_frames = frames + [_Frame(exc_targets=list(handler_exc))]
            tail = self._build_body(handler.body, entry, h_frames)
            if tail is not None:
                handler_tails.append(tail)

        # The normal finally copy: body/else and handler completions.
        normal_preds = [t for t in [body_tail] + handler_tails if t is not None]
        if has_finally:
            if normal_preds:
                final_entry = self._new_block()
                for tail_id in normal_preds:
                    self._connect(tail_id, final_entry)
                final_tail = self._build_body(stmt.finalbody, final_entry,
                                              frames)
                if final_tail is not None:
                    self._connect(final_tail, after)
        else:
            for tail_id in normal_preds:
                self._connect(tail_id, after)
        return after if self._has_preds(after) else None


def build_cfg(
    func: ast.AST,
    call_may_raise: Optional[CallPredicate] = None,
) -> CFG:
    """Build the CFG of one function/method definition.

    ``call_may_raise`` (default: every call may raise) lets a rule
    narrow the exception edges — R009 passes a predicate that treats
    the lock protocol's own calls as non-raising so a trailing
    ``release()`` does not create a phantom lock-held raise path.
    """
    return _Builder(func, call_may_raise=call_may_raise).cfg


def block_calls(payload: Payload) -> Iterator[ast.Call]:
    """Calls inside one payload statement, excluding nested function
    bodies (their calls belong to the nested scope) and, for compound
    headers, excluding the statement's own body suites."""
    if isinstance(payload, (WithEnter, WithExit)):
        return
    roots: List[ast.AST]
    stmt = payload
    if isinstance(stmt, (ast.If, ast.While)):
        roots = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    else:
        roots = [stmt]
    for root in roots:
        stack: List[ast.AST] = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))


def reachable_blocks(cfg: CFG) -> Set[int]:
    """Block ids reachable from the entry (deterministic DFS)."""
    seen: Set[int] = set()
    stack = [cfg.entry]
    while stack:
        block_id = stack.pop()
        if block_id in seen:
            continue
        seen.add(block_id)
        block = cfg.block(block_id)
        stack.extend(reversed(block.succs + block.exc_succs))
    return seen
