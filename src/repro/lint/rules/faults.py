"""R007 — fault discipline: injected faults come from the injector.

:class:`~repro.common.errors.FaultInjectedError` (and its torn-write
subclass) means exactly one thing: a :class:`repro.faults` injector
fired at a named fault point.  Production code raising one by hand
forges that signal — the chaos campaign would crash a scope no fault
plan armed, hit-count bookkeeping would drift from reality, and a
same-seed replay would not reproduce the raise.  Re-raising a caught
injected fault (a bare ``raise``, or ``raise exc`` of the caught name)
is fine and is how the seams propagate faults; *constructing* one is
the act this rule reserves to ``repro/faults/``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, LintContext, Rule, terminal_name

#: Exception types only the injector may construct-and-raise.
_INJECTABLE = frozenset({"FaultInjectedError", "TornPageError"})

_ALLOWED_PREFIX = "repro/faults/"


class FaultDisciplineRule(Rule):
    id = "R007"
    name = "fault-discipline"
    description = (
        "only repro.faults may raise FaultInjectedError/TornPageError; "
        "everywhere else injected faults are produced by injector.fire()"
    )
    applies_to_tests = True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.module_path.startswith(_ALLOWED_PREFIX):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            # Only flag construction (a Call); ``raise exc`` of a caught
            # fault is propagation, not forgery.
            if not isinstance(node.exc, ast.Call):
                continue
            name = terminal_name(node.exc)
            if name in _INJECTABLE:
                yield ctx.finding(
                    self.id,
                    node,
                    f"raising {name} outside repro.faults forges an "
                    f"injected fault; fire it through a FaultInjector "
                    f"fault point instead",
                )
