"""Rule registry: one module per protocol concern.

Rule IDs are stable and documented in ``docs/static_analysis.md``;
suppression comments reference them, so never renumber.  R001–R007 are
the original per-function pattern matchers; R008–R013 ride on the
flow-aware layer (``cfg``/``dataflow``/``callgraph``).
"""

from typing import Dict, List

from repro.lint.engine import Rule
from repro.lint.rules.clock import ClockDisciplineRule
from repro.lint.rules.determinism import DeterminismHygieneRule
from repro.lint.rules.errors import ErrorDisciplineRule
from repro.lint.rules.faults import FaultDisciplineRule
from repro.lint.rules.locks import LockPairingRule, LockReleasePathsRule
from repro.lint.rules.lsn import LsnHygieneRule
from repro.lint.rules.seams import SeamThreadingRule
from repro.lint.rules.shared import SharedStateUnderLockRule
from repro.lint.rules.spans import SpanDisciplineRule
from repro.lint.rules.stats import StatsDisciplineRule
from repro.lint.rules.wal import WalDisciplineRule, WalPathOrderRule

ALL_RULES: List[Rule] = [
    WalDisciplineRule(),
    ClockDisciplineRule(),
    LsnHygieneRule(),
    LockPairingRule(),
    ErrorDisciplineRule(),
    StatsDisciplineRule(),
    FaultDisciplineRule(),
    SeamThreadingRule(),
    LockReleasePathsRule(),
    SharedStateUnderLockRule(),
    WalPathOrderRule(),
    DeterminismHygieneRule(),
    SpanDisciplineRule(),
]

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID"]
