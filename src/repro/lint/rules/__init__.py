"""Rule registry: one module per protocol concern.

Rule IDs are stable and documented in ``docs/static_analysis.md``;
suppression comments reference them, so never renumber.
"""

from typing import Dict, List

from repro.lint.engine import Rule
from repro.lint.rules.clock import ClockDisciplineRule
from repro.lint.rules.errors import ErrorDisciplineRule
from repro.lint.rules.faults import FaultDisciplineRule
from repro.lint.rules.locks import LockPairingRule
from repro.lint.rules.lsn import LsnHygieneRule
from repro.lint.rules.stats import StatsDisciplineRule
from repro.lint.rules.wal import WalDisciplineRule

ALL_RULES: List[Rule] = [
    WalDisciplineRule(),
    ClockDisciplineRule(),
    LsnHygieneRule(),
    LockPairingRule(),
    ErrorDisciplineRule(),
    StatsDisciplineRule(),
    FaultDisciplineRule(),
]

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID"]
