"""R008 — seam threading for observability and fault injection.

ROADMAP "Conventions for new subsystems" requires that every subsystem
accept the ``tracer=`` (PR 2) and ``injector=`` (PR 4) seams and pass
them down to every subsystem it constructs.  A constructor chain that
drops a seam silently defaults the child to ``NULL_TRACER`` /
``NULL_INJECTOR``: traces lose a whole subtree of events and fault
campaigns can never reach the child — and nothing fails, the coverage
just quietly shrinks.

The rule is interprocedural via the cross-file
:class:`~repro.lint.callgraph.ProjectIndex`: for every function that
has a seam in scope (its own ``tracer``/``injector`` parameter, or a
method of a class whose ``__init__`` accepts one), each constructor
call to a seam-accepting class must pass every seam that both sides
share — by keyword (``tracer=self.tracer`` *or* an explicit
``tracer=NULL_TRACER``, which is a visible decision), by a covering
positional argument, or by a ``*args``/``**kwargs`` splat.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Tuple

from repro.lint.callgraph import SEAM_NAMES
from repro.lint.engine import (
    Finding,
    LintContext,
    Rule,
    function_calls,
    terminal_name,
)


def _own_seams(func: ast.AST) -> FrozenSet[str]:
    """Seam names among the function's own parameters."""
    args = getattr(func, "args", None)
    if args is None:
        return frozenset()
    names = {a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)}
    return frozenset(names & SEAM_NAMES)


def _seam_scopes(
    tree: ast.Module, ctx: LintContext
) -> Iterator[Tuple[ast.AST, FrozenSet[str]]]:
    """Every function definition paired with the seams in its scope."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            signature = ctx.project.seam_classes.get(node.name)
            class_seams = signature.accepts if signature else frozenset()
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, class_seams | _own_seams(item)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, _own_seams(node)


class SeamThreadingRule(Rule):
    id = "R008"
    name = "seam-threading"
    description = (
        "a scope that holds a tracer=/injector= seam must pass it to "
        "every seam-accepting subsystem it constructs (no silently "
        "defaulted NULL_TRACER/NULL_INJECTOR mid-stack)"
    )
    applies_to_tests = False  # fixtures construct bare subsystems freely

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for func, seams in _seam_scopes(ctx.tree, ctx):
            if not seams:
                continue
            for call in function_calls(func):
                class_name = None
                if isinstance(call.func, ast.Name):
                    class_name = call.func.id
                elif isinstance(call.func, ast.Attribute):
                    class_name = call.func.attr
                if class_name is None:
                    continue
                signature = ctx.project.seam_classes.get(class_name)
                if signature is None:
                    continue
                dropped: List[str] = sorted(
                    seam
                    for seam in (signature.accepts & seams)
                    if not signature.passed_by(call, seam)
                )
                for seam in dropped:
                    yield ctx.finding(
                        self.id,
                        call,
                        f"'{class_name}(...)' in "
                        f"'{getattr(func, 'name', '?')}' does not pass "
                        f"'{seam}=' although the enclosing scope holds "
                        f"one — the child silently defaults to the null "
                        f"{seam} and drops its whole event/fault subtree",
                    )
