"""R003 — LSN/LogAddress hygiene.

The paper's whole point (Section 3.2) is that a page's LSN and a log
record's *address* live in different spaces: LSNs are comparable across
the complex, log addresses only within one system's local log.  Python
will happily order a :class:`~repro.common.lsn.LogAddress` against an
``int`` (dataclass ordering vs. TypeError only at runtime, and only on
some operand shapes), so the confusion tends to surface deep inside a
recovery pass.

Checks, all heuristic and name-based (this is a linter, not a type
checker — ``mypy`` covers the nominal-typing half):

* ordering comparisons where one operand is address-like (a
  ``LogAddress(...)`` construction, or a name whose terminal identifier
  contains ``addr``) and the other is LSN-like (an integer literal or a
  name containing ``lsn``/``usn``);
* any ordering comparison against ``NULL_LOG_ADDRESS`` — the sentinel
  must be tested with :func:`repro.common.lsn.is_null_address`;
* ordering two address-like operands outside the modules that own
  address arithmetic (``common/lsn.py`` and ``wal/``) — cross-system
  address order is meaningless; route through the log-manager helpers.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding, LintContext, Rule, terminal_name

_ORDERING = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)

#: Modules allowed to order two LogAddresses (same-log arithmetic).
_ADDRESS_MATH_MODULES = ("common/lsn.py",)
_ADDRESS_MATH_PREFIXES = ("repro/wal/",)


def _terminal(node: ast.AST) -> Optional[str]:
    name = terminal_name(node)
    return name.lower() if name else None


def _is_address_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Call) and terminal_name(node.func) == "LogAddress":
        return True
    name = _terminal(node)
    if name is None:
        return False
    if name == "null_log_address":
        return True
    return "addr" in name or name.endswith("address")


def _is_null_address(node: ast.AST) -> bool:
    return _terminal(node) == "null_log_address"


def _is_lsn_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return not isinstance(node.value, bool)
    name = _terminal(node)
    if name is None:
        return False
    return "lsn" in name or "usn" in name


class LsnHygieneRule(Rule):
    id = "R003"
    name = "lsn-hygiene"
    description = (
        "LogAddress values must not be ordered against LSNs/ints or "
        "across systems; test the null sentinel with is_null_address"
    )
    applies_to_tests = True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        in_address_math = ctx.in_module(*_ADDRESS_MATH_MODULES) or any(
            ctx.module_path.startswith(p) for p in _ADDRESS_MATH_PREFIXES
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for idx, op in enumerate(node.ops):
                if not isinstance(op, _ORDERING):
                    continue
                left, right = operands[idx], operands[idx + 1]
                if _is_null_address(left) or _is_null_address(right):
                    yield ctx.finding(
                        self.id,
                        node,
                        "ordering comparison against NULL_LOG_ADDRESS; use "
                        "is_null_address() — the sentinel's order across "
                        "systems is an accident",
                    )
                    continue
                left_addr, right_addr = _is_address_like(left), _is_address_like(right)
                if left_addr and right_addr:
                    if not in_address_math:
                        yield ctx.finding(
                            self.id,
                            node,
                            "ordering two LogAddresses outside common/lsn.py "
                            "and wal/ — cross-system log-address order is "
                            "meaningless; compare LSNs or go through the "
                            "log-manager helpers",
                        )
                elif (left_addr and _is_lsn_like(right)) or (
                    right_addr and _is_lsn_like(left)
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        "ordering a LogAddress against an LSN/int — these "
                        "live in different address spaces (paper Section "
                        "3.2); compare record.lsn, or addr.offset for "
                        "same-log positions",
                    )
