"""R013 — span discipline: ``with`` usage and per-path span_end.

Spans are the causal backbone of the trace (``repro.obs.spans``
rebuilds the tree from paired ``span.begin``/``span.end`` events), and
the invariant checker treats an unpaired bracket as a protocol
violation.  The safe idiom is the context manager::

    with self.tracer.span(ev.SPAN_COMMIT, system=sid, txn=txn_id):
        ...

which closes the span on the normal exit *and* on a raise.  Two ways
to break the bracket statically:

* calling ``tracer.span(...)`` without entering it — the handle is
  created (and on a recording tracer the ``span.begin`` event is
  emitted) but nothing ever emits the ``span.end``;
* using the manual ``span_begin``/``span_end`` API with a path out of
  the function (an early ``return``, or a may-raise call with no
  ``try``/``finally``) on which the ``span_end`` never runs.

The first check is syntactic; the second is a may-analysis on the PR 6
CFG, exactly like R009's lockset-at-exit check: the set of receivers
with an open manual span must be empty at the normal exit and at the
escaping-exception exit.  The span protocol's own calls are modelled
as non-raising so a bare trailing ``span_end()`` does not manufacture
a phantom open-at-raise path.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional

from repro.lint.cfg import CFG, WithEnter, WithExit, block_calls, build_cfg
from repro.lint.dataflow import solve_forward
from repro.lint.engine import (
    Finding,
    LintContext,
    Rule,
    dotted,
    function_calls,
    terminal_name,
    walk_functions,
)

_BEGIN = "span_begin"
_END = "span_end"
_SPAN_PROTOCOL = frozenset({"span", _BEGIN, _END})


def _tracerish(name: Optional[str]) -> bool:
    return name is not None and "tracer" in name.lower()


def _is_span_protocol_call(call: ast.Call) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _SPAN_PROTOCOL
        and _tracerish(terminal_name(call.func.value))
    )


class _OpenSpanAnalysis:
    """May-analysis: receivers with a manually-begun, un-ended span."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.states = solve_forward(
            cfg,
            frozenset(),
            frozenset(),
            lambda a, b: a | b,
            self._transfer,
        )

    def _transfer(
        self, block_id: int, state: FrozenSet[str]
    ) -> FrozenSet[str]:
        open_spans = set(state)
        for payload in self.cfg.block(block_id).stmts:
            if isinstance(payload, (WithEnter, WithExit)):
                continue  # with-spans close themselves by construction
            for call in block_calls(payload):
                if not isinstance(call.func, ast.Attribute):
                    continue
                if not _tracerish(terminal_name(call.func.value)):
                    continue
                receiver = dotted(call.func.value)
                if call.func.attr == _BEGIN:
                    open_spans.add(receiver)
                elif call.func.attr == _END:
                    open_spans.discard(receiver)
        return frozenset(open_spans)

    def open_at_exit(self) -> Dict[str, List[int]]:
        out: Dict[str, List[int]] = {}
        for exit_id in self.cfg.exit_blocks():
            in_state, _ = self.states[exit_id]
            for key in sorted(in_state):
                out.setdefault(key, []).append(exit_id)
        return out


class SpanDisciplineRule(Rule):
    id = "R013"
    name = "span-discipline"
    description = (
        "tracer.span(...) must be entered as a with context manager, "
        "and a manual span_begin must reach a span_end on every normal "
        "and raise exit path"
    )
    applies_to_tests = False  # tests build broken brackets on purpose

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for func in walk_functions(ctx.tree):
            yield from self._check_with_usage(ctx, func)
            yield from self._check_manual_pairing(ctx, func)

    def _check_with_usage(
        self, ctx: LintContext, func: ast.AST
    ) -> Iterator[Finding]:
        entered = set()
        returned = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    entered.add(id(item.context_expr))
            elif isinstance(node, ast.Return) and node.value is not None:
                # ``return self.tracer.span(...)`` hands the bracket to
                # the caller; the factory itself is not the leak.
                returned.add(id(node.value))
        for call in function_calls(func):
            if not isinstance(call.func, ast.Attribute):
                continue
            if call.func.attr != "span":
                continue
            if not _tracerish(terminal_name(call.func.value)):
                continue
            if id(call) in entered or id(call) in returned:
                continue
            yield ctx.finding(
                self.id,
                call,
                f"'{dotted(call.func.value)}.span(...)' is not entered "
                "as a context manager — the span.begin is emitted but "
                "nothing ever emits the span.end; write "
                "'with tracer.span(...):'",
            )

    def _check_manual_pairing(
        self, ctx: LintContext, func: ast.AST
    ) -> Iterator[Finding]:
        begins: Dict[str, List[ast.Call]] = {}
        for call in function_calls(func):
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == _BEGIN
                and _tracerish(terminal_name(call.func.value))
            ):
                begins.setdefault(dotted(call.func.value), []).append(call)
        if not begins:
            return

        cfg = build_cfg(
            func, call_may_raise=lambda c: not _is_span_protocol_call(c)
        )
        analysis = _OpenSpanAnalysis(cfg)
        for key, exit_ids in sorted(analysis.open_at_exit().items()):
            calls = begins.get(key)
            if not calls:
                continue
            paths = []
            if cfg.exit_id in exit_ids:
                paths.append("a normal return path")
            if cfg.raise_id in exit_ids:
                paths.append("an escaping-exception path")
            where = " and ".join(paths)
            for call in sorted(calls, key=lambda c: (c.lineno, c.col_offset)):
                yield ctx.finding(
                    self.id,
                    call,
                    f"'{key}.span_begin' has no span_end on {where} out "
                    f"of '{getattr(func, 'name', '?')}'; guard it with "
                    "try/finally or use 'with tracer.span(...)'",
                )
