"""R010 — shared-state mutations in thread workers need the lockset.

PR 5's parallel partitioned redo runs worker callables on a
``ThreadPoolExecutor``; the documented discipline (cluster/redo.py) is
that workers touch only their private partition state and the parent
performs all shared write-back after ``join``.  A worker that mutates
state it did not create — an attribute reached through a parameter or
``self``, a captured container — is a data race unless the mutation
happens while a lock is definitely held.

Mechanics: :class:`~repro.lint.callgraph.ModuleGraph` finds the worker
callables (functions handed to ``submit``/``map``/``Thread(target=)``
plus their local transitive callees); inside each, a *must*-lockset
over the CFG decides whether each mutation site is protected.
Mutations of objects the worker itself constructs (fresh containers,
local dataclass instances) are private by definition and exempt.
Intentional parent-only write-back phases document themselves with a
``# reprolint: disable=R010`` pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.callgraph import ModuleGraph
from repro.lint.cfg import Payload, WithEnter, WithExit, build_cfg
from repro.lint.dataflow import LocksetAnalysis
from repro.lint.engine import (
    Finding,
    LintContext,
    Rule,
    dotted,
    terminal_name,
)

#: Method names that mutate their receiver in-place.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "add", "update", "remove", "discard", "pop",
        "popitem", "clear", "insert", "setdefault", "sort", "reverse",
        # domain mutators: trace/stat sinks and the buffer/disk layer
        "emit", "incr", "incr_labeled", "observe", "bump",
        "write_page", "write", "put", "force", "fix", "unfix", "register",
    }
)

#: Constructor-ish callables whose result is private to the caller.
_FRESH_BUILTINS = frozenset(
    {"list", "dict", "set", "tuple", "frozenset", "sorted", "bytearray",
     "defaultdict", "Counter", "deque", "OrderedDict"}
)


def _lockish(name: Optional[str]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return "lock" in lowered or lowered in ("glm", "lm", "llm")


def _is_fresh_value(value: ast.AST) -> bool:
    """Does this RHS build a brand-new object the function owns?"""
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = terminal_name(value.func)
        if name is None:
            return False
        return (
            name in _FRESH_BUILTINS
            or name.lstrip("_")[:1].isupper()  # incl. private _Outcome
        )
    return False


def _locally_created(func: ast.AST) -> Set[str]:
    """Names the function binds to freshly-constructed objects."""
    fresh: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _is_fresh_value(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    fresh.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if (
                node.value is not None
                and _is_fresh_value(node.value)
                and isinstance(node.target, ast.Name)
            ):
                fresh.add(node.target.id)
    return fresh


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _payload_roots(payload: Payload) -> List[ast.AST]:
    """The expressions a CFG payload evaluates *itself* — compound
    statements contribute only their header (their bodies live in
    their own blocks, with their own lockset)."""
    if isinstance(payload, (WithEnter, WithExit)):
        return []
    stmt = payload
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]


def _payload_mutations(
    payload: Payload, fresh: Set[str]
) -> Iterator[Tuple[ast.AST, str]]:
    """(node, description) for each shared-state mutation in a payload."""
    if isinstance(payload, ast.Assign):
        targets: List[ast.AST] = list(payload.targets)
    elif isinstance(payload, (ast.AugAssign, ast.AnnAssign)):
        targets = [payload.target]
    else:
        targets = []
    for target in targets:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if root is not None and root not in fresh:
                yield target, f"write to '{dotted(target)}'"
    for root_expr in _payload_roots(payload):
        stack: List[ast.AST] = [root_expr]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _MUTATING_METHODS:
                continue
            root = _root_name(node.func.value)
            if root is None or root in fresh:
                continue
            if _lockish(terminal_name(node.func.value)):
                continue  # the lock protocol itself is not shared data
            receiver = dotted(node.func.value)
            yield node, f"'{receiver}.{node.func.attr}(...)'"


class SharedStateUnderLockRule(Rule):
    id = "R010"
    name = "shared-state-under-lock"
    description = (
        "thread-worker callables must mutate shared (non-locally-"
        "created) state only while a lock is definitely held; "
        "parent-only write-back phases carry an explicit pragma"
    )
    applies_to_tests = False  # test workers hammer shared state on purpose

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        graph = ModuleGraph(ctx.tree)
        workers = graph.worker_functions()
        if not workers:
            return
        for name in sorted(workers):
            func = graph.functions[name]
            yield from self._check_worker(ctx, name, func)

    def _check_worker(
        self, ctx: LintContext, name: str, func: ast.AST
    ) -> Iterator[Finding]:
        fresh = _locally_created(func)
        cfg = build_cfg(func)
        lockset = LocksetAnalysis(cfg, _lockish, must=True)
        reported: Dict[Tuple[int, int], bool] = {}
        for block in cfg.blocks:
            protected = bool(lockset.held_before(block.id))
            for payload in block.stmts:
                for node, what in _payload_mutations(payload, fresh):
                    site = (
                        getattr(node, "lineno", 0),
                        getattr(node, "col_offset", 0),
                    )
                    if protected or reported.get(site):
                        reported[site] = True
                        continue
                    if site in reported:
                        continue
                    reported[site] = False
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{what} in thread-worker '{name}' with an empty "
                        "lockset — shared state mutated off the parent "
                        "thread is a data race; hold a lock or keep the "
                        "write-back in the parent (pragma if intentional)",
                    )
