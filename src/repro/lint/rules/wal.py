"""R001 — WAL discipline for page_LSN updates; R011 — per-path order.

The paper's WAL protocol requires that a page's ``page_lsn`` advance
only as the result of a logged update: normal processing stamps the LSN
the log manager just assigned (Section 3.2.1), redo stamps the record's
LSN, undo stamps the CLR's LSN.  Any other write to ``page_lsn``
bypasses the protocol and silently breaks the page_LSN test that both
restart and media recovery rely on.

Two checks:

* **R001a** — assignment to a ``page_lsn`` attribute anywhere outside
  the two modules that own the protocol (``storage/page.py`` defines
  the setter; ``recovery/apply.py`` holds the stamping helpers).
* **R001b** — a function that mutates page contents (``insert_record``,
  ``update_record``, ``delete_record``, ``insert_record_at``,
  ``write_payload``) without any sign of logging in the same function:
  no ``*.append`` on a log-ish receiver, no ``apply_*`` helper, no call
  to a ``*log*``-named wrapper.  Page mutations that are never logged
  cannot be redone and violate WAL.

**R011** is the flow-sensitive refinement: in a function that *does*
log (so R001b stays quiet), every CFG path from a page mutation to the
function's normal exit must still pass a logging call — an early
``return`` or a branch that skips the append leaves that path's
mutation unlogged even though the function "logs somewhere".  The
escaping-exception exit is deliberately not checked: a raise between
mutation and append is the abort path, and recovery undoes it.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.cfg import build_cfg, block_calls
from repro.lint.dataflow import solve_forward
from repro.lint.engine import (
    Finding,
    LintContext,
    Rule,
    function_calls,
    terminal_name,
    walk_functions,
)

#: Modules allowed to assign ``page_lsn`` directly.
_ALLOWED_ASSIGN = ("storage/page.py", "recovery/apply.py")

#: Module prefixes exempt from the mutation-without-logging check:
#: the storage layer is *below* WAL (space-map bit flips are logged by
#: their callers), and apply.py is the redo/undo executor itself.
_ALLOWED_MUTATE_PREFIXES = ("repro/storage/",)

_MUTATORS = frozenset(
    {
        "insert_record",
        "insert_record_at",
        "update_record",
        "delete_record",
        "write_payload",
    }
)

_APPLY_HELPERS = frozenset(
    {"apply_op", "apply_redo", "apply_undo", "apply_payload", "stamp_page_lsn"}
)

_APPENDS = frozenset({"append", "append_raw"})


def _receiver_name(call: ast.Call) -> Optional[str]:
    """Terminal identifier of the object a method is called on."""
    if isinstance(call.func, ast.Attribute):
        return terminal_name(call.func.value)
    return None


def _is_logging_call(call: ast.Call) -> bool:
    name = terminal_name(call.func)
    if name is None:
        return False
    if name in _APPLY_HELPERS:
        return True
    if name in _APPENDS:
        receiver = _receiver_name(call)
        return receiver is not None and "log" in receiver.lower()
    # Wrappers like ``self._log(...)`` / ``self._log_applied_update(...)``.
    return "log" in name.lower()


class WalDisciplineRule(Rule):
    id = "R001"
    name = "wal-discipline"
    description = (
        "page_lsn must be stamped via storage/page.py or "
        "recovery/apply.py, and page mutations must be logged"
    )
    applies_to_tests = False  # tests build pages directly by design

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        yield from self._check_assignments(ctx)
        yield from self._check_unlogged_mutations(ctx)

    # -- R001a ---------------------------------------------------------
    def _check_assignments(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module(*_ALLOWED_ASSIGN):
            return
        for node in ast.walk(ctx.tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == "page_lsn":
                    yield ctx.finding(
                        self.id,
                        node,
                        "direct page_lsn write outside the WAL path; "
                        "use recovery.apply.stamp_page_lsn / apply_redo "
                        "/ apply_payload",
                    )

    # -- R001b ---------------------------------------------------------
    def _check_unlogged_mutations(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module(*_ALLOWED_ASSIGN):
            return
        if any(ctx.module_path.startswith(p) for p in _ALLOWED_MUTATE_PREFIXES):
            return
        for func in walk_functions(ctx.tree):
            mutations = []
            logged = False
            for call in function_calls(func):
                name = terminal_name(call.func)
                if (
                    isinstance(call.func, ast.Attribute)
                    and name in _MUTATORS
                ):
                    mutations.append(call)
                if _is_logging_call(call):
                    logged = True
            if mutations and not logged:
                for call in mutations:
                    yield ctx.finding(
                        self.id,
                        call,
                        f"page mutation '{terminal_name(call.func)}' in "
                        f"'{getattr(func, 'name', '?')}' with no log append "
                        "in the same function (unlogged update cannot be "
                        "redone)",
                    )

# ----------------------------------------------------------------------
# R011 — per-path WAL ordering (CFG/dataflow)
# ----------------------------------------------------------------------
#: Abstract state: (log-seen-on-every-path-so-far, unlogged mutations).
_WalState = Tuple[bool, FrozenSet[Tuple[int, int, str]]]


class WalPathOrderRule(Rule):
    id = "R011"
    name = "wal-path-order"
    description = (
        "every CFG path that mutates a page must pass a log append; a "
        "branch or early return that skips the append leaves that "
        "path's mutation unlogged"
    )
    applies_to_tests = False  # mirrors R001

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module(*_ALLOWED_ASSIGN):
            return
        if any(ctx.module_path.startswith(p) for p in _ALLOWED_MUTATE_PREFIXES):
            return
        for func in walk_functions(ctx.tree):
            yield from self._check_function(ctx, func)

    def _check_function(
        self, ctx: LintContext, func: ast.AST
    ) -> Iterator[Finding]:
        # Only functions that log somewhere: fully unlogged mutators are
        # R001b's finding, and reporting both would be noise.
        mutators: List[ast.Call] = []
        logs = False
        for call in function_calls(func):
            name = terminal_name(call.func)
            if isinstance(call.func, ast.Attribute) and name in _MUTATORS:
                mutators.append(call)
            if _is_logging_call(call):
                logs = True
        if not mutators or not logs:
            return

        sites = {
            (c.lineno, c.col_offset, terminal_name(c.func) or "?"): c
            for c in mutators
        }
        cfg = build_cfg(func)

        def join(a: _WalState, b: _WalState) -> _WalState:
            return (a[0] and b[0], a[1] | b[1])

        def transfer(block_id: int, state: _WalState) -> _WalState:
            has_log, naked = state
            for payload in cfg.block(block_id).stmts:
                pending = set(naked)
                logged_here = False
                for call in block_calls(payload):
                    name = terminal_name(call.func)
                    if (
                        isinstance(call.func, ast.Attribute)
                        and name in _MUTATORS
                        and not has_log
                    ):
                        pending.add(
                            (call.lineno, call.col_offset, name or "?")
                        )
                    if _is_logging_call(call):
                        logged_here = True
                if logged_here:
                    # The append covers this path: earlier mutations on
                    # it are now bracketed by a log record.
                    has_log, pending = True, set()
                naked = frozenset(pending)
            return (has_log, naked)

        bottom: _WalState = (False, frozenset())
        states = solve_forward(cfg, bottom, bottom, join, transfer)
        _, exit_naked = states[cfg.exit_id][0]
        for site in sorted(exit_naked):
            call = sites.get(site)
            if call is None:
                continue
            yield ctx.finding(
                self.id,
                call,
                f"page mutation '{site[2]}' in "
                f"'{getattr(func, 'name', '?')}' reaches the function "
                "exit on a path with no log append (the function logs "
                "on other paths) — every mutating path must write the "
                "log record",
            )
