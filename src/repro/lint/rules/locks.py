"""R004 — lock acquire/release pairing; R009 — release on all paths.

The global lock manager's single-threaded protocol (DESIGN.md; paper
Section 2) parks conflicting requests instead of blocking, so a lock
that is acquired and never released does not deadlock the process — it
silently serialises every later transaction that touches the resource.
That failure mode never crashes a test; it just makes results wrong
under concurrency.

R004 is the scope-level heuristic: within one class (or the module's
top-level functions taken together), any call to ``*.acquire`` /
``*.try_acquire`` on a lock-ish receiver (terminal identifier
containing ``lock`` or ``lm``/``glm``) must be matched by at least one
``*.release`` / ``*.release_all`` call, or a ``with`` statement over
the same kind of receiver, somewhere in the same scope.

R009 is the per-path refinement on top of the CFG: inside a function
that both acquires *and* releases locally (a self-contained critical
section — cross-method protocols stay R004's domain), the may-lockset
must be empty at the normal exit and at the escaping-exception exit.
An early ``return`` that skips the release, or a call between
``acquire`` and ``release`` with no ``try``/``finally`` guarding the
release, both leave a path on which the lock leaks.  The lock
protocol's own calls are modelled as non-raising so a bare trailing
``release()`` does not manufacture a phantom held-at-raise path.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import LocksetAnalysis
from repro.lint.engine import (
    Finding,
    LintContext,
    Rule,
    dotted,
    function_calls,
    terminal_name,
    walk_functions,
)

_ACQUIRES = frozenset({"acquire", "try_acquire"})
_RELEASES = frozenset({"release", "release_all"})


def _lockish(name: Optional[str]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return "lock" in lowered or lowered in ("glm", "lm", "llm")


def _receiver(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return terminal_name(call.func.value)
    return None


class LockPairingRule(Rule):
    id = "R004"
    name = "lock-pairing"
    description = (
        "lock-manager acquire without any matching release/release_all "
        "in the same class or module scope"
    )
    applies_to_tests = False  # tests exercise unpaired acquires on purpose

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        scopes: List[Tuple[str, List[ast.stmt]]] = []
        module_level: List[ast.stmt] = []
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                scopes.append((node.name, node.body))
            else:
                module_level.append(node)
        scopes.append(("<module>", module_level))
        for scope_name, body in scopes:
            acquires: List[ast.Call] = []
            released = False
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        name = terminal_name(node.func)
                        if (
                            name in _ACQUIRES
                            and isinstance(node.func, ast.Attribute)
                            and _lockish(_receiver(node))
                        ):
                            acquires.append(node)
                        elif name in _RELEASES and isinstance(
                            node.func, ast.Attribute
                        ):
                            released = True
                    elif isinstance(node, (ast.With, ast.AsyncWith)):
                        for item in node.items:
                            if _lockish(terminal_name(item.context_expr)):
                                released = True  # context manager pairs itself
            if acquires and not released:
                for call in acquires:
                    yield ctx.finding(
                        self.id,
                        call,
                        f"'{_receiver(call)}.{terminal_name(call.func)}' in "
                        f"scope '{scope_name}' has no matching release/"
                        "release_all anywhere in the scope — leaked locks "
                        "serialise all later transactions",
                    )

# ----------------------------------------------------------------------
# R009 — per-path release (CFG/lockset)
# ----------------------------------------------------------------------
_LOCK_PROTOCOL = frozenset({"acquire", "try_acquire", "release", "release_all"})


def _is_lock_protocol_call(call: ast.Call) -> bool:
    """A lock-protocol method call on a lock-ish receiver."""
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _LOCK_PROTOCOL
        and _lockish(terminal_name(call.func.value))
    )


class LockReleasePathsRule(Rule):
    id = "R009"
    name = "lock-release-paths"
    description = (
        "an acquired lock must be released on every CFG path out of "
        "the function, including exception edges (use try/finally or "
        "the context manager)"
    )
    applies_to_tests = False  # tests exercise leaked locks on purpose

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for func in walk_functions(ctx.tree):
            yield from self._check_function(ctx, func)

    def _check_function(
        self, ctx: LintContext, func: ast.AST
    ) -> Iterator[Finding]:
        # Only self-contained critical sections: the function must both
        # acquire and release locally.  ``try_acquire`` may legitimately
        # fail, so its conditional release pattern is left to R004.
        acquires: Dict[str, List[ast.Call]] = {}
        releases = False
        for call in function_calls(func):
            if not isinstance(call.func, ast.Attribute):
                continue
            if not _lockish(terminal_name(call.func.value)):
                continue
            if call.func.attr == "acquire":
                acquires.setdefault(dotted(call.func.value), []).append(call)
            elif call.func.attr in _RELEASES:
                releases = True
        if not acquires or not releases:
            return

        cfg = build_cfg(
            func, call_may_raise=lambda c: not _is_lock_protocol_call(c)
        )
        lockset = LocksetAnalysis(cfg, _lockish, must=False)
        leaked = lockset.held_at_exit()
        for key, exit_ids in sorted(leaked.items()):
            if key.startswith("with:"):
                continue  # context managers release by construction
            calls = acquires.get(key)
            if not calls:
                continue
            paths = []
            if cfg.exit_id in exit_ids:
                paths.append("a normal return path")
            if cfg.raise_id in exit_ids:
                paths.append("an escaping-exception path")
            where = " and ".join(paths)
            for call in sorted(calls, key=lambda c: (c.lineno, c.col_offset)):
                yield ctx.finding(
                    self.id,
                    call,
                    f"'{key}.acquire' is not released on {where} out of "
                    f"'{getattr(func, 'name', '?')}'; guard the release "
                    "with try/finally or use the context manager",
                )
