"""R004 — lock acquire/release pairing.

The global lock manager's single-threaded protocol (DESIGN.md; paper
Section 2) parks conflicting requests instead of blocking, so a lock
that is acquired and never released does not deadlock the process — it
silently serialises every later transaction that touches the resource.
That failure mode never crashes a test; it just makes results wrong
under concurrency.

Scope-level heuristic: within one class (or the module's top-level
functions taken together), any call to ``*.acquire``/``*.try_acquire``
on a lock-ish receiver (terminal identifier containing ``lock`` or
``lm``/``glm``) must be matched by at least one ``*.release`` /
``*.release_all`` call, or a ``with`` statement over the same kind of
receiver, somewhere in the same scope.  Per-path analysis is out of
scope for an AST linter; the runtime verifier covers leaks the
heuristic cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.engine import Finding, LintContext, Rule, terminal_name

_ACQUIRES = frozenset({"acquire", "try_acquire"})
_RELEASES = frozenset({"release", "release_all"})


def _lockish(name: Optional[str]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return "lock" in lowered or lowered in ("glm", "lm", "llm")


def _receiver(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return terminal_name(call.func.value)
    return None


class LockPairingRule(Rule):
    id = "R004"
    name = "lock-pairing"
    description = (
        "lock-manager acquire without any matching release/release_all "
        "in the same class or module scope"
    )
    applies_to_tests = False  # tests exercise unpaired acquires on purpose

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        scopes: List[Tuple[str, List[ast.stmt]]] = []
        module_level: List[ast.stmt] = []
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                scopes.append((node.name, node.body))
            else:
                module_level.append(node)
        scopes.append(("<module>", module_level))
        for scope_name, body in scopes:
            acquires: List[ast.Call] = []
            released = False
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        name = terminal_name(node.func)
                        if (
                            name in _ACQUIRES
                            and isinstance(node.func, ast.Attribute)
                            and _lockish(_receiver(node))
                        ):
                            acquires.append(node)
                        elif name in _RELEASES and isinstance(
                            node.func, ast.Attribute
                        ):
                            released = True
                    elif isinstance(node, (ast.With, ast.AsyncWith)):
                        for item in node.items:
                            if _lockish(terminal_name(item.context_expr)):
                                released = True  # context manager pairs itself
            if acquires and not released:
                for call in acquires:
                    yield ctx.finding(
                        self.id,
                        call,
                        f"'{_receiver(call)}.{terminal_name(call.func)}' in "
                        f"scope '{scope_name}' has no matching release/"
                        "release_all anywhere in the scope — leaked locks "
                        "serialise all later transactions",
                    )
