"""R006 — stats discipline: counter names are constants, not literals.

Every benchmark claim in EXPERIMENTS.md is a sentence about a counter.
When a counter name is an inline string literal at the increment site,
a typo mints a *new* counter silently — the old one reads zero, the
benchmark "improves", and nothing fails.  Keeping every counter name in
a module-level constant (``repro/common/stats.py`` for shared counters)
means a typo is a ``NameError``, the full counter vocabulary is
greppable in one file, and renames touch one line.

The rule flags string-literal (or f-string) *name* arguments to the
counter/histogram entry points — ``stats.incr("...")``,
``metrics.observe("...", v)``, ``metrics.incr_labeled("...", k=v)`` —
on receivers whose terminal name suggests a stats registry.  Computed
names built from constants (``message_kind_counter(kind)``,
``labeled_name(...)``) are fine: the flagged pattern is specifically a
bare literal at the call site.

``repro/common/stats.py`` and ``repro/obs/metrics.py`` are exempt:
they *define* the naming scheme.  Test modules are exempt too —
throwaway counter names in a registry unit test are the point of the
test, not a protocol hazard.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, LintContext, Rule

_EXEMPT_MODULES = ("common/stats.py", "obs/metrics.py")

#: Methods whose first positional argument is a counter/histogram name.
#: ``handle`` mints the pre-resolved fast-lane counters (PR 3) — the
#: name is interned once, but a typo there silently forks a counter for
#: the whole lifetime of the handle, so the discipline applies doubly.
_NAME_TAKING_METHODS = frozenset({"incr", "observe", "incr_labeled",
                                  "get", "get_labeled", "histogram",
                                  "handle"})

#: Receiver terminal names that look like a stats/metrics registry.
_REGISTRY_RECEIVERS = frozenset({"stats", "metrics", "registry"})


def _receiver_terminal(node: ast.AST) -> str:
    """``self.stats`` -> ``stats``; ``metrics`` -> ``metrics``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class StatsDisciplineRule(Rule):
    id = "R006"
    name = "stats-discipline"
    description = (
        "counter and histogram names must come from named constants, "
        "not inline string literals"
    )
    applies_to_tests = False  # unit tests may mint throwaway counters

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module(*_EXEMPT_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _NAME_TAKING_METHODS:
                continue
            if _receiver_terminal(func.value) not in _REGISTRY_RECEIVERS:
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                yield ctx.finding(
                    self.id,
                    name_arg,
                    f"inline counter name {name_arg.value!r} passed to "
                    f".{func.attr}(); use a named constant (see "
                    "repro/common/stats.py) so typos fail loudly",
                )
            elif isinstance(name_arg, ast.JoinedStr):
                yield ctx.finding(
                    self.id,
                    name_arg,
                    f"f-string counter name passed to .{func.attr}(); "
                    "derive the name through a helper built on constants "
                    "(e.g. message_kind_counter)",
                )
