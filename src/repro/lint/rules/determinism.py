"""R012 — determinism hygiene in trace-emitting code.

PR 2's guarantee is that two runs with the same seed produce
byte-identical JSONL traces; E1 capture regression-tests exactly that.
The guarantee dies quietly whenever event *ordering* depends on
iteration order of an unordered container, on CPython object addresses,
or on real time.  This rule enforces it statically in precisely the
code that can reach the trace stream: the module call graph's
"emitting" closure — functions that call ``*.emit`` on a tracer-ish
receiver directly or through a local callee.

Inside an emitting function, the rule flags:

* a ``for`` loop whose body (transitively) emits and whose iterable is
  set-like — a ``set``/``frozenset`` display, comprehension or
  constructor call, or a name whose reaching definitions include one;
* the same for raw dict views (``.keys()``/``.values()``/``.items()``)
  not wrapped in ``sorted(...)`` — insertion order is deterministic in
  CPython but depends on arrival order, which is exactly what parallel
  phases perturb (the parent-side ``sorted(per_page)`` write-back in
  cluster/redo.py is the canonical fix);
* ``id(...)`` used anywhere in an emitting function — addresses differ
  between runs, so they must never feed keys or sort orders;
* ``wall_seconds()`` — the sanctioned bench-timing escape hatch must
  not leak into anything that emits.

``obs/tracer.py`` itself is exempt: the bus canonicalises payloads via
``json.dumps(sort_keys=True)`` and owns the one legitimate clock read.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.callgraph import ModuleGraph
from repro.lint.cfg import CFG, build_cfg
from repro.lint.dataflow import ReachingDefinitions
from repro.lint.engine import (
    Finding,
    LintContext,
    Rule,
    function_calls,
    terminal_name,
)

_EXEMPT_MODULES = ("obs/tracer.py",)

_DICT_VIEWS = frozenset({"keys", "values", "items"})

#: One layer of order-preserving wrappers to peel off the iterable.
_ORDER_PRESERVING = frozenset({"enumerate", "reversed", "list", "tuple"})

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})


def _is_setish_expr(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in _SET_CONSTRUCTORS
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: a | b, a & b, a - b, a ^ b over set-ish operands
        return _is_setish_expr(expr.left) or _is_setish_expr(expr.right)
    return False


def _core_iterable(expr: ast.AST) -> ast.AST:
    """Peel order-preserving wrappers: ``enumerate(x)`` iterates ``x``."""
    while (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in _ORDER_PRESERVING
        and expr.args
    ):
        expr = expr.args[0]
    return expr


def _body_emits(
    stmt: ast.stmt, graph: ModuleGraph, emitting: Set[str]
) -> bool:
    """Does the loop body reach an emit (directly or via local callees)?"""
    for body in (stmt.body, getattr(stmt, "orelse", [])):
        for inner in body:
            for node in ast.walk(inner):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, ast.Call) and graph.emits_transitively(
                    node, emitting
                ):
                    return True
    return False


class DeterminismHygieneRule(Rule):
    id = "R012"
    name = "determinism-hygiene"
    description = (
        "no set iteration, unsorted dict-view iteration, id()-keyed "
        "ordering, or wall-clock reads in functions that can emit "
        "trace events (byte-identical JSONL traces, PR 2)"
    )
    applies_to_tests = True  # test helpers that emit must stay ordered too

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module(*_EXEMPT_MODULES):
            return
        graph = ModuleGraph(ctx.tree)
        emitting = graph.emitting_functions()
        if not emitting:
            return
        for name in sorted(emitting):
            func = graph.functions[name]
            yield from self._check_function(ctx, graph, emitting, name, func)

    def _check_function(
        self,
        ctx: LintContext,
        graph: ModuleGraph,
        emitting: Set[str],
        name: str,
        func: ast.AST,
    ) -> Iterator[Finding]:
        cfg: Optional[CFG] = None
        reaching: Optional[ReachingDefinitions] = None
        loops: List[ast.stmt] = [
            node
            for node in ast.walk(func)
            if isinstance(node, (ast.For, ast.AsyncFor))
            and _body_emits(node, graph, emitting)
        ]
        for loop in loops:
            iterable = _core_iterable(loop.iter)  # type: ignore[attr-defined]
            if (
                isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id == "sorted"
            ):
                continue
            if _is_setish_expr(iterable):
                yield ctx.finding(
                    self.id,
                    loop,
                    f"loop in emitting function '{name}' iterates a set "
                    "— set order is arbitrary and the loop body emits "
                    "trace events; iterate sorted(...) instead",
                )
                continue
            if (
                isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Attribute)
                and iterable.func.attr in _DICT_VIEWS
            ):
                yield ctx.finding(
                    self.id,
                    loop,
                    f"loop in emitting function '{name}' iterates a raw "
                    f".{iterable.func.attr}() view — event order then "
                    "follows insertion order; wrap it in sorted(...)",
                )
                continue
            if isinstance(iterable, ast.Name):
                if cfg is None:
                    cfg = build_cfg(func)
                    reaching = ReachingDefinitions(cfg, func)
                block_id = self._block_of(cfg, loop)
                if block_id is None or reaching is None:
                    continue
                values = reaching.values_at(block_id, iterable.id)
                if values and all(
                    v is not None and _is_setish_expr(v) for v in values
                ):
                    yield ctx.finding(
                        self.id,
                        loop,
                        f"loop in emitting function '{name}' iterates "
                        f"'{iterable.id}', which every reaching "
                        "definition builds as a set; iterate "
                        "sorted(...) instead",
                    )

        for node in function_calls(func):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id == "id":
                yield ctx.finding(
                    self.id,
                    node,
                    f"id() in emitting function '{name}' — object "
                    "addresses differ between runs; key on a stable "
                    "identifier instead",
                )
            elif terminal_name(callee) == "wall_seconds":
                yield ctx.finding(
                    self.id,
                    node,
                    f"wall_seconds() in emitting function '{name}' — "
                    "the bench-timing escape hatch must never feed the "
                    "trace stream; use the simulated clock",
                )

    @staticmethod
    def _block_of(cfg: CFG, stmt: ast.stmt) -> Optional[int]:
        for block in cfg.blocks:
            for payload in block.stmts:
                if payload is stmt:
                    return block.id
        return None
