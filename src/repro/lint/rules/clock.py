"""R002 — clock discipline: no wall-clock, no unseeded randomness.

The paper's headline constraint is that recovery must work without
synchronized clocks; our stronger, testable form is that the simulation
is fully deterministic.  Wall-clock reads (``time.time``,
``datetime.now``...), real sleeping, and process-global or unseeded
RNGs all make two runs with the same seed diverge, which silently
invalidates every benchmark in ``benchmarks/`` and every
failure-injection test.

Allowed: :mod:`repro.common.clock` (the simulated clocks live there)
and explicitly seeded generators — ``random.Random(seed)`` — anywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.engine import Finding, LintContext, Rule

_ALLOWED_MODULES = ("common/clock.py",)

#: Banned attribute calls on the ``time`` module.
_TIME_BANNED = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
        "localtime",
        "gmtime",
    }
)

#: Banned constructors/classmethods on datetime classes.
_DATETIME_BANNED = frozenset({"now", "utcnow", "today"})

#: Module-level ``random.*`` functions that use the process-global RNG.
_RANDOM_BANNED = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "getrandbits",
        "seed",
    }
)


class _ImportMap:
    """Which local names refer to the time/datetime/random modules."""

    def __init__(self, tree: ast.Module) -> None:
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.random_modules: Set[str] = set()
        self.random_class: Set[str] = set()
        self.system_random: Set[str] = set()
        self.from_time: Set[str] = set()
        self.from_random: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if alias.name == "time":
                        self.time_modules.add(local)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(local)
                    elif alias.name == "random":
                        self.random_modules.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_BANNED:
                            self.from_time.add(alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self.datetime_classes.add(alias.asname or alias.name)
                elif node.module == "random":
                    for alias in node.names:
                        local = alias.asname or alias.name
                        if alias.name in _RANDOM_BANNED:
                            self.from_random.add(local)
                        elif alias.name == "Random":
                            self.random_class.add(local)
                        elif alias.name == "SystemRandom":
                            self.system_random.add(local)


class ClockDisciplineRule(Rule):
    id = "R002"
    name = "clock-discipline"
    description = (
        "no wall-clock reads, real sleeps, or unseeded randomness "
        "outside common/clock.py"
    )
    applies_to_tests = True  # determinism matters most in tests

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module(*_ALLOWED_MODULES):
            return
        imports = _ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                receiver, attr = func.value.id, func.attr
                if receiver in imports.time_modules and attr in _TIME_BANNED:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"wall-clock call time.{attr}(); use the simulated "
                        "repro.common.clock.SkewedClock",
                    )
                elif (
                    receiver in imports.datetime_classes
                    or receiver in imports.datetime_modules
                ) and attr in _DATETIME_BANNED:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"wall-clock call {receiver}.{attr}(); the simulation "
                        "must not observe real time",
                    )
                elif receiver in imports.random_modules:
                    if attr in _RANDOM_BANNED:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"process-global RNG call random.{attr}(); use a "
                            "seeded random.Random(seed) instance",
                        )
                    elif attr == "Random" and not node.args:
                        yield ctx.finding(
                            self.id,
                            node,
                            "random.Random() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                    elif attr == "SystemRandom":
                        yield ctx.finding(
                            self.id,
                            node,
                            "random.SystemRandom draws OS entropy and can "
                            "never be reproduced",
                        )
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Attribute
            ):
                # datetime.datetime.now(...) via the module.
                inner = func.value
                if (
                    isinstance(inner.value, ast.Name)
                    and inner.value.id in imports.datetime_modules
                    and inner.attr in ("datetime", "date")
                    and func.attr in _DATETIME_BANNED
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"wall-clock call {inner.value.id}.{inner.attr}."
                        f"{func.attr}(); the simulation must not observe "
                        "real time",
                    )
            elif isinstance(func, ast.Name):
                if func.id in imports.from_time:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"wall-clock call {func.id}() (imported from time)",
                    )
                elif func.id in imports.from_random:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"process-global RNG call {func.id}() (imported from "
                        "random); use a seeded random.Random(seed)",
                    )
                elif func.id in imports.random_class and not node.args:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{func.id}() without a seed is nondeterministic; "
                        "pass an explicit seed",
                    )
                elif func.id in imports.system_random:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{func.id} draws OS entropy and can never be "
                        "reproduced",
                    )
