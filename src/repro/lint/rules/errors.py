"""R005 — error discipline: don't swallow recovery errors.

Recovery code signals protocol violations with the typed hierarchy in
:mod:`repro.common.errors`.  A bare ``except:`` or a silent
``except Exception: pass`` converts an integrity violation (say, a
:class:`~repro.common.errors.WALViolationError`) into nothing at all —
the run continues with a corrupted complex, and the verifier reports a
confusing downstream symptom instead of the cause.

Flags:

* bare ``except:`` — always;
* ``except Exception:`` / ``except BaseException:`` (alone or in a
  tuple) whose body contains no ``raise`` — catching the world is only
  acceptable when the handler re-raises (e.g. after logging).

Catching specific types (including :class:`ReproError` subclasses) and
swallowing them is allowed: that is a deliberate, visible decision.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, LintContext, Rule, terminal_name

_BROAD = frozenset({"Exception", "BaseException"})


def _catches_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    return any(terminal_name(c) in _BROAD for c in candidates)


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


class ErrorDisciplineRule(Rule):
    id = "R005"
    name = "error-discipline"
    description = (
        "no bare except or silent 'except Exception'; catch the typed "
        "errors from repro.common.errors instead"
    )
    applies_to_tests = True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self.id,
                    node,
                    "bare 'except:' swallows everything including "
                    "KeyboardInterrupt; catch a type from "
                    "repro.common.errors",
                )
            elif _catches_broad(node) and not _reraises(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "'except Exception' without re-raise hides recovery "
                    "errors (WALViolationError, RecoveryError...); catch "
                    "the specific ReproError subclass",
                )
