"""SARIF 2.1.0 serialisation of reprolint findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests: uploading the run file annotates the PR diff
with each finding at its source line.  We emit the minimal valid
subset — one ``run`` with the full rule catalog in
``tool.driver.rules`` and one ``result`` per finding, each carrying a
``ruleId``/``ruleIndex`` pair, the rendered message, and a physical
location with region.  Everything is plain dict/JSON so the output is
byte-stable for identical findings (keys sorted, no timestamps).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.engine import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Engine pseudo-rules that can appear in findings without being in the
#: registered catalog (parse and I/O failures).
_ENGINE_RULES = {
    "E000": "file could not be parsed as Python",
    "E001": "file could not be read",
}


def _rule_entry(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "error"},
    }


def findings_to_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule]
) -> Dict[str, Any]:
    """Build the SARIF log object for one lint run."""
    catalog: List[Dict[str, Any]] = [_rule_entry(r) for r in rules]
    index: Dict[str, int] = {r.id: i for i, r in enumerate(rules)}
    for rule_id in sorted({f.rule_id for f in findings} - set(index)):
        index[rule_id] = len(catalog)
        catalog.append(
            {
                "id": rule_id,
                "name": "engine-error",
                "shortDescription": {
                    "text": _ENGINE_RULES.get(rule_id, "engine diagnostic"),
                },
                "defaultConfiguration": {"level": "error"},
            }
        )

    results: List[Dict[str, Any]] = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": index[finding.rule_id],
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
            }
        )

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": catalog,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule]
) -> str:
    """The SARIF log as deterministic, pretty-printed JSON."""
    return json.dumps(
        findings_to_sarif(findings, rules),
        indent=2,
        sort_keys=True,
    )
