"""reprolint — AST-based protocol linter for the recovery stack.

The paper's correctness argument rests on conventions that Python
cannot enforce on its own: page_LSN updates must flow through the WAL
path, log addresses must never be confused with LSNs, and the whole
simulation must stay deterministic.  ``repro.lint`` checks those
conventions *statically*, before a violation can corrupt a run and
before :mod:`repro.harness.verifier` would catch it dynamically.

Usage::

    python -m repro.lint src/ tests/
    python -m repro.lint --list-rules

Suppress a finding with a trailing or preceding comment::

    page.page_lsn = usn  # reprolint: disable=R001 -- coherency only

See ``docs/static_analysis.md`` for the full rule catalog.
"""

from repro.lint.engine import Finding, LintContext, Rule, lint_paths, lint_source
from repro.lint.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "Rule",
    "lint_paths",
    "lint_source",
]
