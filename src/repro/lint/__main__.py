"""CLI: ``python -m repro.lint [paths...]``.

Exit status: 0 clean, 1 findings, 2 usage error.  Output format is one
finding per line, ``path:line:col: RULE message`` — the same shape as
ruff/mypy so editors and CI annotate it for free.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import Rule, lint_paths
from repro.lint.rules import ALL_RULES, RULES_BY_ID


def _select_rules(
    select: Optional[str], disable: Optional[str]
) -> List[Rule]:
    rules = list(ALL_RULES)
    if select:
        wanted = {r.strip().upper() for r in select.split(",") if r.strip()}
        unknown = wanted - set(RULES_BY_ID)
        if unknown:
            print(
                f"reprolint: unknown rule(s) in --select: "
                f"{', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        rules = [r for r in rules if r.id in wanted]
    if disable:
        dropped = {r.strip().upper() for r in disable.split(",") if r.strip()}
        unknown = dropped - set(RULES_BY_ID)
        if unknown:
            print(
                f"reprolint: unknown rule(s) in --disable: "
                f"{', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        rules = [r for r in rules if r.id not in dropped]
    return rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based protocol linter for the recovery stack",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name:<18} {rule.description}")
        return 0

    rules = _select_rules(args.select, args.disable)
    if not rules:
        print("reprolint: no rules selected", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for path in missing:
            print(f"reprolint: no such file or directory: {path}",
                  file=sys.stderr)
        return 2
    findings = lint_paths(args.paths, rules=rules)
    for finding in findings:
        print(finding.render())
    if not args.quiet:
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"reprolint: {len(findings)} {noun} "
            f"({len(rules)} rules)",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
