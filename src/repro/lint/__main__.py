"""CLI: ``python -m repro.lint [paths...]``.

Exit status: 0 clean, 1 findings, 2 usage error.  Output format is one
finding per line, ``path:line:col: RULE message`` — the same shape as
ruff/mypy so editors and CI annotate it for free.  ``--sarif`` /
``--sarif-file`` emit the same findings as a SARIF 2.1.0 log for
GitHub code scanning.

Runs are cached by content hash (file bytes + rule set + the lint
package itself) in ``.reprolint_cache.json``; an unchanged tree
replays the stored findings in well under a second.  ``--no-cache``
bypasses the cache entirely.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint import cache as result_cache
from repro.lint.engine import Rule, iter_python_files, lint_paths
from repro.lint.rules import ALL_RULES, RULES_BY_ID
from repro.lint.sarif import render_sarif


def _select_rules(
    select: Optional[str], disable: Optional[str]
) -> List[Rule]:
    rules = list(ALL_RULES)
    if select:
        wanted = {r.strip().upper() for r in select.split(",") if r.strip()}
        unknown = wanted - set(RULES_BY_ID)
        if unknown:
            print(
                f"reprolint: unknown rule(s) in --select: "
                f"{', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        rules = [r for r in rules if r.id in wanted]
    if disable:
        dropped = {r.strip().upper() for r in disable.split(",") if r.strip()}
        unknown = dropped - set(RULES_BY_ID)
        if unknown:
            print(
                f"reprolint: unknown rule(s) in --disable: "
                f"{', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        rules = [r for r in rules if r.id not in dropped]
    return rules


def _default_paths() -> List[str]:
    """Every standard tree that exists next to the invocation."""
    present = [
        p for p in ("src", "tests", "benchmarks", "examples", "tools")
        if Path(p).exists()
    ]
    return present or ["src", "tests"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="flow-aware protocol linter for the recovery stack",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src tests "
        "benchmarks examples tools, whichever exist)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--sarif",
        action="store_true",
        help="write a SARIF 2.1.0 log to stdout instead of plain lines",
    )
    parser.add_argument(
        "--sarif-file",
        metavar="PATH",
        help="also write the SARIF 2.1.0 log to PATH",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always lint, ignoring the content-hash result cache",
    )
    parser.add_argument(
        "--cache-file",
        metavar="PATH",
        default=result_cache.DEFAULT_CACHE_PATH,
        help="cache location (default: %(default)s)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name:<24} {rule.description}")
        return 0

    rules = _select_rules(args.select, args.disable)
    if not rules:
        print("reprolint: no rules selected", file=sys.stderr)
        return 2
    paths = args.paths if args.paths else _default_paths()
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        for path in missing:
            print(f"reprolint: no such file or directory: {path}",
                  file=sys.stderr)
        return 2

    cached = False
    findings = None
    key = None
    if not args.no_cache:
        files = list(iter_python_files(paths))
        key = result_cache.compute_key(files, rules)
        findings = result_cache.load(args.cache_file, key)
        cached = findings is not None
    if findings is None:
        findings = lint_paths(paths, rules=rules)
        if key is not None:
            result_cache.store(args.cache_file, key, findings)

    if args.sarif or args.sarif_file:
        document = render_sarif(findings, rules)
        if args.sarif:
            print(document)
        if args.sarif_file:
            with open(args.sarif_file, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
    if not args.sarif:
        for finding in findings:
            print(finding.render())
    if not args.quiet:
        noun = "finding" if len(findings) == 1 else "findings"
        suffix = ", cached" if cached else ""
        print(
            f"reprolint: {len(findings)} {noun} "
            f"({len(rules)} rules{suffix})",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
