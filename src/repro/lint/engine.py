"""Rule engine: file discovery, suppression comments, finding model.

The engine is deliberately small.  A rule is an object with an ``id``
(``R001``...), a one-line ``description`` and a ``check`` method that
walks a parsed module and yields :class:`Finding`\\ s.  The engine owns
everything rules should not care about: collecting ``*.py`` files,
parsing, mapping ``# reprolint: disable=...`` comments to lines, and
filtering suppressed findings.

Suppression syntax (checked by :func:`parse_suppressions`):

* trailing, applies to its own line::

      page.page_lsn = usn  # reprolint: disable=R001 -- justification

* standalone, applies to the next statement line::

      # reprolint: disable=R002,R005
      t = wall_clock_hack()

* file-wide, anywhere in the file::

      # reprolint: disable-file=R003

``disable=all`` suppresses every rule for the target line.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import ProjectIndex

#: Matches one suppression pragma inside a comment.
_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)(?:\s*--.*)?$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class Suppressions:
    """Per-file suppression state parsed from comments."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_wide or "all" in self.file_wide:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return rule_id in rules or "all" in rules


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# reprolint:`` pragmas from ``source``.

    A pragma on a line holding code applies to that line; a pragma on a
    standalone comment line applies to the next line that holds code
    (chains of comment lines all roll forward onto that line).
    """
    supp = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return supp
    # Lines that contain at least one non-comment, non-trivia token.
    code_lines: Set[int] = set()
    for tok in tokens:
        if tok.type not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(tok.start[0])
    pending: Set[str] = set()
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            match = _PRAGMA.search(tok.string)
            if match is None:
                continue
            rules = {
                r.strip() for r in match.group("rules").split(",") if r.strip()
            }
            if match.group("kind") == "disable-file":
                supp.file_wide |= rules
            elif tok.start[0] in code_lines:  # trailing comment
                supp.by_line.setdefault(tok.start[0], set()).update(rules)
            else:  # standalone comment: applies to the next code line
                pending |= rules
        elif pending and tok.start[0] in code_lines:
            supp.by_line.setdefault(tok.start[0], set()).update(pending)
            pending = set()
    return supp


class LintContext:
    """Everything a rule needs to know about one module.

    ``project`` carries the cross-file facts (the seam index) built
    over every module of the run; when linting a lone source string it
    is derived from that module alone.
    """

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        project: Optional["ProjectIndex"] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        if project is None:
            from repro.lint.callgraph import ProjectIndex

            project = ProjectIndex.build([(path, tree)])
        self.project = project
        self.module_path = _normalise(path)
        self.is_test = self.module_path.startswith("tests/") or os.path.basename(
            self.module_path
        ).startswith(("test_", "conftest"))

    def in_module(self, *suffixes: str) -> bool:
        """Does this file match any of the given path suffixes?"""
        return any(self.module_path.endswith(s) for s in suffixes)

    def finding(
        self, rule_id: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        )


def _normalise(path: str) -> str:
    """Repo-relative posix path with any ``src/`` prefix stripped."""
    norm = path.replace(os.sep, "/")
    for marker in ("src/", "/src/"):
        idx = norm.find(marker)
        if idx != -1:
            return norm[idx + len(marker):]
    return norm.lstrip("./")


class Rule:
    """Base class for lint rules; subclasses set the class attributes."""

    id: str = "R000"
    name: str = "unnamed"
    description: str = ""
    #: Skip test modules entirely when False.
    applies_to_tests: bool = True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test and not self.applies_to_tests:
            return
        yield from self.check(ctx)


# ----------------------------------------------------------------------
# shared AST helpers used by several rules
# ----------------------------------------------------------------------
def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute/Call chain, if any.

    ``addr`` -> ``addr``; ``self.glm.acquire`` -> ``acquire``;
    ``LogAddress(1, 2)`` -> ``LogAddress``.
    """
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    if isinstance(node, ast.Attribute):
        return f"{dotted(node.value)}.{node.attr}"
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return dotted(node.func)
    return "<expr>"


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield every function/method definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def function_calls(func: ast.AST) -> Iterator[ast.Call]:
    """Calls lexically inside ``func`` but not inside nested defs."""
    for node in _walk_same_scope(func):
        if isinstance(node, ast.Call):
            yield node


def _walk_same_scope(func: ast.AST) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested scope: its calls belong to it, not us
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    project: Optional["ProjectIndex"] = None,
) -> List[Finding]:
    """Lint one module given as a string (fixture/test entry point)."""
    from repro.lint.rules import ALL_RULES

    active = list(ALL_RULES if rules is None else rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id="E000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = LintContext(path, source, tree, project=project)
    supp = parse_suppressions(source)
    findings: List[Finding] = []
    seen: Set[Tuple[int, int, str, str]] = set()
    for rule in active:
        for finding in rule.run(ctx):
            if supp.is_suppressed(finding.rule_id, finding.line):
                continue
            # The CFG duplicates ``finally`` suites on the normal and
            # exception paths; never report one source line twice.
            key = (finding.line, finding.col, finding.rule_id,
                   finding.message)
            if key in seen:
                continue
            seen.add(key)
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``*.py`` paths."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return iter(sorted(out))


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths``; returns sorted findings.

    Runs in two passes: first every file is parsed and folded into one
    :class:`~repro.lint.callgraph.ProjectIndex` (so cross-file rules —
    seam threading — see classes defined in other modules), then each
    file is checked against that shared index.
    """
    from repro.lint.callgraph import ProjectIndex

    findings: List[Finding] = []
    sources: List[Tuple[str, str]] = []
    parsed: List[Tuple[str, ast.Module]] = []
    for filename in iter_python_files(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(
                Finding(filename, 1, 1, "E001", f"cannot read file: {exc}")
            )
            continue
        sources.append((filename, source))
        try:
            parsed.append((filename, ast.parse(source, filename=filename)))
        except SyntaxError:
            pass  # lint_source reports it as E000 below
    project = ProjectIndex.build(parsed)
    for filename, source in sources:
        findings.extend(
            lint_source(source, path=filename, rules=rules, project=project)
        )
    return findings
