"""Content-hash result cache for whole lint runs.

``tools/check.sh --fast`` reruns the linter on every invocation; on an
unchanged tree that is pure waste.  The cache keys one *run* (not one
file) by a sha256 over everything that could change its outcome:

* the ruleset version plus the ids of the rules actually enabled,
* the bytes of every file being linted, in sorted path order,
* the bytes of the ``repro.lint`` package itself, so editing a rule or
  the engine invalidates every entry automatically.

A hit replays the stored findings verbatim (path/line/col/rule/message
— enough to re-render and re-exit identically).  The store is a small
JSON file holding the most recent entries; writes are atomic
(tmp + ``os.replace``) so a crashed run never corrupts it.  Cross-file
analysis makes per-file caching unsound — a seam class edited in module
A can create findings in module B — which is why the key covers the
whole input set.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.engine import Finding, Rule

#: Bump when the cache entry layout changes.
CACHE_FORMAT = 1

#: Entries kept in the store (MRU first).  A handful is plenty: the
#: common hit pattern is "same tree, same rules" across consecutive
#: check.sh runs.
MAX_ENTRIES = 16

DEFAULT_CACHE_PATH = ".reprolint_cache.json"


def _package_digest(hasher: "hashlib._Hash") -> None:
    """Fold the lint package's own sources into the key."""
    package_dir = os.path.dirname(os.path.abspath(__file__))
    for root, dirs, files in os.walk(package_dir):
        dirs[:] = sorted(d for d in dirs if d != "__pycache__")
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            hasher.update(os.path.relpath(path, package_dir).encode())
            try:
                with open(path, "rb") as handle:
                    hasher.update(handle.read())
            except OSError:
                hasher.update(b"<unreadable>")


def compute_key(
    files: Iterable[str], rules: Sequence[Rule]
) -> str:
    """The cache key for linting ``files`` with ``rules``."""
    hasher = hashlib.sha256()
    hasher.update(f"format:{CACHE_FORMAT}".encode())
    hasher.update(("rules:" + ",".join(r.id for r in rules)).encode())
    _package_digest(hasher)
    for path in sorted(files):
        hasher.update(b"\x00")
        hasher.update(path.encode())
        hasher.update(b"\x00")
        try:
            with open(path, "rb") as handle:
                hasher.update(hashlib.sha256(handle.read()).digest())
        except OSError:
            hasher.update(b"<unreadable>")
    return hasher.hexdigest()


def load(cache_path: str, key: str) -> Optional[List[Finding]]:
    """Findings stored under ``key``, or None on miss/corruption."""
    try:
        with open(cache_path, "r", encoding="utf-8") as handle:
            store = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(store, dict) or store.get("format") != CACHE_FORMAT:
        return None
    entry = store.get("entries", {}).get(key)
    if entry is None:
        return None
    try:
        return [
            Finding(
                path=item["path"],
                line=int(item["line"]),
                col=int(item["col"]),
                rule_id=item["rule_id"],
                message=item["message"],
            )
            for item in entry
        ]
    except (KeyError, TypeError, ValueError):
        return None


def store(cache_path: str, key: str, findings: Sequence[Finding]) -> None:
    """Insert ``key`` -> ``findings`` (MRU), pruning old entries.

    Best-effort: any I/O failure leaves the previous store intact.
    """
    entries: Dict[str, List[Dict[str, object]]] = {}
    order: List[str] = []
    try:
        with open(cache_path, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
        if (
            isinstance(previous, dict)
            and previous.get("format") == CACHE_FORMAT
        ):
            entries = dict(previous.get("entries", {}))
            order = [k for k in previous.get("order", []) if k in entries]
    except (OSError, ValueError):
        pass

    entries[key] = [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "rule_id": f.rule_id,
            "message": f.message,
        }
        for f in findings
    ]
    order = [key] + [k for k in order if k != key]
    for stale in order[MAX_ENTRIES:]:
        entries.pop(stale, None)
    order = order[:MAX_ENTRIES]

    payload = json.dumps(
        {"format": CACHE_FORMAT, "order": order, "entries": entries},
        indent=None,
        sort_keys=True,
    )
    directory = os.path.dirname(os.path.abspath(cache_path)) or "."
    try:
        fd, tmp_path = tempfile.mkstemp(
            prefix=".reprolint_cache.", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, cache_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
    except OSError:
        pass  # a cold cache next run is the only consequence
