"""Module-granular call graph and the cross-file seam index.

Two structures back the interprocedural halves of the flow-aware rules:

* :class:`ModuleGraph` — one module's functions/methods keyed by bare
  name, the local call edges between them, and the two derived closures
  the rules ask for: which functions can (transitively) emit trace
  events, and which functions run as thread-pool worker callables.
  Name-based resolution is deliberate: within one module of this
  codebase bare function names are unambiguous, and staying inside the
  module keeps the analysis cheap and the findings explainable.

* :class:`ProjectIndex` — the cross-file half: for every class in the
  linted tree, which observability/fault seams (``tracer=`` /
  ``injector=``) its ``__init__`` accepts, and at which positional
  index.  R008 uses it to demand that a seam-holding constructor
  threads the seams into every subsystem it builds.  The engine builds
  one index per run (over *all* files handed to ``lint_paths``) so the
  rule sees callees defined in other modules.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.engine import (
    function_calls,
    terminal_name,
    walk_functions,
)

#: The constructor seams the ROADMAP conventions require every new
#: subsystem to thread (observability PR 2, fault injection PR 4).
SEAM_NAMES = frozenset({"tracer", "injector"})


def _param_names(func: ast.AST) -> List[str]:
    args = getattr(func, "args", None)
    if args is None:
        return []
    return [a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)]


def _has_kwargs(func: ast.AST) -> bool:
    args = getattr(func, "args", None)
    return args is not None and args.kwarg is not None


class SeamSignature:
    """Which seams one class's ``__init__`` accepts, and where."""

    def __init__(self, init: ast.AST) -> None:
        #: seam name -> positional index (0 = first arg after ``self``).
        self.positions: Dict[str, Optional[int]] = {}
        args = getattr(init, "args", None)
        if args is None:
            return
        positional = [a.arg for a in (args.posonlyargs + args.args)]
        if positional and positional[0] in ("self", "cls"):
            positional = positional[1:]
        for index, name in enumerate(positional):
            if name in SEAM_NAMES:
                self.positions[name] = index
        for arg in args.kwonlyargs:
            if arg.arg in SEAM_NAMES:
                self.positions[arg.arg] = None
        self.accepts: FrozenSet[str] = frozenset(self.positions)

    def passed_by(self, call: ast.Call, seam: str) -> bool:
        """Is ``seam`` supplied by this constructor call (keyword,
        covering positional, or a ``**kwargs`` splat)?"""
        for keyword in call.keywords:
            if keyword.arg is None or keyword.arg == seam:
                return True
        position = self.positions.get(seam)
        if position is not None and len(call.args) > position:
            return True
        return any(isinstance(a, ast.Starred) for a in call.args)


class ProjectIndex:
    """Cross-file facts shared by every rule in one lint run."""

    def __init__(self) -> None:
        #: class name -> seam signature of its ``__init__``.
        self.seam_classes: Dict[str, SeamSignature] = {}

    @classmethod
    def build(
        cls, modules: Iterable[Tuple[str, ast.Module]]
    ) -> "ProjectIndex":
        index = cls()
        for _path, tree in modules:
            index.add_module(tree)
        return index

    def add_module(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "__init__"
                ):
                    signature = SeamSignature(item)
                    if signature.accepts:
                        self.seam_classes[node.name] = signature
                    break


# ----------------------------------------------------------------------
# one module's call graph
# ----------------------------------------------------------------------
def _lambda_aware_calls(func: ast.AST) -> Iterable[ast.Call]:
    """Same-scope calls plus calls inside lambdas defined in the scope
    (a lambda handed to ``pool.map`` runs on the worker, so its calls
    belong to the submitting scope for closure purposes)."""
    seen: Set[int] = set()
    for call in function_calls(func):
        seen.add(id(call))
        yield call
    for node in ast.walk(func):
        if isinstance(node, ast.Lambda):
            for inner in ast.walk(node.body):
                if isinstance(inner, ast.Call) and id(inner) not in seen:
                    yield inner


class ModuleGraph:
    """Functions, methods and local call edges of one module."""

    #: Executor-ish receivers for worker-callable detection.
    _POOL_RECEIVERS = frozenset({"pool", "executor", "tpe", "workers"})

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        #: bare name -> definition (first definition wins).
        self.functions: Dict[str, ast.AST] = {}
        for func in walk_functions(tree):
            name = getattr(func, "name", None)
            if name is not None and name not in self.functions:
                self.functions[name] = func
        #: caller bare name -> terminal names of local calls.
        self.calls: Dict[str, Set[str]] = {}
        for name, func in self.functions.items():
            called: Set[str] = set()
            for call in _lambda_aware_calls(func):
                target = terminal_name(call.func)
                if target is not None:
                    called.add(target)
            self.calls[name] = called

    # -- emit closure --------------------------------------------------
    def _emits_directly(self, func: ast.AST) -> bool:
        for call in _lambda_aware_calls(func):
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "emit"
            ):
                receiver = terminal_name(call.func.value)
                if receiver is not None and "tracer" in receiver.lower():
                    return True
        return False

    def emitting_functions(self) -> Set[str]:
        """Functions that can emit a trace event, directly or through a
        local callee (fixpoint over the module call graph)."""
        emitting = {
            name
            for name, func in self.functions.items()
            if self._emits_directly(func)
        }
        changed = True
        while changed:
            changed = False
            for name, called in self.calls.items():
                if name not in emitting and called & emitting:
                    emitting.add(name)
                    changed = True
        return emitting

    def emits_transitively(self, call: ast.Call, emitting: Set[str]) -> bool:
        """Does this call site reach an emit (direct or via a local
        emitting function)?"""
        if isinstance(call.func, ast.Attribute) and call.func.attr == "emit":
            receiver = terminal_name(call.func.value)
            if receiver is not None and "tracer" in receiver.lower():
                return True
        target = terminal_name(call.func)
        return target is not None and target in emitting

    # -- worker closure ------------------------------------------------
    def _uses_thread_pools(self) -> bool:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom):
                if any(
                    a.name in ("ThreadPoolExecutor", "ProcessPoolExecutor",
                               "Thread")
                    for a in node.names
                ):
                    return True
            elif isinstance(node, ast.Import):
                if any(
                    a.name in ("concurrent.futures", "threading")
                    for a in node.names
                ):
                    return True
        return False

    def _callable_roots(self, node: ast.AST) -> Set[str]:
        """Worker names referenced by a callable argument: a bare name
        is the worker itself; a lambda contributes every local function
        its body calls."""
        roots: Set[str] = set()
        if isinstance(node, ast.Name) and node.id in self.functions:
            roots.add(node.id)
        elif isinstance(node, ast.Attribute):
            if node.attr in self.functions:
                roots.add(node.attr)
        elif isinstance(node, ast.Lambda):
            for inner in ast.walk(node.body):
                if isinstance(inner, ast.Call):
                    target = terminal_name(inner.func)
                    if target is not None and target in self.functions:
                        roots.add(target)
        return roots

    def worker_functions(self) -> Set[str]:
        """Functions that run on worker threads: callables handed to a
        thread pool's ``submit``/``map`` (or ``Thread(target=...)``),
        plus their local transitive callees."""
        if not self._uses_thread_pools():
            return set()
        roots: Set[str] = set()
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "submit", "map",
            ):
                receiver = terminal_name(func.value)
                receiver_is_pool = (
                    receiver is not None
                    and receiver.lower() in self._POOL_RECEIVERS
                ) or (
                    isinstance(func.value, ast.Call)
                    and terminal_name(func.value.func)
                    in ("ThreadPoolExecutor", "ProcessPoolExecutor")
                )
                if receiver_is_pool and node.args:
                    roots |= self._callable_roots(node.args[0])
            elif terminal_name(func) == "Thread":
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        roots |= self._callable_roots(keyword.value)
        # Transitive closure: everything a worker calls locally also
        # runs on the worker thread.
        workers = set(roots)
        changed = True
        while changed:
            changed = False
            for name in sorted(workers):
                for callee in sorted(self.calls.get(name, ())):
                    if callee in self.functions and callee not in workers:
                        workers.add(callee)
                        changed = True
        return workers
