"""Tiny reporting toolkit used by every benchmark.

The paper has no numeric tables of its own (it is an algorithms paper),
so the benches print tables derived from its quantitative claims; this
module keeps their formatting uniform so EXPERIMENTS.md can quote them
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


def print_banner(experiment_id: str, title: str) -> None:
    """Standard header line for an experiment's output."""
    line = f"=== {experiment_id}: {title} ==="
    print()
    print(line)


def format_factor(numerator: float, denominator: float) -> str:
    """A 'N.Nx' ratio string, guarding against zero denominators."""
    if denominator == 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"


class Table:
    """Aligned ASCII table with typed cells."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._fmt(cell) for cell in cells])

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (cells are already formatted strings)."""
        return {"columns": list(self.columns), "rows": [list(r) for r in self.rows]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Table":
        table = cls(data["columns"])
        for row in data.get("rows", []):
            if len(row) != len(table.columns):
                raise ValueError(
                    f"row has {len(row)} cells, expected {len(table.columns)}"
                )
            table.rows.append([str(cell) for cell in row])
        return table

    @staticmethod
    def _fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        def line(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        out = [line(self.columns), line(["-" * w for w in widths])]
        out.extend(line(r) for r in self.rows)
        return "\n".join(out)

    def show(self) -> None:
        print(self.render())


@dataclass
class ExperimentResult:
    """Captured outcome of one experiment run (for tests to assert on
    and for EXPERIMENTS.md bookkeeping).

    Beyond the scalar measurements, a result can carry the run's
    counter snapshot (from a :class:`~repro.common.stats.StatsRegistry`
    or metrics registry) and its rendered tables, and round-trips
    through :meth:`to_dict`/:meth:`from_dict` — so a saved
    ``BENCH_*.json`` regenerates the exact tables the run printed.
    """

    experiment_id: str
    claim: str
    measurements: Dict[str, Any] = field(default_factory=dict)
    holds: Optional[bool] = None
    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, Any] = field(default_factory=dict)
    tables: List[Dict[str, Any]] = field(default_factory=list)

    def record(self, name: str, value: Any) -> None:
        self.measurements[name] = value

    def conclude(self, holds: bool) -> "ExperimentResult":
        self.holds = holds
        return self

    def attach_stats(self, stats: Any) -> None:
        """Snapshot a stats/metrics registry into the result.

        Accepts any :class:`~repro.common.stats.StatsRegistry`; a
        :class:`~repro.obs.metrics.MetricsRegistry` additionally
        contributes its histogram snapshots.
        """
        self.counters = dict(stats.snapshot())
        snapshot_all = getattr(stats, "snapshot_all", None)
        if callable(snapshot_all):
            self.histograms = dict(snapshot_all().get("histograms", {}))

    def add_table(self, title: str, table: Table) -> None:
        self.tables.append({"title": title, **table.to_dict()})

    def iter_tables(self):
        """Yield ``(title, Table)`` pairs rebuilt from the stored dicts."""
        for entry in self.tables:
            yield entry.get("title", ""), Table.from_dict(entry)

    def summary_line(self) -> str:
        verdict = {True: "HOLDS", False: "FAILS", None: "N/A"}[self.holds]
        return f"[{self.experiment_id}] {verdict}: {self.claim}"

    def render(self) -> str:
        """Summary line, measurements, and every attached table."""
        out = [self.summary_line()]
        for name in sorted(self.measurements):
            out.append(f"  {name} = {self.measurements[name]}")
        for title, table in self.iter_tables():
            out.append("")
            if title:
                out.append(f"-- {title} --")
            out.append(table.render())
        return "\n".join(out)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "claim": self.claim,
            "measurements": dict(self.measurements),
            "holds": self.holds,
            "counters": dict(self.counters),
            "histograms": dict(self.histograms),
            "tables": [dict(t) for t in self.tables],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        return cls(
            experiment_id=data["experiment_id"],
            claim=data["claim"],
            measurements=dict(data.get("measurements", {})),
            holds=data.get("holds"),
            counters=dict(data.get("counters", {})),
            histograms=dict(data.get("histograms", {})),
            tables=[dict(t) for t in data.get("tables", [])],
        )
