"""Tiny reporting toolkit used by every benchmark.

The paper has no numeric tables of its own (it is an algorithms paper),
so the benches print tables derived from its quantitative claims; this
module keeps their formatting uniform so EXPERIMENTS.md can quote them
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


def print_banner(experiment_id: str, title: str) -> None:
    """Standard header line for an experiment's output."""
    line = f"=== {experiment_id}: {title} ==="
    print()
    print(line)


def format_factor(numerator: float, denominator: float) -> str:
    """A 'N.Nx' ratio string, guarding against zero denominators."""
    if denominator == 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"


class Table:
    """Aligned ASCII table with typed cells."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._fmt(cell) for cell in cells])

    @staticmethod
    def _fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        def line(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        out = [line(self.columns), line(["-" * w for w in widths])]
        out.extend(line(r) for r in self.rows)
        return "\n".join(out)

    def show(self) -> None:
        print(self.render())


@dataclass
class ExperimentResult:
    """Captured outcome of one experiment run (for tests to assert on
    and for EXPERIMENTS.md bookkeeping)."""

    experiment_id: str
    claim: str
    measurements: Dict[str, Any] = field(default_factory=dict)
    holds: Optional[bool] = None

    def record(self, name: str, value: Any) -> None:
        self.measurements[name] = value

    def conclude(self, holds: bool) -> "ExperimentResult":
        self.holds = holds
        return self

    def summary_line(self) -> str:
        verdict = {True: "HOLDS", False: "FAILS", None: "N/A"}[self.holds]
        return f"[{self.experiment_id}] {verdict}: {self.claim}"
