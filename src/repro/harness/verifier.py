"""Complex-wide invariant verification.

A diagnostic for tests, experiments and downstream users: given a live
:class:`~repro.sd.complex.SDComplex` or :class:`~repro.cs.system.
CsSystem`, check the paper's structural invariants (DESIGN.md §5)
directly against the logs and the disk:

* I1 — per-page LSN uniqueness across every log, and (for quiesced
  complexes) the disk version carrying the per-page maximum;
* I2 — strict LSN monotonicity within each local log (USN scheme);
* I3 — WAL: every dirty buffered page's latest update record is in its
  log, and no disk page carries an LSN its logs cannot account for.

Violations are returned, not raised, so callers can report all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (harness is
    # imported by the architecture layers the signatures mention)
    from repro.wal.log_manager import LogManager


@dataclass
class Violation:
    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.invariant}] {self.detail}"


@dataclass
class VerificationReport:
    violations: List[Violation] = field(default_factory=list)
    logs_checked: int = 0
    records_checked: int = 0
    pages_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, detail))

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{status}: {self.logs_checked} logs, "
            f"{self.records_checked} records, "
            f"{self.pages_checked} pages checked"
        )


def _per_page_lsns(logs: "Iterable[LogManager]") -> Dict[int, List[int]]:
    per_page: Dict[int, List[int]] = {}
    for log in logs:
        for _, record in log.scan():
            if record.is_page_oriented():
                per_page.setdefault(record.page_id, []).append(record.lsn)
    return per_page


def verify_logs(logs: "Iterable[LogManager]") -> VerificationReport:
    """Check I1 (uniqueness) and I2 (per-log monotonicity) over logs."""
    report = VerificationReport()
    for log in logs:
        report.logs_checked += 1
        previous = 0
        for _, record in log.scan():
            report.records_checked += 1
            if record.lsn <= previous:
                report.add("I2", (
                    f"log {log.system_id}: LSN {record.lsn} after "
                    f"{previous} (must strictly increase)"
                ))
            previous = record.lsn
    for page_id, lsns in _per_page_lsns(logs).items():
        if len(lsns) != len(set(lsns)):
            dupes = sorted({l for l in lsns if lsns.count(l) > 1})
            report.add("I1", (
                f"page {page_id}: duplicate LSNs {dupes} across logs"
            ))
    return report


def verify_sd_complex(sd, quiesced: bool = False) -> VerificationReport:
    """Full check of a shared-disks complex.

    With ``quiesced=True`` (every pool flushed, no in-flight work) the
    disk version of each page must carry the maximum LSN ever logged
    for it — the strongest form of I1.
    """
    logs = [inst.log for inst in sd.instances.values()]
    report = verify_logs(logs)
    per_page = _per_page_lsns(logs)
    for page_id, lsns in per_page.items():
        report.pages_checked += 1
        disk_lsn = sd.disk.page_lsn_on_disk(page_id)
        maximum = max(lsns)
        if disk_lsn is not None and disk_lsn > maximum:
            report.add("I1", (
                f"page {page_id}: disk LSN {disk_lsn} exceeds every "
                f"logged LSN (max {maximum}) — update lost from the logs"
            ))
        if quiesced and disk_lsn != maximum:
            report.add("I1", (
                f"page {page_id}: quiesced disk LSN {disk_lsn} != "
                f"logged maximum {maximum}"
            ))
    # I3: dirty buffered pages must have their update records in the log.
    for instance in sd.instances.values():
        if instance.crashed:
            continue
        for bcb in instance.pool.pages():
            if bcb.dirty and bcb.last_update_end > instance.log.end_offset:
                report.add("I3", (
                    f"system {instance.system_id} page {bcb.page_id}: "
                    f"WAL high-water mark past the end of the log"
                ))
    return report


def verify_cs_system(cs, quiesced: bool = False) -> VerificationReport:
    """Full check of a client-server system (single interleaved log).

    Per-client LSN streams must be increasing; per-page LSNs unique;
    with ``quiesced=True`` the disk carries each page's maximum.
    """
    report = VerificationReport()
    report.logs_checked = 1
    per_client: Dict[int, int] = {}
    per_page: Dict[int, List[int]] = {}
    for _, record in cs.server.log.scan():
        report.records_checked += 1
        if record.lsn and record.system_id:
            previous = per_client.get(record.system_id, 0)
            if record.lsn <= previous and record.is_page_oriented():
                report.add("I2", (
                    f"client {record.system_id}: LSN {record.lsn} "
                    f"after {previous}"
                ))
            per_client[record.system_id] = max(previous, record.lsn)
        if record.is_page_oriented():
            per_page.setdefault(record.page_id, []).append(record.lsn)
    for page_id, lsns in per_page.items():
        report.pages_checked += 1
        if len(lsns) != len(set(lsns)):
            report.add("I1", f"page {page_id}: duplicate LSNs in server log")
        if quiesced:
            disk_lsn = cs.server.disk.page_lsn_on_disk(page_id)
            if disk_lsn != max(lsns):
                report.add("I1", (
                    f"page {page_id}: quiesced disk LSN {disk_lsn} != "
                    f"logged maximum {max(lsns)}"
                ))
    return report
