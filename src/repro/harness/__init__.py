"""Experiment harness: formatting, result capture, invariant checking."""

from repro.harness.experiment import (
    ExperimentResult,
    Table,
    format_factor,
    print_banner,
)
from repro.harness.verifier import (
    VerificationReport,
    verify_cs_system,
    verify_logs,
    verify_sd_complex,
)

__all__ = [
    "ExperimentResult",
    "Table",
    "VerificationReport",
    "format_factor",
    "print_banner",
    "verify_cs_system",
    "verify_logs",
    "verify_sd_complex",
]
