"""Crash-point torture campaigns: kill the system at every fault
point, run restart recovery, and verify the outcome.

The campaign has two phases.  A **survey** run drives the seeded chaos
workload (:mod:`repro.faults.scenarios`) under an *enabled but empty*
injector, which counts how many times each fault point is crossed
without perturbing the run.  The runner then **enumerates crash
specs** — (point, hit number, crash flavour) triples — and replays the
identical workload once per spec with a one-shot rule armed, so the
run dies exactly there.  Determinism makes the two runs agree hit for
hit up to the fault, so a spec aimed at "the 17th log force" really
kills the 17th log force.

After the injected death the runner plays operator:

1. crash the faulted scope (one instance/client, or the whole
   complex/server — an injected fault from the shared disk or the
   server always takes the complex view);
2. sweep the disk for unreadable pages (torn writes) and rebuild them
   with media recovery (Section 3.2.2) *before* restart, since restart
   redo must be able to read every page it screens;
3. restart recovery for everything that died;
4. roll back the surviving systems' in-flight transactions (their
   locks are live; only the dead systems' transactions are losers);
5. quiesce (flush every pool) and run the harness verifier in
   ``quiesced`` mode plus the trace invariant checker.

A spec passes only if the armed rule actually fired, recovery ran to
completion, and both checkers are clean.  ``CampaignReport.ok`` folds
the table into the process exit status.

:func:`sabotage_redo_screening` deliberately breaks redo's page_LSN
test so the campaign's own alarm can be tested: with screening off,
restart redo double-applies records and the trace checker's
``redo-screening`` invariant trips, turning the whole campaign red.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cs.system import CsSystem
    from repro.sd.complex import SDComplex
    from repro.storage.disk import SharedDisk
    from repro.wal.log_manager import LogManager

from repro.common.errors import FaultInjectedError, MediaError, ReproError
from repro.faults import points as fpoints
from repro.faults import scenarios
from repro.faults.injector import (
    CRASH,
    CRASH_COMPLEX,
    TORN,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.harness.verifier import verify_cs_system, verify_sd_complex
from repro.obs import events as ev
from repro.obs.invariants import Violation, check_trace
from repro.recovery import aries
from repro.recovery.media import recover_page_from_media

ARCH_SD = "sd"
ARCH_CS = "cs"
ARCHES = (ARCH_SD, ARCH_CS)

#: Points the ``--smoke`` gate crashes (one mid-workload kill each);
#: chosen to cover disk, log, network and the commit path per
#: architecture while keeping the whole gate at <= 10 crash points.
SMOKE_POINTS: Dict[str, Tuple[str, ...]] = {
    ARCH_SD: (
        fpoints.DISK_WRITE,
        fpoints.LOG_FORCE,
        fpoints.NET_MSG,
        fpoints.INSTANCE_UPDATE,
        fpoints.COMMIT_PRE_FORCE,
    ),
    ARCH_CS: (
        fpoints.DISK_WRITE,
        fpoints.LOG_FORCE,
        fpoints.CS_SHIP,
        fpoints.CS_COMMIT,
        fpoints.INSTANCE_UPDATE,
    ),
}


# ----------------------------------------------------------------------
# survey
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SurveyResult:
    """Hit counts from one un-faulted pass over the chaos workload.

    ``build_hits`` are hits consumed while *constructing* the stack
    (initial space-map writes and the like); crash specs only target
    the workload phase, ``build_hits[p] < hit <= total_hits[p]``,
    because a death during construction leaves nothing to recover.
    """

    arch: str
    seed: int
    build_hits: Dict[str, int]
    total_hits: Dict[str, int]
    #: Page id written at each disk.write hit, in hit order.
    disk_write_pages: Tuple[int, ...]
    #: Pages born via allocate_page — rebuildable from a blank page by
    #: media recovery (their FORMAT records are logged; the statically
    #: formatted space-map pages are not).
    data_pages: FrozenSet[int]

    def workload_hits(self, point: str) -> Tuple[int, int]:
        """(first, last) workload-phase hit for ``point`` (0, 0 if the
        workload never crosses it)."""
        first = self.build_hits.get(point, 0) + 1
        last = self.total_hits.get(point, 0)
        if last < first:
            return (0, 0)
        return (first, last)


def run_survey(arch: str, seed: int) -> SurveyResult:
    """Drive the chaos workload once with an empty plan, counting hits."""
    injector = FaultInjector(FaultPlan(seed=seed))
    if arch == ARCH_SD:
        system, tracer = scenarios.build_sd(injector, seed)
        build_hits = dict(injector.hit_counts())
        handles = scenarios.run_sd_workload(system, seed)
    elif arch == ARCH_CS:
        cs, tracer = scenarios.build_cs(injector, seed)
        build_hits = dict(injector.hit_counts())
        handles = scenarios.run_cs_workload(cs, seed)
    else:
        raise ValueError(f"unknown architecture {arch!r}")
    disk_write_pages = tuple(
        event.fields["page"] for event in tracer.events()
        if event.kind == ev.DISK_WRITE
    )
    return SurveyResult(
        arch=arch,
        seed=seed,
        build_hits=build_hits,
        total_hits=dict(injector.hit_counts()),
        disk_write_pages=disk_write_pages,
        data_pages=frozenset(page_id for page_id, _ in handles),
    )


# ----------------------------------------------------------------------
# spec enumeration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashSpec:
    """One planned death: arm ``action`` at the ``hit``-th crossing of
    ``point`` and see whether recovery holds."""

    arch: str
    point: str
    hit: int
    action: str

    @property
    def label(self) -> str:
        return f"{self.arch}:{self.point}@{self.hit}:{self.action}"


def enumerate_specs(survey: SurveyResult, smoke: bool = False) -> List[CrashSpec]:
    """Expand a survey into the campaign's crash specs.

    Full mode arms a single-scope crash at the first, middle and last
    workload hit of every point, a complex-wide crash at the middle
    hit, and one torn write against a rebuildable data page.  Smoke
    mode arms one mid-workload crash per :data:`SMOKE_POINTS` entry.
    """
    specs: List[CrashSpec] = []
    if smoke:
        for point in SMOKE_POINTS[survey.arch]:
            first, last = survey.workload_hits(point)
            if not last:
                continue
            mid = first + (last - first) // 2
            specs.append(CrashSpec(survey.arch, point, mid, CRASH))
        return specs
    for point in fpoints.ALL_POINTS:
        first, last = survey.workload_hits(point)
        if not last:
            continue
        mid = first + (last - first) // 2
        for hit in sorted({first, mid, last}):
            specs.append(CrashSpec(survey.arch, point, hit, CRASH))
        specs.append(CrashSpec(survey.arch, point, mid, CRASH_COMPLEX))
    torn_hit = _torn_target_hit(survey)
    if torn_hit:
        specs.append(
            CrashSpec(survey.arch, fpoints.DISK_WRITE, torn_hit, TORN))
    return specs


def _torn_target_hit(survey: SurveyResult) -> int:
    """The disk.write hit to tear: the middle workload-phase write of a
    data page.  Space-map pages are skipped — their initial format is
    not logged, so a blank-page rebuild cannot recreate them (a real
    complex rebuilds those from an image copy, not from the log)."""
    first, last = survey.workload_hits(fpoints.DISK_WRITE)
    if not last:
        return 0
    candidates = [
        hit for hit in range(first, last + 1)
        if survey.disk_write_pages[hit - 1] in survey.data_pages
    ]
    if not candidates:
        return 0
    return candidates[len(candidates) // 2]


# ----------------------------------------------------------------------
# one torture run
# ----------------------------------------------------------------------
@dataclass
class SpecResult:
    """Outcome of one crash spec."""

    spec: CrashSpec
    fired: bool = False
    fault_system: int = -1
    crashed_scope: str = ""
    repaired_pages: Tuple[int, ...] = ()
    recovered: bool = False
    verifier_ok: bool = False
    invariant_violations: Tuple[str, ...] = ()
    detail: str = ""

    @property
    def ok(self) -> bool:
        return (self.fired and self.recovered and self.verifier_ok
                and not self.invariant_violations)

    @property
    def status(self) -> str:
        if self.ok:
            return "ok"
        if not self.fired:
            return "no-fire"
        if not self.recovered:
            return "unrecovered"
        if not self.verifier_ok:
            return "verify-fail"
        return "invariant-fail"

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.label,
            "fired": self.fired,
            "fault_system": self.fault_system,
            "crashed_scope": self.crashed_scope,
            "repaired_pages": list(self.repaired_pages),
            "recovered": self.recovered,
            "verifier_ok": self.verifier_ok,
            "invariant_violations": list(self.invariant_violations),
            "status": self.status,
            "detail": self.detail,
        }


def run_spec(spec: CrashSpec, seed: int) -> SpecResult:
    """Replay the workload with ``spec`` armed; crash, recover, verify."""
    plan = FaultPlan(seed=seed)
    plan.add(FaultRule(point=spec.point, action=spec.action, nth=spec.hit))
    injector = FaultInjector(plan)
    result = SpecResult(spec=spec)
    if spec.arch == ARCH_SD:
        system, tracer = scenarios.build_sd(injector, seed)
        runner, recoverer = scenarios.run_sd_workload, _recover_sd
        verifier = verify_sd_complex
    else:
        system, tracer = scenarios.build_cs(injector, seed)
        runner, recoverer = scenarios.run_cs_workload, _recover_cs
        verifier = verify_cs_system
    fault: Optional[FaultInjectedError] = None
    try:
        runner(system, seed)
    except FaultInjectedError as exc:
        fault = exc
    if fault is None:
        result.detail = "armed rule never fired (hit count drifted?)"
        return result
    result.fired = True
    result.fault_system = fault.system
    try:
        result.crashed_scope, repaired = recoverer(system, spec, fault)
        result.repaired_pages = tuple(repaired)
    except ReproError as exc:
        result.detail = f"recovery failed: {type(exc).__name__}: {exc}"
        return result
    result.recovered = True
    report = verifier(system, quiesced=True)
    result.verifier_ok = report.ok
    if not report.ok:
        result.detail = "; ".join(
            f"{v.invariant}: {v.detail}" for v in report.violations[:3])
    result.invariant_violations = tuple(
        _render_violation(v) for v in check_trace(tracer.events()))
    return result


def _recover_sd(sd: "SDComplex", spec: CrashSpec,
                fault: FaultInjectedError) -> Tuple[str, List[int]]:
    if spec.action == CRASH_COMPLEX or fault.system not in sd.instances:
        sd.crash_complex()
        scope = "complex"
        # Messages parked by injected delays die with the complex —
        # delivering them to the recovered incarnation would replay
        # traffic from before the crash.
        sd.network.fail_parked()
    else:
        sd.crash_instance(fault.system)
        scope = f"instance:{fault.system}"
    repaired = _repair_media(sd.disk, sd.local_logs())
    sd.restart_complex()
    for system_id in sorted(sd.instances):
        instance = sd.instances[system_id]
        for txn in list(instance.txns.active()):
            instance.rollback(txn)
    for system_id in sorted(sd.instances):
        sd.instances[system_id].pool.flush_all()
    return scope, repaired


def _recover_cs(cs: "CsSystem", spec: CrashSpec,
                fault: FaultInjectedError) -> Tuple[str, List[int]]:
    if spec.action == CRASH_COMPLEX or fault.system not in cs.clients:
        cs.crash_server()
        scope = "server"
        cs.network.fail_parked()
    else:
        cs.crash_client(fault.system)
        scope = f"client:{fault.system}"
    repaired = _repair_media(cs.server.disk, [cs.server.log])
    if cs.server.crashed:
        cs.restart_server()
    else:
        for client_id in sorted(cs.clients):
            if cs.clients[client_id].crashed:
                cs.recover_client(client_id)
    for client_id in sorted(cs.clients):
        client = cs.clients[client_id]
        if client.crashed:
            continue
        for txn in list(client.txns.active()):
            client.rollback(txn)
    cs.quiesce()
    return scope, repaired


def _repair_media(
    disk: "SharedDisk", logs: Sequence["LogManager"]
) -> List[int]:
    """Probe every written page; rebuild the unreadable ones from the
    merged stable logs (torn writes fail their checksum on read)."""
    repaired: List[int] = []
    for page_id in list(disk.written_page_ids()):
        try:
            disk.read_page(page_id)
        except MediaError:
            recover_page_from_media(page_id, None, logs, disk=disk)
            repaired.append(page_id)
    return repaired


def _render_violation(violation: Violation) -> str:
    return (f"{violation.invariant}@seq{violation.seq}"
            f"(sys{violation.system}): {violation.message}")


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    """Everything one architecture's campaign produced."""

    arch: str
    seed: int
    smoke: bool
    survey: SurveyResult
    results: List[SpecResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    @property
    def failed(self) -> List[SpecResult]:
        return [r for r in self.results if not r.ok]

    def table(self) -> str:
        """Fixed-width summary table, one row per crash spec."""
        header = (f"{'#':>3} {'point':<17} {'hit':>5} {'action':<13} "
                  f"{'scope':<12} {'repair':>6} {'status':<14}")
        lines = [
            f"-- chaos campaign: arch={self.arch} seed={self.seed} "
            f"mode={'smoke' if self.smoke else 'full'} "
            f"specs={len(self.results)} --",
            header,
            "-" * len(header),
        ]
        for index, result in enumerate(self.results, start=1):
            spec = result.spec
            lines.append(
                f"{index:>3} {spec.point:<17} {spec.hit:>5} "
                f"{spec.action:<13} {result.crashed_scope or '-':<12} "
                f"{len(result.repaired_pages):>6} {result.status:<14}")
            if not result.ok:
                for violation in result.invariant_violations[:3]:
                    lines.append(f"      ! {violation}")
                if result.detail:
                    lines.append(f"      ! {result.detail}")
        passed = sum(1 for r in self.results if r.ok)
        lines.append(f"-- {passed}/{len(self.results)} specs recovered "
                     f"cleanly --")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "arch": self.arch,
            "seed": self.seed,
            "smoke": self.smoke,
            "survey_hits": dict(sorted(self.survey.total_hits.items())),
            "results": [r.to_dict() for r in self.results],
            "ok": self.ok,
        }


def run_campaign(arch: str, seed: int = 0, smoke: bool = False) -> CampaignReport:
    """Survey, enumerate, and torture one architecture."""
    survey = run_survey(arch, seed)
    report = CampaignReport(arch=arch, seed=seed, smoke=smoke, survey=survey)
    for spec in enumerate_specs(survey, smoke=smoke):
        report.results.append(run_spec(spec, seed))
    return report


# ----------------------------------------------------------------------
# failover drill
# ----------------------------------------------------------------------
#: Smoke-mode drill points: the replication seams plus the commit
#: point, the three places a primary death interacts with shipping.
DRILL_SMOKE_POINTS = (
    fpoints.COMMIT_POST_FORCE,
    fpoints.REPL_SHIP,
    fpoints.REPL_APPLY,
)


@dataclass(frozen=True)
class DrillSpec:
    """One failover rehearsal: run the replicated workload at write-ack
    level ``ack``, kill the whole primary at the ``hit``-th crossing of
    ``point``, promote the best standby, and audit the loss."""

    point: str
    hit: int
    ack: str

    @property
    def label(self) -> str:
        return f"failover:{self.point}@{self.hit}:{self.ack}"


def run_drill_survey(ack: str, seed: int) -> SurveyResult:
    """Un-faulted hit counts for the replicated workload at ``ack``.

    Replication adds crossings everywhere (standby disk writes, ship
    and ack rounds), so the plain-campaign survey cannot be reused —
    the drill takes its own census per ack level.
    """
    injector = FaultInjector(FaultPlan(seed=seed))
    sd, _ = scenarios.build_replicated_sd(injector, seed, ack)
    build_hits = dict(injector.hit_counts())
    scenarios.run_sd_workload(sd, seed)
    return SurveyResult(
        arch=ARCH_SD, seed=seed, build_hits=build_hits,
        total_hits=dict(injector.hit_counts()),
        disk_write_pages=(), data_pages=frozenset(),
    )


def enumerate_drill_specs(survey: SurveyResult, ack: str,
                          smoke: bool = False) -> List[DrillSpec]:
    """Every fault point the replicated workload crosses, mid-hit.

    Smoke mode keeps only :data:`DRILL_SMOKE_POINTS`; full mode covers
    all of :data:`~repro.faults.points.ALL_POINTS` the workload hits.
    """
    points = DRILL_SMOKE_POINTS if smoke else fpoints.ALL_POINTS
    specs: List[DrillSpec] = []
    for point in points:
        first, last = survey.workload_hits(point)
        if not last:
            continue
        mid = first + (last - first) // 2
        specs.append(DrillSpec(point=point, hit=mid, ack=ack))
    return specs


@dataclass
class DrillResult:
    """Outcome of one failover rehearsal."""

    spec: DrillSpec
    fired: bool = False
    fault_system: int = -1
    promoted_system: int = -1
    acked_commits: int = 0
    lost_commits: int = 0
    loss_bounded: bool = False
    image_match: bool = False
    writable: bool = False
    invariant_violations: Tuple[str, ...] = ()
    detail: str = ""

    @property
    def ok(self) -> bool:
        return (self.fired and self.loss_bounded and self.image_match
                and self.writable and not self.invariant_violations)

    @property
    def status(self) -> str:
        if self.ok:
            return "ok"
        if not self.fired:
            return "no-fire"
        if self.detail:
            return "error"
        if not self.loss_bounded:
            return "loss"
        if not self.image_match:
            return "image-mismatch"
        if not self.writable:
            return "not-writable"
        return "invariant-fail"

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.label,
            "fired": self.fired,
            "fault_system": self.fault_system,
            "promoted_system": self.promoted_system,
            "acked_commits": self.acked_commits,
            "lost_commits": self.lost_commits,
            "loss_bounded": self.loss_bounded,
            "image_match": self.image_match,
            "writable": self.writable,
            "invariant_violations": list(self.invariant_violations),
            "status": self.status,
            "detail": self.detail,
        }


def _disk_digest(disk: "SharedDisk") -> str:
    """SHA-256 over the written page images, in page-id order."""
    import hashlib

    digest = hashlib.sha256()
    for page_id in sorted(disk.written_page_ids()):
        digest.update(page_id.to_bytes(8, "little"))
        digest.update(bytes(disk.raw_image(page_id)))
    return digest.hexdigest()


def _reference_failover_digest(system_id: int, sd: "SDComplex",
                               snapshot: Dict[int, bytes]) -> str:
    """Recover the promoted standby's replica stream from scratch.

    A fresh, silent standby (own stats, no tracer, no injector) is fed
    the *identical* shipped records in merged LSN order and promoted;
    its disk digest is the reference the live standby must match.  The
    merge re-sort matters: per-page redo is only correct in ascending
    LSN order, and the per-source snapshot blobs alone are not globally
    ordered.
    """
    from repro.common.stats import StatsRegistry
    from repro.faults.injector import NULL_INJECTOR
    from repro.obs.tracer import NULL_TRACER
    from repro.replication.standby import StandbyComplex
    from repro.wal.records import LogRecord

    entries: List[Tuple[int, int, bytes]] = []
    for source_id in sorted(snapshot):
        for _, record in LogRecord.parse_stream(snapshot[source_id]):
            entries.append((int(record.lsn), source_id, record.to_bytes()))
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    reference = StandbyComplex(system_id, sd, stats=StatsRegistry(),
                               tracer=NULL_TRACER, injector=NULL_INJECTOR)
    reference.receive((source_id, data) for _, source_id, data in entries)
    reference.promote()
    return _disk_digest(reference.disk)


def run_drill_spec(spec: DrillSpec, seed: int) -> DrillResult:
    """One rehearsal: kill the primary, promote, audit, verify."""
    plan = FaultPlan(seed=seed)
    plan.add(FaultRule(point=spec.point, action=CRASH_COMPLEX,
                       nth=spec.hit))
    injector = FaultInjector(plan)
    result = DrillResult(spec=spec)
    sd, tracer = scenarios.build_replicated_sd(injector, seed, spec.ack)
    fault: Optional[FaultInjectedError] = None
    try:
        scenarios.run_sd_workload(sd, seed)
    except FaultInjectedError as exc:
        fault = exc
    if fault is None:
        result.detail = "armed rule never fired (hit count drifted?)"
        return result
    result.fired = True
    result.fault_system = fault.system
    # The primary site is gone: every instance dies, parked messages
    # die with it.  (No log salvage — this drill models losing the
    # machine, the case the ack levels exist to bound.)
    sd.crash_complex()
    sd.network.fail_parked()
    try:
        result = _promote_and_audit(result, sd, tracer)
    except ReproError as exc:
        result.detail = f"failover failed: {type(exc).__name__}: {exc}"
        return result
    return result


def _promote_and_audit(result: DrillResult, sd: "SDComplex",
                       tracer) -> DrillResult:
    from repro.wal.records import LogRecord, RecordKind

    spec = result.spec
    # Elect the standby holding the longest prefix of the shipped
    # stream.  Every standby receives the same batch sequence, so
    # (applied LSN, records held) orders prefixes by containment and
    # the winner holds a superset of every acked standby's stream.
    standbys = sd.replication.standbys()
    snapshots = {sid: standby.replica_snapshot()
                 for sid, standby in standbys.items()}
    record_counts = {
        sid: sum(1 for blob in snapshot.values()
                 for _ in LogRecord.parse_stream(blob))
        for sid, snapshot in snapshots.items()
    }
    promoted_id = max(
        standbys,
        key=lambda sid: (int(standbys[sid].applied_max_lsn),
                         record_counts[sid], -sid),
    )
    standby = standbys[promoted_id]
    snapshot = snapshots[promoted_id]
    result.promoted_system = promoted_id
    # Loss audit against the pre-promotion snapshot (promotion appends
    # CLRs; the audit must see exactly what was shipped).
    survivors = set()
    for source_id, blob in snapshot.items():
        for _, record in LogRecord.parse_stream(blob):
            if record.kind == RecordKind.COMMIT:
                survivors.add((source_id, record.txn_id))
    acked = [ack for ack in sd.replication.commit_acks if ack.satisfied]
    lost = [ack for ack in acked
            if (ack.system, ack.txn) not in survivors]
    result.acked_commits = len(acked)
    result.lost_commits = len(lost)
    if spec.ack == "local":
        # Async shipping bounds the unshipped tail — and with it the
        # lost commits — by the in-flight window.
        result.loss_bounded = (
            len(lost) <= scenarios.REPL_WINDOW_RECORDS)
    else:
        # quorum / all: an acknowledged commit must never be lost.
        result.loss_bounded = not lost
    promoted = standby.promote()
    result.image_match = (
        _disk_digest(promoted.disk)
        == _reference_failover_digest(promoted_id, sd, snapshot))
    # The promoted complex must take new work: one smoke transaction
    # (after the digest — it changes the disk).
    instance = promoted.instances[promoted_id]
    txn = instance.begin()
    page_id = instance.allocate_page(txn)
    instance.insert(txn, page_id, b"post-failover write")
    instance.commit(txn)
    result.writable = True
    result.invariant_violations = tuple(
        _render_violation(v) for v in check_trace(tracer.events()))
    return result


@dataclass
class DrillReport:
    """Everything one failover drill produced."""

    seed: int
    smoke: bool
    results: List[DrillResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    @property
    def failed(self) -> List[DrillResult]:
        return [r for r in self.results if not r.ok]

    def table(self) -> str:
        """Fixed-width summary, one row per rehearsal."""
        header = (f"{'#':>3} {'point':<17} {'hit':>5} {'ack':<7} "
                  f"{'promoted':>8} {'acked':>5} {'lost':>4} "
                  f"{'status':<14}")
        lines = [
            f"-- failover drill: seed={self.seed} "
            f"mode={'smoke' if self.smoke else 'full'} "
            f"rehearsals={len(self.results)} --",
            header,
            "-" * len(header),
        ]
        for index, result in enumerate(self.results, start=1):
            spec = result.spec
            lines.append(
                f"{index:>3} {spec.point:<17} {spec.hit:>5} "
                f"{spec.ack:<7} {result.promoted_system:>8} "
                f"{result.acked_commits:>5} {result.lost_commits:>4} "
                f"{result.status:<14}")
            if not result.ok:
                for violation in result.invariant_violations[:3]:
                    lines.append(f"      ! {violation}")
                if result.detail:
                    lines.append(f"      ! {result.detail}")
        passed = sum(1 for r in self.results if r.ok)
        lines.append(f"-- {passed}/{len(self.results)} failovers "
                     f"clean --")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "smoke": self.smoke,
            "results": [r.to_dict() for r in self.results],
            "ok": self.ok,
        }


def run_failover_drill(seed: int = 0, smoke: bool = False) -> DrillReport:
    """Survey and rehearse failover at every ack level.

    Kills the primary complex at every reachable fault point (mid-hit)
    per write-ack level, promotes the best standby, and checks: the
    promoted disk image equals a from-scratch reference recovery of
    the shipped stream; ``quorum``/``all``-acked commits are never
    lost; ``local`` loss stays within the in-flight window; the
    promoted complex accepts new transactions; the whole trace passes
    the invariant checker.
    """
    from repro.replication import ACK_LEVELS

    report = DrillReport(seed=seed, smoke=smoke)
    for ack in ACK_LEVELS:
        survey = run_drill_survey(ack, seed)
        for spec in enumerate_drill_specs(survey, ack, smoke=smoke):
            report.results.append(run_drill_spec(spec, seed))
    return report


# ----------------------------------------------------------------------
# restart drill: eager vs instant equivalence
# ----------------------------------------------------------------------
#: Smoke-mode restart-drill points: the disk, the log, and the commit
#: path — three SD crash flavours whose recovery images the instant
#: path must reproduce byte for byte.
RESTART_DRILL_SMOKE_POINTS = (
    fpoints.DISK_WRITE,
    fpoints.LOG_FORCE,
    fpoints.COMMIT_PRE_FORCE,
)


@dataclass(frozen=True)
class RestartDrillSpec:
    """One restart rehearsal: run the identical workload and crash
    twice — once recovered eagerly, once with ``restart_mode="instant"``
    — and demand that the final disk images are SHA-256 identical."""

    arch: str
    point: str
    hit: int

    @property
    def label(self) -> str:
        return f"restart:{self.arch}:{self.point}@{self.hit}"


@dataclass
class RestartDrillResult:
    """Outcome of one eager-vs-instant restart rehearsal."""

    spec: RestartDrillSpec
    fired: bool = False
    fault_system: int = -1
    crashed_scope: str = ""
    lazy_pages: int = 0
    eager_digest: str = ""
    instant_digest: str = ""
    image_match: bool = False
    verifier_ok: bool = False
    invariant_violations: Tuple[str, ...] = ()
    detail: str = ""

    @property
    def ok(self) -> bool:
        return (self.fired and self.image_match and self.verifier_ok
                and not self.invariant_violations)

    @property
    def status(self) -> str:
        if self.ok:
            return "ok"
        if not self.fired:
            return "no-fire"
        if self.detail and not self.instant_digest:
            return "error"
        if not self.image_match:
            return "image-mismatch"
        if not self.verifier_ok:
            return "verify-fail"
        return "invariant-fail"

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.label,
            "fired": self.fired,
            "fault_system": self.fault_system,
            "crashed_scope": self.crashed_scope,
            "lazy_pages": self.lazy_pages,
            "eager_digest": self.eager_digest,
            "instant_digest": self.instant_digest,
            "image_match": self.image_match,
            "verifier_ok": self.verifier_ok,
            "invariant_violations": list(self.invariant_violations),
            "status": self.status,
            "detail": self.detail,
        }


def _drain_instant(system, arch: str) -> int:
    """Finish an instant restart's lazy phase deterministically.

    The first still-pending page is recovered through the demand entry
    point — the same seam a normal page fix would hit — and the rest
    through the background sweeper, so a rehearsal exercises both lazy
    paths.  Returns how many pages restart left for lazy recovery.
    """
    if arch == ARCH_SD:
        managers = [system.instant[sid] for sid in sorted(system.instant)]
    else:
        managers = [system.server.instant] if system.server.instant else []
    pending = sorted({page for manager in managers
                      for page in manager.pending_pages()})
    if pending:
        if arch == ARCH_SD:
            system.ensure_instant_recovered(pending[0])
            system.instant_drain()
        else:
            system.server.instant.recover_page(pending[0])
            system.server.instant_drain()
    return len(pending)


def _run_restart_variant(spec: RestartDrillSpec, seed: int,
                         mode: str) -> Dict[str, object]:
    """One leg of a restart rehearsal.

    Replays the seeded workload with the spec's rule armed, recovers
    through the standard campaign sequence under ``restart_mode=mode``
    (the instant leg then drains its lazy pages), and returns the final
    disk digest plus the evidence the comparison needs.  Determinism
    makes the two legs' crashes land on the same operation, so any
    digest divergence is recovery's fault alone.
    """
    plan = FaultPlan(seed=seed)
    plan.add(FaultRule(point=spec.point, action=CRASH, nth=spec.hit))
    injector = FaultInjector(plan)
    leg: Dict[str, object] = {
        "fired": False, "fault_system": -1, "scope": "",
        "lazy_pages": 0, "digest": "", "verifier_ok": True,
        "violations": (), "detail": "",
    }
    if spec.arch == ARCH_SD:
        system, tracer = scenarios.build_sd(injector, seed)
        system.restart_mode = mode
        runner, recoverer = scenarios.run_sd_workload, _recover_sd
        verifier = verify_sd_complex
    else:
        system, tracer = scenarios.build_cs(injector, seed)
        system.server.restart_mode = mode
        runner, recoverer = scenarios.run_cs_workload, _recover_cs
        verifier = verify_cs_system
    fault: Optional[FaultInjectedError] = None
    try:
        runner(system, seed)
    except FaultInjectedError as exc:
        fault = exc
    if fault is None:
        leg["detail"] = "armed rule never fired (hit count drifted?)"
        return leg
    leg["fired"] = True
    leg["fault_system"] = fault.system
    crash_spec = CrashSpec(spec.arch, spec.point, spec.hit, CRASH)
    try:
        scope, _ = recoverer(system, crash_spec, fault)
        if mode == "instant":
            leg["lazy_pages"] = _drain_instant(system, spec.arch)
    except ReproError as exc:
        leg["detail"] = f"recovery failed: {type(exc).__name__}: {exc}"
        return leg
    leg["scope"] = scope
    disk = system.disk if spec.arch == ARCH_SD else system.server.disk
    leg["digest"] = _disk_digest(disk)
    if mode == "instant":
        report = verifier(system, quiesced=True)
        leg["verifier_ok"] = report.ok
        if not report.ok:
            leg["detail"] = "; ".join(
                f"{v.invariant}: {v.detail}" for v in report.violations[:3])
        leg["violations"] = tuple(
            _render_violation(v) for v in check_trace(tracer.events()))
    return leg


def run_restart_drill_spec(spec: RestartDrillSpec,
                           seed: int) -> RestartDrillResult:
    """One rehearsal: same crash recovered eagerly and instantly."""
    result = RestartDrillResult(spec=spec)
    eager = _run_restart_variant(spec, seed, "eager")
    if not eager["fired"] or eager["detail"]:
        result.fired = bool(eager["fired"])
        result.detail = str(eager["detail"]) or "eager leg failed"
        return result
    instant = _run_restart_variant(spec, seed, "instant")
    result.fired = bool(instant["fired"])
    result.fault_system = int(instant["fault_system"])
    result.crashed_scope = str(instant["scope"])
    result.lazy_pages = int(instant["lazy_pages"])
    result.eager_digest = str(eager["digest"])
    result.instant_digest = str(instant["digest"])
    result.image_match = bool(result.eager_digest) \
        and result.eager_digest == result.instant_digest
    result.verifier_ok = bool(instant["verifier_ok"])
    result.invariant_violations = tuple(instant["violations"])
    result.detail = str(instant["detail"])
    return result


@dataclass
class RestartDrillReport:
    """Everything one restart drill produced."""

    seed: int
    smoke: bool
    results: List[RestartDrillResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    @property
    def failed(self) -> List[RestartDrillResult]:
        return [r for r in self.results if not r.ok]

    def table(self) -> str:
        """Fixed-width summary, one row per rehearsal."""
        header = (f"{'#':>3} {'arch':<4} {'point':<17} {'hit':>5} "
                  f"{'scope':<12} {'lazy':>4} {'match':<5} "
                  f"{'status':<14}")
        lines = [
            f"-- restart drill: seed={self.seed} "
            f"mode={'smoke' if self.smoke else 'full'} "
            f"rehearsals={len(self.results)} --",
            header,
            "-" * len(header),
        ]
        for index, result in enumerate(self.results, start=1):
            spec = result.spec
            lines.append(
                f"{index:>3} {spec.arch:<4} {spec.point:<17} "
                f"{spec.hit:>5} {result.crashed_scope or '-':<12} "
                f"{result.lazy_pages:>4} "
                f"{'yes' if result.image_match else 'no':<5} "
                f"{result.status:<14}")
            if not result.ok:
                for violation in result.invariant_violations[:3]:
                    lines.append(f"      ! {violation}")
                if result.detail:
                    lines.append(f"      ! {result.detail}")
        passed = sum(1 for r in self.results if r.ok)
        lines.append(f"-- {passed}/{len(self.results)} restarts "
                     f"equivalent --")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "smoke": self.smoke,
            "results": [r.to_dict() for r in self.results],
            "ok": self.ok,
        }


def run_restart_drill(seed: int = 0,
                      smoke: bool = False) -> RestartDrillReport:
    """Rehearse instant restart against the eager reference.

    For every reachable fault point (mid workload hit) the drill runs
    the identical seeded workload twice: once recovered with the
    classic eager restart, once with ``restart_mode="instant"`` (open
    after analysis + undo, then demand-recover one page and sweep the
    rest).  A rehearsal passes only if both legs end with SHA-256
    identical disk images and the instant leg satisfies the harness
    verifier and the trace invariant checker.  Smoke mode keeps the
    three :data:`RESTART_DRILL_SMOKE_POINTS` crash points on SD; full
    mode covers both architectures at every reachable point.
    """
    report = RestartDrillReport(seed=seed, smoke=smoke)
    arches = (ARCH_SD,) if smoke else ARCHES
    for arch in arches:
        survey = run_survey(arch, seed)
        points = (RESTART_DRILL_SMOKE_POINTS if smoke
                  else fpoints.ALL_POINTS)
        for point in points:
            first, last = survey.workload_hits(point)
            if not last:
                continue
            mid = first + (last - first) // 2
            report.results.append(run_restart_drill_spec(
                RestartDrillSpec(arch=arch, point=point, hit=mid), seed))
    return report


# ----------------------------------------------------------------------
# self-test sabotage
# ----------------------------------------------------------------------
@contextmanager
def sabotage_redo_screening() -> Iterator[None]:
    """Disable restart redo's page_LSN screening for the duration.

    Exists so the campaign's alarm can be proven live: under sabotage
    the trace checker's ``redo-screening`` invariant must trip and the
    campaign must exit non-zero.  Never set the flag any other way.
    """
    aries._SABOTAGE_DISABLE_REDO_SCREENING = True
    try:
        yield
    finally:
        aries._SABOTAGE_DISABLE_REDO_SCREENING = False
