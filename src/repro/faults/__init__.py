"""repro.faults — deterministic fault injection and retry/degradation.

Public surface:

* :mod:`repro.faults.points` — the named fault-point catalog;
* :class:`FaultPlan` / :class:`FaultRule` — the trigger DSL;
* :class:`FaultInjector` / :data:`NULL_INJECTOR` — the injector seam
  (NULL-object pattern, zero-cost when disabled);
* :class:`RetryPolicy` / :func:`run_with_lock_retry` — bounded retries
  with deterministic :class:`~repro.common.clock.SkewedClock` backoff;
* :mod:`repro.faults.campaign` — the crash-point torture campaign the
  ``python -m repro.chaos`` CLI drives.

See ``docs/fault_injection.md``.
"""

from repro.faults import points
from repro.faults.injector import (
    ALL_ACTIONS,
    CRASH,
    CRASH_COMPLEX,
    DELAY,
    DROP,
    DUPLICATE,
    FAIL,
    NULL_INJECTOR,
    TORN,
    FaultInjector,
    FaultPlan,
    FaultRule,
    NullFaultInjector,
)
from repro.faults.policy import RetryPolicy, run_with_lock_retry

__all__ = [
    "points",
    "ALL_ACTIONS",
    "CRASH",
    "CRASH_COMPLEX",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "FAIL",
    "TORN",
    "NULL_INJECTOR",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "NullFaultInjector",
    "RetryPolicy",
    "run_with_lock_retry",
]
