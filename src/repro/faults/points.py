"""The named fault-point catalog.

Injection points are constants so call sites, fault plans and the
campaign runner agree on spelling (the same discipline rule R006
enforces for counter names and the event catalog uses for trace
kinds).  Each point is a *place in the stack* where the injector is
consulted; what happens there is decided by the matching
:class:`~repro.faults.injector.FaultRule` action.

* ``DISK_WRITE``   — :meth:`SharedDisk.write_page`; supports ``fail``
  (write never happens) and ``torn`` (a half-old/half-new image is
  persisted, detected by checksum on the next read) plus the crash
  actions.
* ``DISK_READ``    — :meth:`SharedDisk.read_page`; ``fail`` raises
  :class:`~repro.common.errors.MediaError`, indistinguishable from a
  genuine media failure (media recovery applies).
* ``LOG_FORCE``    — :meth:`LogManager.force`, consulted only when the
  stable boundary would actually advance (a real device write);
  ``fail`` models a log-device failure, which the SD instance and the
  CS server answer with read-only degraded mode.
* ``NET_MSG``      — :meth:`Network.message`; supports ``drop``
  (retransmitted when a :class:`~repro.faults.policy.RetryPolicy` is
  configured), ``duplicate`` (second delivery deduplicated) and
  ``delay`` (delivery deferred to the next message).
* ``BUFFER_WRITE`` — :meth:`BufferPool._write_stable`, between the WAL
  force and the disk write (the classic "page write in flight" crash
  window).
* ``INSTANCE_UPDATE`` — :meth:`DbmsInstance._log_update` /
  :meth:`CsClient._log_update`, before the update's log record is
  appended (mid-operation crash point).
* ``COMMIT_PRE_FORCE`` / ``COMMIT_POST_FORCE`` — bracketing the commit
  log force in :meth:`DbmsInstance.commit`: a crash before the force
  makes the transaction a loser, one after makes it a winner whose END
  record is missing.
* ``CS_SHIP``      — :meth:`CsServer.receive_log_records`, before the
  shipped batch reaches the server log (hit attributed to the shipping
  client).
* ``CS_COMMIT``    — :meth:`CsServer.commit_point` entry (hit
  attributed to the committing client).
* ``GLM_ACQUIRE``  — :meth:`PartitionedLockManager.acquire`, before the
  request is routed to its shard; the ``shard`` context field names the
  target shard, so a fault plan can kill exactly one GLM shard (the
  monolithic single-shard GLM never consults this point).
* ``REPL_SHIP``    — :meth:`ReplicationManager._ship_to`, before a
  merged-log batch leaves the primary for one standby (hit attributed
  to the standby; ``fail`` is answered with bounded retry/backoff,
  exhaustion disconnects the standby).
* ``REPL_ACK``     — before the standby's cumulative ack is recorded on
  the primary; ``fail`` models a lost ack (the shipped batch survives,
  the ack LSN simply does not advance until the next round trip).
* ``REPL_APPLY``   — :meth:`StandbyComplex.receive`, before a shipped
  batch enters the standby's continuous-redo loop (hit attributed to
  the standby).
* ``INSTANT_RECOVER`` — :meth:`InstantRecoveryManager.recover_page`,
  before a pending page's redo chain is applied under instant restart
  (hit attributed to the recovering system); a ``fail`` here models a
  crash during lazy recovery — the page stays pending and the next
  touch retries from the same stable chain.
"""

from __future__ import annotations

from typing import Tuple

DISK_WRITE = "disk.write"
DISK_READ = "disk.read"
LOG_FORCE = "log.force"
NET_MSG = "net.msg"
BUFFER_WRITE = "buffer.write"
INSTANCE_UPDATE = "instance.update"
COMMIT_PRE_FORCE = "commit.pre_force"
COMMIT_POST_FORCE = "commit.post_force"
CS_SHIP = "cs.ship"
CS_COMMIT = "cs.commit"
GLM_ACQUIRE = "glm.acquire"
REPL_SHIP = "repl.ship"
REPL_ACK = "repl.ack"
REPL_APPLY = "repl.apply"
INSTANT_RECOVER = "instant.recover"

#: Every injection point, in the order campaign tables list them.
ALL_POINTS: Tuple[str, ...] = (
    DISK_WRITE,
    DISK_READ,
    LOG_FORCE,
    NET_MSG,
    BUFFER_WRITE,
    INSTANCE_UPDATE,
    COMMIT_PRE_FORCE,
    COMMIT_POST_FORCE,
    CS_SHIP,
    CS_COMMIT,
    GLM_ACQUIRE,
    REPL_SHIP,
    REPL_ACK,
    REPL_APPLY,
    INSTANT_RECOVER,
)
