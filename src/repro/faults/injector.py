"""Seeded, deterministic fault injection.

The injector follows the observability seam's NULL-object pattern
(:data:`~repro.obs.tracer.NULL_TRACER`): every instrumented subsystem
holds an injector unconditionally, the default is the shared
:data:`NULL_INJECTOR` whose ``enabled`` flag is ``False``, and call
sites guard the consultation behind ``if self._injector.enabled`` —
so fault injection that is switched off costs one attribute read and
leaves traces and counters byte-identical.

An enabled injector counts every hit of every consulted
:mod:`~repro.faults.points` fault point (the **survey** the campaign
runner uses to enumerate crash points), and fires the actions its
:class:`FaultPlan` selects:

* ``fail`` / ``crash`` / ``crash_complex`` raise
  :class:`~repro.common.errors.FaultInjectedError` (crash actions are
  a *request*: the campaign catches the error and kills the instance
  or the complex at the unwound point — volatile state is discarded
  either way, and no stable state mutates during the unwind);
* ``torn`` raises :class:`~repro.common.errors.TornPageError` (the
  disk catches it, persists the torn image, and re-raises);
* ``drop`` / ``duplicate`` / ``delay`` are returned to the call site,
  which owns the transport semantics (the network fabric).

Determinism: probabilistic rules draw from a ``random.Random`` seeded
by the plan, and hit counting is per-point — the same plan over the
same workload fires at exactly the same places every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import FaultInjectedError, TornPageError
from repro.common.stats import FAULTS_INJECTED, StatsRegistry
from repro.obs import events as ev
from repro.obs.tracer import NullTracer

# ----------------------------------------------------------------------
# actions
# ----------------------------------------------------------------------
FAIL = "fail"
TORN = "torn"
CRASH = "crash"
CRASH_COMPLEX = "crash_complex"
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"

#: Actions :meth:`FaultInjector.fire` raises for; the rest are returned
#: to the call site.
RAISING_ACTIONS = frozenset({FAIL, TORN, CRASH, CRASH_COMPLEX})
SOFT_ACTIONS = frozenset({DROP, DUPLICATE, DELAY})
ALL_ACTIONS = RAISING_ACTIONS | SOFT_ACTIONS


@dataclass(frozen=True)
class FaultRule:
    """One trigger: fire ``action`` at ``point`` when the hit matches.

    Exactly one trigger mode is set per rule (the :class:`FaultPlan`
    DSL guarantees it): ``nth`` fires on that hit number only,
    ``every`` fires on every ``every``-th hit (1 = every hit), and
    ``probability`` flips a seeded coin per hit.
    """

    point: str
    action: str
    nth: Optional[int] = None
    every: int = 0
    probability: float = 0.0

    def describe(self) -> str:
        if self.nth is not None:
            trigger = f"hit {self.nth}"
        elif self.every == 1:
            trigger = "every hit"
        elif self.every:
            trigger = f"every {self.every}th hit"
        else:
            trigger = f"p={self.probability}"
        return f"{self.point}@{trigger} -> {self.action}"


class _SiteBuilder:
    """Builder half of the plan DSL: ``plan.at(P).on_hit(3).crash()``."""

    def __init__(self, plan: "FaultPlan", point: str) -> None:
        self._plan = plan
        self._point = point
        self._nth: Optional[int] = None
        self._every = 0
        self._probability = 0.0

    def on_hit(self, n: int) -> "_SiteBuilder":
        """Fire on exactly the ``n``-th hit of the point (1-based)."""
        if n < 1:
            raise ValueError("hit numbers are 1-based")
        self._nth = n
        return self

    def every_hit(self, k: int = 1) -> "_SiteBuilder":
        """Fire on every ``k``-th hit (default: every hit)."""
        if k < 1:
            raise ValueError("every_hit period must be >= 1")
        self._every = k
        return self

    def with_probability(self, p: float) -> "_SiteBuilder":
        """Fire with seeded probability ``p`` on each hit."""
        if not 0.0 < p <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self._probability = p
        return self

    # -- terminal verbs ------------------------------------------------
    def _finish(self, action: str) -> "FaultPlan":
        if self._nth is None and not self._every and not self._probability:
            self._every = 1
        self._plan.add(FaultRule(
            point=self._point, action=action, nth=self._nth,
            every=self._every, probability=self._probability,
        ))
        return self._plan

    def fail(self) -> "FaultPlan":
        return self._finish(FAIL)

    def torn(self) -> "FaultPlan":
        return self._finish(TORN)

    def crash(self) -> "FaultPlan":
        return self._finish(CRASH)

    def crash_complex(self) -> "FaultPlan":
        return self._finish(CRASH_COMPLEX)

    def drop(self) -> "FaultPlan":
        return self._finish(DROP)

    def duplicate(self) -> "FaultPlan":
        return self._finish(DUPLICATE)

    def delay(self) -> "FaultPlan":
        return self._finish(DELAY)


class FaultPlan:
    """An ordered set of :class:`FaultRule`\\ s plus the seed for any
    probabilistic triggers.

    Build plans with the fluent DSL — each terminal verb returns the
    plan, so rules chain::

        plan = (FaultPlan(seed=7)
                .at(points.DISK_WRITE).on_hit(3).torn()
                .at(points.NET_MSG).with_probability(0.1).drop())
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: List[FaultRule] = []

    def at(self, point: str) -> _SiteBuilder:
        """Start a rule for ``point`` (see :mod:`repro.faults.points`)."""
        return _SiteBuilder(self, point)

    def add(self, rule: FaultRule) -> "FaultPlan":
        if rule.action not in ALL_ACTIONS:
            raise ValueError(f"unknown fault action {rule.action!r}")
        self._rules.append(rule)
        return self

    @property
    def rules(self) -> Tuple[FaultRule, ...]:
        return tuple(self._rules)

    def match(self, point: str, hit: int,
              rng: "random.Random") -> Optional[FaultRule]:
        """The first rule that fires for the ``hit``-th hit of ``point``."""
        for rule in self._rules:
            if rule.point != point:
                continue
            if rule.nth is not None:
                if hit == rule.nth:
                    return rule
            elif rule.every:
                if hit % rule.every == 0:
                    return rule
            elif rule.probability and rng.random() < rule.probability:
                return rule
        return None

    def describe(self) -> str:
        if not self._rules:
            return f"FaultPlan(seed={self.seed}, no rules)"
        rules = "; ".join(r.describe() for r in self._rules)
        return f"FaultPlan(seed={self.seed}, {rules})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()


# ----------------------------------------------------------------------
# injectors
# ----------------------------------------------------------------------
class NullFaultInjector:
    """The zero-cost default: never fires, never counts.

    Call sites guard on ``enabled`` exactly as they do for the null
    tracer, so the disabled hot path costs one attribute read and
    performs no counter or trace work whatsoever.
    """

    enabled: bool = False

    def attach(self, stats: Optional[StatsRegistry] = None,
               tracer: Optional[NullTracer] = None) -> None:
        """Late-bind the owning stack's stats/tracer (no-op)."""

    def fire(self, point: str, /, system: int = 0,
             **ctx: object) -> Optional[str]:
        """Consult the plan at ``point`` (no-op: nothing ever fires)."""
        return None

    def hit_count(self, point: str) -> int:
        return 0

    def hit_counts(self) -> Dict[str, int]:
        return {}

    def fired(self) -> List[Tuple[str, int, str]]:
        return []


#: Shared process-wide null injector; safe because it holds no state.
NULL_INJECTOR = NullFaultInjector()


class FaultInjector(NullFaultInjector):
    """A recording, plan-driven injector.

    Every consulted point is hit-counted even when no rule fires, so a
    run under an *empty* plan doubles as the campaign's survey pass —
    and, because counting touches only injector-private state, such a
    run is observably identical (traces, counters) to one under
    :data:`NULL_INJECTOR`.
    """

    enabled = True

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.stats = stats
        self.tracer = tracer
        self._rng = random.Random(self.plan.seed)
        self._hits: Dict[str, int] = {}
        self._fired: List[Tuple[str, int, str]] = []

    def attach(self, stats: Optional[StatsRegistry] = None,
               tracer: Optional[NullTracer] = None) -> None:
        """Adopt the owning stack's stats/tracer unless already bound.

        The SD complex and CS system call this from their constructors
        so a campaign-made injector reports into the same registries
        the stack under test uses.
        """
        if self.stats is None and stats is not None:
            self.stats = stats
        if self.tracer is None and tracer is not None:
            self.tracer = tracer

    def fire(self, point: str, /, system: int = 0,
             **ctx: object) -> Optional[str]:
        """Count one hit of ``point`` and fire the matching rule, if any.

        Raises for the raising actions (see module docstring), returns
        the action name for the soft transport actions, and returns
        ``None`` when no rule matches.
        """
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        rule = self.plan.match(point, hit, self._rng)
        if rule is None:
            return None
        action = rule.action
        self._fired.append((point, hit, action))
        if self.stats is not None:
            self.stats.incr(FAULTS_INJECTED)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(ev.FAULT_INJECT, system=system, point=point,
                        hit=hit, action=action, **ctx)
        if action == TORN:
            raise TornPageError(point, action, system, hit)
        if action in RAISING_ACTIONS:
            raise FaultInjectedError(point, action, system, hit)
        return action

    def hit_count(self, point: str) -> int:
        """Hits observed at ``point`` so far."""
        return self._hits.get(point, 0)

    def hit_counts(self) -> Dict[str, int]:
        """All per-point hit totals (the survey the campaign enumerates)."""
        return dict(self._hits)

    def fired(self) -> List[Tuple[str, int, str]]:
        """Every fired injection as ``(point, hit, action)``, in order."""
        return list(self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(plan={self.plan.describe()}, "
            f"hits={sum(self._hits.values())}, fired={len(self._fired)})"
        )
