"""Seeded chaos workloads the campaign runner tortures.

Each scenario builds a small, fully deterministic stack (seeded
workload, recording tracer, the caller's injector threaded through
every seam) and drives it to completion — or to the injected fault.
The shape is deliberately chosen to make every fault point hot:

* two systems, so instance-scoped crashes leave a survivor;
* mixed reads/updates over hot pages, so locks and the coherency
  protocol carry real traffic (``net.msg``, ``instance.update``);
* periodic mid-workload pool flushes, so pages reach disk *between*
  transactions (``disk.write`` / ``buffer.write`` hits) and restart
  recovery's redo screening actually engages — without flushes every
  page version on disk predates the whole log and screening is
  vacuous, which would let a broken redo pass go unnoticed.

The same builders serve the campaign's survey pass (enabled injector,
empty plan) and its torture runs (one-shot crash rules), so hit counts
line up between the two by construction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cs.system import CsSystem
from repro.faults.injector import NullFaultInjector
from repro.obs.tracer import Tracer
from repro.replication import ReplicationConfig
from repro.sd.complex import SDComplex
from repro.workload.generator import (
    WorkloadConfig,
    build_scripts,
    populate_pages,
    run_interleaved_cs,
    run_interleaved_sd,
)

#: Scenario geometry, shared by survey and torture runs.
N_SYSTEMS = 2
N_PAGES = 4
RECORDS_PER_PAGE = 4
N_TRANSACTIONS = 12
OPS_PER_TXN = 4
#: Flush one (alternating) pool every FLUSH_PERIOD committed txns.
FLUSH_PERIOD = 2
#: Failover-drill replication shape: two standbys so ``quorum`` (2 of
#: 3 votes) and ``all`` (both standbys) are genuinely different levels,
#: and a small window/batch so the async ``local`` mode actually leaves
#: an unshipped tail for the drill's loss bound to bite on.
STANDBY_BASE_ID = 9
N_STANDBYS = 2
REPL_WINDOW_RECORDS = 8
REPL_BATCH_RECORDS = 4


def _workload_config(seed: int) -> WorkloadConfig:
    return WorkloadConfig(
        n_transactions=N_TRANSACTIONS,
        ops_per_txn=OPS_PER_TXN,
        read_fraction=0.4,
        payload_bytes=24,
        hot_fraction=0.5,
        n_hot_pages=2,
        seed=seed,
    )


def build_sd(injector: NullFaultInjector, seed: int,
             slab: bool = True) -> Tuple[SDComplex, Tracer]:
    """A two-instance SD complex under a recording tracer.

    ``slab=False`` selects the classic disk spine — the chaos
    slab-vs-classic equality tests compare the two byte for byte.
    """
    tracer = Tracer()
    sd = SDComplex(n_data_pages=64, tracer=tracer, injector=injector,
                   slab=slab)
    for system_id in (1, 2):
        sd.add_instance(system_id)
    return sd, tracer


def run_sd_workload(sd: SDComplex, seed: int) -> List[Tuple[int, int]]:
    """Populate and drive the seeded workload (may raise an injected
    fault mid-flight; the caller owns the response).  Returns the
    populated ``(page_id, slot)`` handles — the campaign uses the page
    ids to pick torn-write targets that media recovery can rebuild."""
    instances = [sd.instances[sid] for sid in sorted(sd.instances)]
    handles = populate_pages(instances[0], N_PAGES, RECORDS_PER_PAGE)
    scripts = build_scripts(_workload_config(seed), len(instances), handles)
    counter = {"commits": 0}

    def flusher() -> None:
        counter["commits"] += 1
        if counter["commits"] % FLUSH_PERIOD:
            return
        target = instances[(counter["commits"] // FLUSH_PERIOD)
                           % len(instances)]
        if not target.crashed:
            target.pool.flush_all()

    run_interleaved_sd(instances, scripts, between_txns=flusher)
    return handles


def build_replicated_sd(injector: NullFaultInjector, seed: int,
                        ack: str) -> Tuple[SDComplex, Tracer]:
    """The failover-drill stack: :func:`build_sd` plus log shipping.

    Same two-instance primary as :func:`build_sd`, with replication at
    the requested write-ack level and :data:`N_STANDBYS` hot standbys
    attached before the workload starts.
    """
    tracer = Tracer()
    sd = SDComplex(
        n_data_pages=64, tracer=tracer, injector=injector,
        replicate=ReplicationConfig(
            ack=ack,
            window_records=REPL_WINDOW_RECORDS,
            batch_records=REPL_BATCH_RECORDS,
        ),
    )
    for system_id in (1, 2):
        sd.add_instance(system_id)
    for index in range(N_STANDBYS):
        sd.replication.add_standby(STANDBY_BASE_ID + index)
    return sd, tracer


def build_cs(injector: NullFaultInjector, seed: int,
             slab: bool = True) -> Tuple[CsSystem, Tracer]:
    """A two-client CS system under a recording tracer."""
    tracer = Tracer()
    cs = CsSystem(n_data_pages=64, tracer=tracer, injector=injector,
                  slab=slab)
    for client_id in (1, 2):
        cs.add_client(client_id)
    return cs, tracer


def run_cs_workload(cs: CsSystem, seed: int) -> List[Tuple[int, int]]:
    clients = [cs.clients[cid] for cid in sorted(cs.clients)]
    handles = populate_pages(clients[0], N_PAGES, RECORDS_PER_PAGE)
    scripts = build_scripts(_workload_config(seed), len(clients), handles)
    counter = {"commits": 0}

    def flusher() -> None:
        counter["commits"] += 1
        if counter["commits"] % FLUSH_PERIOD:
            return
        target = clients[(counter["commits"] // FLUSH_PERIOD) % len(clients)]
        if not target.crashed:
            target.flush_all()
        if not cs.server.crashed:
            # Push shipped pages through to disk so server-side redo
            # screening has disk versions to screen against.
            cs.server.pool.flush_all()

    run_interleaved_cs(clients, scripts, commit_lsn_service=cs.commit_lsn,
                       between_txns=flusher)
    return handles
