"""Retry policies: the *response* half of robustness.

Transient faults — an injected message drop, a lock that stays busy —
are answered with bounded retries and deterministic backoff.  Backoff
is expressed in :class:`~repro.common.clock.SkewedClock` ticks, never
wall time (rule R002): two runs with the same seed back off through
identical clock readings, so retried runs stay byte-reproducible.

Two consumers:

* :class:`~repro.net.network.Network` retransmits dropped messages
  (``net.retransmits``) and deduplicates duplicated ones
  (``net.dup_dropped``);
* :func:`run_with_lock_retry` converts a persistently blocking lock
  acquisition (:class:`~repro.common.errors.LockWouldBlock` on every
  attempt) into :class:`~repro.common.errors.LockTimeoutError` after
  the attempt budget is spent — the bounded-wait discipline a
  transaction monitor applies around the global lock manager.
"""

from __future__ import annotations

from typing import Callable, Optional, Type, TypeVar

from repro.common.clock import SkewedClock
from repro.common.errors import (
    LockTimeoutError,
    LockWouldBlock,
    ReproError,
    RetryExhaustedError,
)
from repro.common.stats import RETRY_EXHAUSTED, StatsRegistry

T = TypeVar("T")

# Knuth's multiplicative-hash constant: mixes (seed, attempt) into a
# well-spread jitter value without pulling in the random module.
_JITTER_MIX = 2654435761


class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts the first try: a policy with
    ``max_attempts=3`` performs at most two retries.  Backoff after
    attempt ``n`` is ``base_ticks * 2**(n-1)`` clock ticks, capped at
    ``max_backoff_ticks`` — advanced on the supplied
    :class:`SkewedClock` (or silently skipped without one; the tick
    count is still returned for accounting).

    With ``jitter_seed`` set, each backoff additionally waits a
    *seeded* jitter of ``0 .. backoff-1`` extra ticks, derived purely
    from ``(jitter_seed, attempt)`` — the decorrelation real systems
    get from randomness, without giving up byte-reproducibility (rule
    R002: same seed, same ticks, every run).  ``jitter_seed=None``
    (the default) keeps the historical no-jitter schedule.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_ticks: int = 1,
        max_backoff_ticks: int = 64,
        clock: Optional[SkewedClock] = None,
        jitter_seed: Optional[int] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_ticks < 1:
            raise ValueError("base_ticks must be >= 1")
        if max_backoff_ticks < base_ticks:
            raise ValueError("max_backoff_ticks must be >= base_ticks")
        self.max_attempts = max_attempts
        self.base_ticks = base_ticks
        self.max_backoff_ticks = max_backoff_ticks
        self.clock = clock
        self.jitter_seed = jitter_seed

    def jitter_ticks(self, attempt: int) -> int:
        """Seeded jitter added to the ``attempt``-th backoff.

        A pure function of ``(jitter_seed, attempt)`` in the range
        ``0 .. capped_backoff - 1``; always 0 without a seed.
        """
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        if self.jitter_seed is None:
            return 0
        span = min(self.base_ticks << (attempt - 1), self.max_backoff_ticks)
        mixed = (self.jitter_seed * _JITTER_MIX + attempt * 0x9E3779B9)
        return (mixed & 0xFFFFFFFF) % span

    def backoff_ticks(self, attempt: int) -> int:
        """The (deterministic) backoff after the ``attempt``-th try."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        base = min(self.base_ticks << (attempt - 1), self.max_backoff_ticks)
        return base + self.jitter_ticks(attempt)

    def backoff(self, attempt: int) -> int:
        """Advance the clock by the attempt's backoff; returns the ticks."""
        ticks = self.backoff_ticks(attempt)
        if self.clock is not None:
            self.clock.tick(ticks)
        return ticks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_ticks={self.base_ticks}, "
            f"max_backoff_ticks={self.max_backoff_ticks})"
        )


def run_with_lock_retry(
    policy: RetryPolicy,
    attempt: Callable[[], T],
    on_retry: Optional[Callable[[int], None]] = None,
) -> T:
    """Run ``attempt`` until it stops raising ``LockWouldBlock``.

    Each blocked attempt keeps its queue position in the lock manager
    (the simulation's waits are re-polled, not re-enqueued), backs off
    deterministically, and retries; after ``policy.max_attempts``
    blocked attempts the wait is declared hopeless and
    :class:`LockTimeoutError` is raised from the last block.
    ``on_retry`` is called with the attempt number before each retry
    (the accounting hook the instance uses for ``lock.retries``).
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return attempt()
        except LockWouldBlock as exc:
            if attempts >= policy.max_attempts:
                raise LockTimeoutError(
                    f"lock wait for {exc.resource!r} exceeded "
                    f"{policy.max_attempts} attempts"
                ) from exc
            policy.backoff(attempts)
            if on_retry is not None:
                on_retry(attempts)


def run_with_retry(
    policy: RetryPolicy,
    attempt: Callable[[], T],
    retryable: Type[ReproError] = ReproError,
    stats: Optional[StatsRegistry] = None,
    on_retry: Optional[Callable[[int], None]] = None,
    label: str = "operation",
    should_retry: Optional[Callable[[ReproError], bool]] = None,
) -> T:
    """Run ``attempt`` until it succeeds or the budget is spent.

    The generic sibling of :func:`run_with_lock_retry`: any raise of
    ``retryable`` triggers deterministic backoff and another attempt;
    after ``policy.max_attempts`` failures the loop gives up, bumps
    ``faults.retry.exhausted`` on ``stats`` (when given) and raises
    :class:`RetryExhaustedError` from the last failure.  ``on_retry``
    is called with the 1-based attempt number before each retry.
    Exceptions outside ``retryable`` — or for which ``should_retry``
    returns False (e.g. an injected CRASH that must take the process
    down, not be retried away) — propagate immediately, attempt
    budget untouched.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return attempt()
        except retryable as exc:
            if should_retry is not None and not should_retry(exc):
                raise
            if attempts >= policy.max_attempts:
                if stats is not None:
                    stats.incr(RETRY_EXHAUSTED)
                raise RetryExhaustedError(label, attempts) from exc
            policy.backoff(attempts)
            if on_retry is not None:
                on_retry(attempts)
