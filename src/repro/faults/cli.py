"""``python -m repro.chaos`` — run crash-point torture campaigns.

Usage:

* ``python -m repro.chaos`` — full campaign over both architectures
  (every fault point x {first, mid, last} hit, complex-wide kills,
  one torn write);
* ``python -m repro.chaos --smoke`` — the fast CI gate: <= 10 crash
  points across SD and CS, one mid-workload kill each;
* ``python -m repro.chaos --arch sd --seed 7`` — one architecture
  under a different workload seed;
* ``python -m repro.chaos --list`` — survey only: print per-point hit
  counts without crashing anything;
* ``python -m repro.chaos --drill failover`` — failover rehearsals:
  replicated primary killed at every fault point per write-ack level,
  best standby promoted, loss audited against the ack guarantees
  (``--smoke`` narrows to the replication seams + commit point);
* ``python -m repro.chaos --drill restart`` — restart rehearsals: the
  identical crash recovered eagerly and with ``restart_mode="instant"``,
  final disk images compared by SHA-256 (``--smoke`` narrows to three
  SD crash points);  an unknown drill name prints the available drills
  and exits 2;
* ``python -m repro.chaos --sabotage redo-screening`` — deliberately
  break restart redo's page_LSN test first; the campaign must go red
  (used to prove the alarm itself works).

Exit status 0 iff every crash spec recovered cleanly and both the
harness verifier and the trace invariant checker came back clean.
"""

from __future__ import annotations

import argparse
from contextlib import nullcontext
from typing import List, Optional

from repro.faults.campaign import (
    ARCHES,
    run_campaign,
    run_failover_drill,
    run_restart_drill,
    run_survey,
    sabotage_redo_screening,
)
from repro.faults.points import ALL_POINTS

SABOTAGES = ("redo-screening",)
#: Named drills: name -> (runner, one-line failure/success wording).
DRILLS = {
    "failover": (
        run_failover_drill,
        "failovers lost acked commits or diverged from reference recovery",
        "failovers, loss within ack guarantees, images match reference "
        "recovery",
    ),
    "restart": (
        run_restart_drill,
        "restarts diverged from the eager disk image or tripped a checker",
        "restarts, instant and eager recovery produced identical disk "
        "images",
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Crash-point torture campaigns over the recovery stack.",
    )
    parser.add_argument("--arch", choices=ARCHES + ("both",), default="both",
                        help="architecture(s) to torture (default: both)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default: 0)")
    parser.add_argument("--smoke", action="store_true",
                        help="fast gate: <= 10 crash points total")
    parser.add_argument("--list", action="store_true", dest="list_points",
                        help="survey only: print fault-point hit counts")
    parser.add_argument("--sabotage", choices=SABOTAGES, default=None,
                        help="break recovery on purpose to test the alarm")
    parser.add_argument("--drill", default=None, metavar="NAME",
                        help="run a named drill instead of the campaign "
                             f"(one of: {', '.join(sorted(DRILLS))})")
    return parser


def _run_drill(name: str, seed: int, smoke: bool) -> int:
    runner, fail_text, ok_text = DRILLS[name]
    report = runner(seed=seed, smoke=smoke)
    print(report.table())
    total, failed = len(report.results), len(report.failed)
    if failed or not total:
        print(f"DRILL: FAIL — {failed}/{total} {fail_text}")
        return 1
    print(f"DRILL: OK — {total} {ok_text}")
    return 0


def _list_points(arches: List[str], seed: int) -> int:
    for arch in arches:
        survey = run_survey(arch, seed)
        print(f"-- fault points: arch={arch} seed={seed} --")
        for point in ALL_POINTS:
            first, last = survey.workload_hits(point)
            total = survey.total_hits.get(point, 0)
            build = survey.build_hits.get(point, 0)
            window = f"{first}..{last}" if last else "-"
            print(f"  {point:<17} hits={total:>4} (build={build}, "
                  f"workload={window})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    arches = list(ARCHES) if args.arch == "both" else [args.arch]
    if args.drill is not None:
        if args.drill not in DRILLS:
            print(f"unknown drill {args.drill!r}; available drills: "
                  f"{', '.join(sorted(DRILLS))}")
            return 2
        return _run_drill(args.drill, args.seed, args.smoke)
    if args.list_points:
        return _list_points(arches, args.seed)
    guard = (sabotage_redo_screening() if args.sabotage == "redo-screening"
             else nullcontext())
    reports = []
    with guard:
        for arch in arches:
            reports.append(run_campaign(arch, seed=args.seed,
                                        smoke=args.smoke))
    for report in reports:
        print(report.table())
        print()
    total = sum(len(r.results) for r in reports)
    failed = sum(len(r.failed) for r in reports)
    if failed or not total:
        print(f"CHAOS: FAIL — {failed}/{total} crash specs left the "
              f"database unrecovered or inconsistent")
        return 1
    print(f"CHAOS: OK — {total} crash specs, all recovered and verified")
    return 0


def run(argv: Optional[List[str]] = None) -> int:
    return main(argv)
