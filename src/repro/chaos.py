"""``python -m repro.chaos`` entry point (see :mod:`repro.faults.cli`)."""

from repro.faults.cli import main, run

__all__ = ["main", "run"]

if __name__ == "__main__":
    raise SystemExit(run())
