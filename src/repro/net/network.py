"""The message fabric between systems.

Section 3.5 of the paper: "periodically all the systems are informed of
the other systems' Local_Max_LSNs... To make the process efficient, the
transmission of Local_Max_LSNs can be piggybacked onto the other
messages being exchanged between the systems.  This essentially amounts
to a Lamport logical clock scheme."

Our simulation is synchronous (a message is a counted method call), but
the piggybacking is a real code path: every :meth:`Network.message`
carries the sender's current ``Local_Max_LSN`` and the receiver's log
manager absorbs it.  Turning ``piggyback_enabled`` off reproduces the
paper's failure mode — skewed systems keep issuing low LSNs and the
complex-wide Commit_LSN drags behind (experiment E2).

Participants register an object exposing ``local_max_lsn`` and
``observe_remote_max`` (both :class:`~repro.wal.log_manager.LogManager`
and :class:`~repro.wal.client_log.ClientLogManager` qualify).

Fault handling (the ``injector=`` seam, :mod:`repro.faults`): the
``net.msg`` point can *drop*, *duplicate* or *delay* a message.  Drops
are answered by bounded retransmission under the configured
:class:`~repro.faults.policy.RetryPolicy`; duplicates are filtered by a
per-source sequence-number window (at-most-once delivery); delayed
messages are parked and delivered before the next message on the
fabric, modelling reordering the Lamport merge is insensitive to.  All
of this lives off the fast path: with the null injector the delivery
code is exactly the pre-fault version.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Set, Tuple

from repro.common.lsn import Lsn
from repro.common.stats import (
    MESSAGES_SENT,
    MESSAGE_BYTES,
    NET_DELAYED,
    NET_DROPS_INJECTED,
    NET_DUP_DROPPED,
    NET_MAX_LSN_BROADCAST,
    NET_PARKED_DRAINED,
    NET_PARKED_FAILED,
    NET_RETRANSMITS,
    StatsRegistry,
    message_kind_counter,
)
from repro.faults import points as fp
from repro.faults.injector import (
    DELAY,
    DROP,
    DUPLICATE,
    NULL_INJECTOR,
    NullFaultInjector,
)
from repro.faults.policy import RetryPolicy
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER, NullTracer


class LamportParticipant(Protocol):
    """What the network needs from each registered system."""

    local_max_lsn: Lsn

    def observe_remote_max(self, remote_max_lsn: Lsn) -> None: ...


class Network:
    """Counts messages between systems and piggybacks LSN maxima."""

    def __init__(
        self,
        stats: Optional[StatsRegistry] = None,
        piggyback_enabled: bool = True,
        tracer: Optional[NullTracer] = None,
        injector: Optional[NullFaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.stats = stats if stats is not None else StatsRegistry()
        self.piggyback_enabled = piggyback_enabled
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._injector = injector if injector is not None else NULL_INJECTOR
        self.retry = retry if retry is not None else RetryPolicy()
        self._participants: Dict[int, LamportParticipant] = {}
        # Fault-path state (untouched on the fast path): a fabric-wide
        # message sequence, the at-most-once delivery window, and the
        # park bench for delayed messages.
        self._msg_seq = 0
        self._seen_seqs: Set[int] = set()
        self._delayed: List[Tuple[int, int, str, int, int]] = []

    def register(self, system_id: int, participant: LamportParticipant) -> None:
        """Attach a system's log manager to the fabric."""
        self._participants[system_id] = participant

    def deregister(self, system_id: int) -> None:
        self._participants.pop(system_id, None)

    def message(
        self,
        src_id: int,
        dst_id: int,
        kind: str,
        nbytes: int = 64,
    ) -> None:
        """Account one message from ``src_id`` to ``dst_id``.

        ``kind`` labels the message for per-type counters (page
        transfer, lock grant, log ship, ...).  When piggybacking is on,
        the destination learns the source's Local_Max_LSN for free.
        """
        if src_id == dst_id:
            return  # local calls are not messages
        if self._injector.enabled:
            self._message_faulty(src_id, dst_id, kind, nbytes)
            return
        self._deliver(src_id, dst_id, kind, nbytes)

    def _message_faulty(
        self, src_id: int, dst_id: int, kind: str, nbytes: int
    ) -> None:
        """The injector-enabled transmit path.

        Parked (delayed) messages are released ahead of this one, then
        the injector is consulted once per transmission attempt: a drop
        burns one attempt of the retry budget and retransmits with
        deterministic backoff; a duplicate delivers a second copy the
        sequence window rejects; a delay parks the message for the next
        release.  A message still dropped after ``retry.max_attempts``
        attempts is lost for good — bounded retries, not a guarantee.
        """
        self._flush_delayed()
        self._msg_seq += 1
        seq = self._msg_seq
        attempts = 0
        while True:
            attempts += 1
            action = self._injector.fire(
                fp.NET_MSG, system=src_id, src=src_id, dst=dst_id, kind=kind
            )
            if action == DROP:
                self.stats.incr(NET_DROPS_INJECTED)
                if attempts >= self.retry.max_attempts:
                    return
                self.retry.backoff(attempts)
                self.stats.incr(NET_RETRANSMITS)
                continue
            if action == DELAY:
                self.stats.incr(NET_DELAYED)
                self._delayed.append((src_id, dst_id, kind, nbytes, seq))
                return
            self._deliver(src_id, dst_id, kind, nbytes, seq=seq)
            if action == DUPLICATE:
                self._deliver(src_id, dst_id, kind, nbytes, seq=seq)
            return

    def _flush_delayed(self) -> None:
        """Deliver every parked message, in park order."""
        while self._delayed:
            src_id, dst_id, kind, nbytes, seq = self._delayed.pop(0)
            self._deliver(src_id, dst_id, kind, nbytes, seq=seq)

    def parked_count(self) -> int:
        """How many injected-DELAY messages are still parked."""
        return len(self._delayed)

    def drain_parked(self) -> int:
        """Deliver every parked message now; returns how many.

        The graceful half of quiesce/shutdown hygiene: a drill or a
        checkpoint that stops the fabric must not leave in-flight state
        behind, or the next run would observe deliveries it never sent.
        Counted as ``net.parked_drained``.
        """
        count = len(self._delayed)
        if count:
            self._flush_delayed()
            self.stats.incr(NET_PARKED_DRAINED, count)
        return count

    def fail_parked(self) -> int:
        """Discard every parked message; returns how many.

        The crash half: messages parked when a complex dies are lost,
        never delivered to a survivor later.  Counted as
        ``net.parked_failed``.
        """
        count = len(self._delayed)
        if count:
            self._delayed.clear()
            self.stats.incr(NET_PARKED_FAILED, count)
        return count

    def _deliver(
        self,
        src_id: int,
        dst_id: int,
        kind: str,
        nbytes: int,
        seq: Optional[int] = None,
    ) -> None:
        if seq is not None:
            if seq in self._seen_seqs:
                # At-most-once: the receiver has already processed this
                # sequence number (an injected duplicate).
                self.stats.incr(NET_DUP_DROPPED)
                return
            self._seen_seqs.add(seq)
        self.stats.incr(MESSAGES_SENT)
        self.stats.incr(MESSAGE_BYTES, nbytes)
        self.stats.incr(message_kind_counter(kind))
        src = self._participants.get(src_id)
        if self.tracer.enabled:
            piggyback = (
                int(src.local_max_lsn)
                if self.piggyback_enabled and src is not None
                else None
            )
            self.tracer.emit(
                ev.NET_MSG,
                system=src_id,
                src=src_id,
                dst=dst_id,
                kind=kind,
                nbytes=nbytes,
                piggyback=piggyback,
            )
        if self.piggyback_enabled:
            dst = self._participants.get(dst_id)
            if src is not None and dst is not None:
                dst.observe_remote_max(src.local_max_lsn)

    def broadcast_max_lsns(self) -> None:
        """The explicit periodic exchange of Section 3.5.

        Every system sends its Local_Max_LSN to every other system;
        each receiver keeps the maximum.  Used when regular traffic is
        too sparse for piggybacking alone.
        """
        participants = list(self._participants.items())
        maxima = {sid: p.local_max_lsn for sid, p in participants}
        if self.tracer.enabled:
            self.tracer.emit(
                ev.NET_BROADCAST,
                maxima={str(sid): int(m) for sid, m in maxima.items()},
            )
        for src_id, _ in participants:
            for dst_id, dst in participants:
                if src_id == dst_id:
                    continue
                self.stats.incr(MESSAGES_SENT)
                self.stats.incr(NET_MAX_LSN_BROADCAST)
                dst.observe_remote_max(maxima[src_id])

    def participants(self) -> Dict[int, LamportParticipant]:
        return dict(self._participants)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network(participants={sorted(self._participants)}, "
            f"piggyback={self.piggyback_enabled})"
        )
