"""Simulated inter-system messaging with Local_Max_LSN piggybacking."""

from repro.net.network import Network

__all__ = ["Network"]
