"""Write-ahead logging: records, local log managers, merging.

This package implements the paper's contribution proper:

* :class:`~repro.wal.log_manager.LogManager` assigns LSNs with the USN
  rule ``LSN = max(page_LSN, Local_Max_LSN) + 1`` and merges remote
  ``Local_Max_LSN`` values Lamport-style (Sections 3.2.1 and 3.5);
* :class:`~repro.wal.client_log.ClientLogManager` is the client-server
  variant that buffers records in virtual storage and ships them to the
  server (Section 3.1);
* :mod:`repro.wal.merge` performs the LSN-only k-way merge of local
  logs for media recovery (Section 3.2.2) and, for the baseline
  comparison, the more complex per-page merge Lomet's scheme needs.
"""

from repro.wal.records import (
    CheckpointData,
    LogRecord,
    PageOp,
    RecordKind,
    decode_op,
    encode_op,
)
from repro.wal.log_manager import LogManager
from repro.wal.client_log import ClientLogManager
from repro.wal.merge import merge_local_logs, lomet_merge

__all__ = [
    "CheckpointData",
    "ClientLogManager",
    "LogManager",
    "LogRecord",
    "PageOp",
    "RecordKind",
    "decode_op",
    "encode_op",
    "lomet_merge",
    "merge_local_logs",
]
